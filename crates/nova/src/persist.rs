//! The on-disk allocation-artifact cache behind
//! [`CompileConfigBuilder::persist_dir`](crate::CompileConfigBuilder::persist_dir).
//!
//! A session that solves a MILP bank allocation writes the *decision*
//! half of the result — the decoded [`Assignment`], its objective, its
//! [`AllocQuality`] record, and the raw solution vector — to one file
//! per allocation-cache key. A later session (typically a restarted
//! `nova-server`) with the same configuration re-derives the same key,
//! loads the assignment, and rebuilds everything else deterministically
//! ([`nova_backend::readopt_assignment_with`]), skipping the solve: warm
//! restarts are bit-identical to cold compiles and pay only the cheap
//! phases.
//!
//! ## Format
//!
//! One entry per file, named `<key:016x>.novac`:
//!
//! ```text
//! magic   8 bytes  b"NOVACHE1"
//! version u32      bumped on any layout change (old files -> miss)
//! length  u64      payload byte count
//! check   u64      FNV-1a 64 over the payload
//! payload          fields in fixed order, little-endian, maps sorted
//! ```
//!
//! ## Corruption rules
//!
//! Loads are strict and total: a missing file is a **miss**; anything
//! else that is not a byte-perfect entry — short header, wrong magic or
//! version, length mismatch, checksum mismatch, out-of-range bank tag,
//! trailing bytes — is a **reject**. Both are clean cache misses (the
//! session falls back to a full solve); neither can panic or fail the
//! compile. Writes go through a temp file in the same directory and a
//! rename, so readers never observe a half-written entry, and write
//! errors are silently dropped (persistence is an accelerator, never a
//! correctness dependency).

use ixp_machine::Temp;
use nova_backend::alloc::{Assignment, IlpBank, PointId};
use nova_backend::AllocQuality;
use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"NOVACHE1";
const VERSION: u32 = 1;

/// The persisted slice of a solved allocation.
pub(crate) struct DiskEntry {
    pub objective: f64,
    pub quality: AllocQuality,
    pub asg: Assignment,
    pub values: Option<Vec<f64>>,
}

/// Outcome of one disk lookup, mirroring the
/// `session.cache.disk.{hit,miss,reject}` counters.
pub(crate) enum Load {
    Hit(Box<DiskEntry>),
    Miss,
    Reject,
}

/// A directory of persisted allocation entries.
pub(crate) struct DiskCache {
    dir: PathBuf,
}

impl DiskCache {
    /// Open (creating if needed) the cache directory. Returns `None`
    /// when the directory cannot be created — the session then simply
    /// runs without persistence.
    pub fn open(dir: &Path) -> Option<DiskCache> {
        std::fs::create_dir_all(dir).ok()?;
        Some(DiskCache {
            dir: dir.to_path_buf(),
        })
    }

    fn path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.novac"))
    }

    /// Load the entry for `key`, classifying every failure mode.
    pub fn load(&self, key: u64) -> Load {
        let bytes = match std::fs::read(self.path(key)) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Load::Miss,
            Err(_) => return Load::Reject,
        };
        match decode(&bytes) {
            Some(entry) => Load::Hit(Box::new(entry)),
            None => Load::Reject,
        }
    }

    /// Persist `entry` under `key`: temp file + rename, best effort.
    pub fn store(&self, key: u64, entry: &DiskEntry) {
        let bytes = encode(entry);
        let tmp = self
            .dir
            .join(format!("{key:016x}.tmp{}", std::process::id()));
        let write = std::fs::File::create(&tmp).and_then(|mut f| {
            f.write_all(&bytes)?;
            f.sync_all()
        });
        if write.is_ok() {
            let _ = std::fs::rename(&tmp, self.path(key));
        }
        let _ = std::fs::remove_file(&tmp);
    }
}

/// FNV-1a 64 — hand-rolled so the format has no hasher dependency and a
/// fixed cross-version definition.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---- encoding ----

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn bank_tag(b: IlpBank) -> u8 {
    IlpBank::ALL
        .iter()
        .position(|x| *x == b)
        .expect("every bank is in ALL") as u8
}

/// Serialize the payload. Map iteration order is unspecified, so every
/// map is emitted in sorted key order: identical entries produce
/// identical files.
fn encode_payload(e: &DiskEntry) -> Vec<u8> {
    let mut out = Vec::new();
    put_f64(&mut out, e.objective);
    put_u8(&mut out, e.quality.stage);
    put_u8(&mut out, u8::from(e.quality.proven_optimal));
    put_f64(&mut out, e.quality.gap);
    put_u64(&mut out, e.quality.spills as u64);

    let placements = |m: &HashMap<(PointId, Temp), IlpBank>, out: &mut Vec<u8>| {
        let mut items: Vec<_> = m.iter().map(|((p, t), b)| (p.0, t.0, *b)).collect();
        items.sort_unstable_by_key(|(p, t, _)| (*p, *t));
        put_u64(out, items.len() as u64);
        for (p, t, b) in items {
            put_u32(out, p);
            put_u32(out, t);
            put_u8(out, bank_tag(b));
        }
    };
    placements(&e.asg.before, &mut out);
    placements(&e.asg.after, &mut out);

    let mut moves: Vec<_> = e.asg.moves.iter().collect();
    moves.sort_unstable_by_key(|(p, _)| p.0);
    put_u64(&mut out, moves.len() as u64);
    for (p, ms) in moves {
        put_u32(&mut out, p.0);
        put_u64(&mut out, ms.len() as u64);
        for (t, from, to) in ms {
            put_u32(&mut out, t.0);
            put_u8(&mut out, bank_tag(*from));
            put_u8(&mut out, bank_tag(*to));
        }
    }

    let mut colors: Vec<_> = e
        .asg
        .colors
        .iter()
        .map(|((t, b), c)| (t.0, *b, *c))
        .collect();
    colors.sort_unstable_by_key(|(t, b, _)| (*t, bank_tag(*b)));
    put_u64(&mut out, colors.len() as u64);
    for (t, b, c) in colors {
        put_u32(&mut out, t);
        put_u8(&mut out, bank_tag(b));
        put_u8(&mut out, c);
    }

    put_u64(&mut out, e.asg.n_moves as u64);
    put_u64(&mut out, e.asg.n_spills as u64);

    match &e.values {
        None => put_u8(&mut out, 0),
        Some(vs) => {
            put_u8(&mut out, 1);
            put_u64(&mut out, vs.len() as u64);
            for v in vs {
                put_f64(&mut out, *v);
            }
        }
    }
    out
}

fn encode(e: &DiskEntry) -> Vec<u8> {
    let payload = encode_payload(e);
    let mut out = Vec::with_capacity(payload.len() + 28);
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, VERSION);
    put_u64(&mut out, payload.len() as u64);
    put_u64(&mut out, fnv1a(&payload));
    out.extend_from_slice(&payload);
    out
}

// ---- decoding ----

/// A strict little-endian cursor: every read is bounds-checked and any
/// failure propagates as `None` (a reject).
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.bytes.get(self.at..self.at + n)?;
        self.at += n;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    /// A length prefix, sanity-capped by what the remaining bytes could
    /// possibly hold (`min_item` bytes per item) so a corrupt length
    /// cannot drive a huge allocation.
    fn len(&mut self, min_item: usize) -> Option<usize> {
        let n = usize::try_from(self.u64()?).ok()?;
        if n > (self.bytes.len() - self.at) / min_item.max(1) {
            return None;
        }
        Some(n)
    }

    fn bank(&mut self) -> Option<IlpBank> {
        IlpBank::ALL.get(usize::from(self.u8()?)).copied()
    }
}

fn decode(bytes: &[u8]) -> Option<DiskEntry> {
    let mut c = Cursor { bytes, at: 0 };
    if c.take(8)? != MAGIC || c.u32()? != VERSION {
        return None;
    }
    let len = usize::try_from(c.u64()?).ok()?;
    let check = c.u64()?;
    let payload = c.take(len)?;
    if c.at != bytes.len() || fnv1a(payload) != check {
        return None;
    }

    let mut c = Cursor {
        bytes: payload,
        at: 0,
    };
    let objective = c.f64()?;
    let quality = AllocQuality {
        stage: c.u8()?,
        proven_optimal: match c.u8()? {
            0 => false,
            1 => true,
            _ => return None,
        },
        gap: c.f64()?,
        spills: usize::try_from(c.u64()?).ok()?,
    };

    let placements = |c: &mut Cursor| -> Option<HashMap<(PointId, Temp), IlpBank>> {
        let n = c.len(9)?;
        let mut m = HashMap::with_capacity(n);
        for _ in 0..n {
            let p = PointId(c.u32()?);
            let t = Temp(c.u32()?);
            m.insert((p, t), c.bank()?);
        }
        Some(m)
    };
    let before = placements(&mut c)?;
    let after = placements(&mut c)?;

    let n_points = c.len(12)?;
    let mut moves = HashMap::with_capacity(n_points);
    for _ in 0..n_points {
        let p = PointId(c.u32()?);
        let n = c.len(6)?;
        let mut ms = Vec::with_capacity(n);
        for _ in 0..n {
            let t = Temp(c.u32()?);
            let from = c.bank()?;
            let to = c.bank()?;
            ms.push((t, from, to));
        }
        moves.insert(p, ms);
    }

    let n_colors = c.len(6)?;
    let mut colors = HashMap::with_capacity(n_colors);
    for _ in 0..n_colors {
        let t = Temp(c.u32()?);
        let b = c.bank()?;
        colors.insert((t, b), c.u8()?);
    }

    let n_moves = usize::try_from(c.u64()?).ok()?;
    let n_spills = usize::try_from(c.u64()?).ok()?;

    let values = match c.u8()? {
        0 => None,
        1 => {
            let n = c.len(8)?;
            let mut vs = Vec::with_capacity(n);
            for _ in 0..n {
                vs.push(c.f64()?);
            }
            Some(vs)
        }
        _ => return None,
    };
    if c.at != payload.len() {
        return None; // trailing garbage
    }
    Some(DiskEntry {
        objective,
        quality,
        asg: Assignment {
            before,
            after,
            moves,
            colors,
            n_moves,
            n_spills,
        },
        values,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> DiskEntry {
        let mut before = HashMap::new();
        before.insert((PointId(0), Temp(3)), IlpBank::A);
        before.insert((PointId(4), Temp(1)), IlpBank::Sd);
        let mut after = HashMap::new();
        after.insert((PointId(0), Temp(3)), IlpBank::B);
        let mut moves = HashMap::new();
        moves.insert(PointId(0), vec![(Temp(3), IlpBank::A, IlpBank::B)]);
        let mut colors = HashMap::new();
        colors.insert((Temp(3), IlpBank::S), 2u8);
        DiskEntry {
            objective: 7.25,
            quality: AllocQuality {
                stage: 0,
                proven_optimal: true,
                gap: 0.0,
                spills: 0,
            },
            asg: Assignment {
                before,
                after,
                moves,
                colors,
                n_moves: 1,
                n_spills: 0,
            },
            values: Some(vec![0.0, 1.0, 0.5]),
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let e = entry();
        let d = decode(&encode(&e)).expect("own encoding decodes");
        assert_eq!(d.objective.to_bits(), e.objective.to_bits());
        assert_eq!(d.quality, e.quality);
        assert_eq!(d.asg, e.asg);
        assert_eq!(
            d.values
                .as_deref()
                .map(|v| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>()),
            e.values
                .as_deref()
                .map(|v| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>())
        );
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(encode(&entry()), encode(&entry()));
    }

    #[test]
    fn every_truncation_is_a_clean_reject() {
        let bytes = encode(&entry());
        for n in 0..bytes.len() {
            assert!(decode(&bytes[..n]).is_none(), "truncation at {n} decoded");
        }
    }

    #[test]
    fn every_single_bit_flip_is_a_clean_reject() {
        let bytes = encode(&entry());
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut c = bytes.clone();
                c[i] ^= 1 << bit;
                assert!(decode(&c).is_none(), "flip at byte {i} bit {bit} decoded");
            }
        }
    }

    #[test]
    fn trailing_bytes_are_a_reject() {
        let mut bytes = encode(&entry());
        bytes.push(0);
        assert!(decode(&bytes).is_none());
    }
}
