//! Session-based compilation with phase-granular caching.
//!
//! A [`Compiler`] owns persistent caches keyed by content hashes of each
//! phase's *input* artifact plus the configuration slice that phase
//! reads, so recompiling an edited variant of a program re-runs only the
//! phases the edit actually invalidates:
//!
//! | edit kind            | re-runs                                   |
//! |----------------------|-------------------------------------------|
//! | comment / whitespace | nothing (full image cache hit)            |
//! | rule constant        | frontend → isel (cheap); allocation is    |
//! |                      | *re-finished* from the cached MILP answer |
//! | structural           | everything (a cold compile)               |
//!
//! The expensive phase is the MILP bank-allocation solve, and it never
//! reads immediate values: fact extraction pattern-matches operand
//! *shapes*, and frequency estimation reads only branch structure. The
//! allocation cache therefore keys on an **immediate-masked** fingerprint
//! of the virtual-register program — two programs that differ only in
//! constants share one solved model, and the warm compile re-runs only
//! extraction/coloring/validation against the new program, which is
//! bit-identical to what a cold solve would produce.
//!
//! When the structure fingerprint misses (e.g. a cost-knob config change
//! invalidated the cache key), a previously solved raw solution vector
//! for the same model structure is offered to the solver as a warm-start
//! incumbent (see [`ilp::solve_milp_hinted_with`]).
//!
//! Sessions are cheap to [`Clone`]: clones share the same caches, which
//! is how the `nova-server` worker pool gives every client the benefit
//! of every other client's compiles.

use crate::lru::LruMap;
use crate::persist::{DiskCache, DiskEntry, Load};
use crate::{
    alloc_error, cps_phase, frontend_phase, isel_phase, CompileConfig, CompileError, CompileOutput,
    CompileReport, Phase,
};
use ixp_machine::{Addr, AluSrc, Instr, Program, Temp, Terminator};
use nova_backend::{
    allocate_solved_with, readopt_assignment_with, refinish_with, Allocation, SolvedAllocation,
};
use nova_frontend::{StaticStats, Token};
use nova_obs::{MemoryRecorder, Obs, Recorder, TeeRecorder};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The frontend's cached artifact: AST, types, and Figure-5 statistics.
struct FrontendArt {
    program: nova_frontend::Program,
    info: nova_frontend::TypeInfo,
    static_stats: StaticStats,
}

/// The CPS phase's cached artifact: optimized SSU-form CPS plus the
/// optimizer and SSU statistics.
struct CpsArt {
    cps: nova_cps::Cps,
    opt_stats: nova_cps::OptStats,
    ssu_stats: nova_cps::SsuStats,
}

/// One per-phase counter pair.
#[derive(Default)]
struct HitMiss {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl HitMiss {
    fn record(&self, obs: &Obs, phase: &'static str, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        // One stable counter name per (phase, outcome) so summaries and
        // the service bench can read hit rates straight off the trace.
        let name: &'static str = match (phase, hit) {
            ("frontend", true) => "session.cache.frontend.hit",
            ("frontend", false) => "session.cache.frontend.miss",
            ("cps", true) => "session.cache.cps.hit",
            ("cps", false) => "session.cache.cps.miss",
            ("isel", true) => "session.cache.isel.hit",
            ("isel", false) => "session.cache.isel.miss",
            ("alloc", true) => "session.cache.alloc.hit",
            ("alloc", false) => "session.cache.alloc.miss",
            ("output", true) => "session.cache.output.hit",
            ("output", false) => "session.cache.output.miss",
            _ => unreachable!("unknown cache phase"),
        };
        obs.counter(name, 1);
    }

    fn snapshot(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// One phase-boundary cache: input-content hash → the phase's memoized
/// artifact or its diagnostic, with LRU recency tracking so a
/// [`crate::CacheBudget`] can bound retention.
type PhaseCache<T> = Mutex<LruMap<Result<Arc<T>, CompileError>>>;

/// Shared mutable state of one session: one cache per phase boundary,
/// the MILP warm-start pool, the optional on-disk allocation cache, and
/// the hit/miss counters.
#[derive(Default)]
struct SessionState {
    /// Token fingerprint → frontend artifact (or its diagnostic).
    frontend: PhaseCache<FrontendArt>,
    /// (token fp, optimizer config) → optimized SSU CPS.
    cps: PhaseCache<CpsArt>,
    /// CPS key → virtual-register program.
    isel: PhaseCache<Program<Temp>>,
    /// (immediate-masked vprog fp, allocator config) → solved artifacts.
    alloc: Mutex<LruMap<Arc<SolvedAllocation>>>,
    /// (immediate-masked vprog fp, structure knobs) → raw solution vector
    /// for warm-starting a solve whose cost knobs changed.
    hints: Mutex<LruMap<Arc<Vec<f64>>>>,
    /// (token fp, full pipeline config) → finished compile (or failure).
    output: PhaseCache<CompileOutput>,
    /// The on-disk allocation cache, when persistence is configured.
    disk: Option<DiskCache>,
    frontend_stats: HitMiss,
    cps_stats: HitMiss,
    isel_stats: HitMiss,
    alloc_stats: HitMiss,
    output_stats: HitMiss,
    refinish_fallbacks: AtomicU64,
    hint_offers: AtomicU64,
    evict_count: AtomicU64,
    evict_bytes: AtomicU64,
    disk_hits: AtomicU64,
    disk_misses: AtomicU64,
    disk_rejects: AtomicU64,
}

/// A point-in-time snapshot of a session's cache counters, one
/// (hits, misses) pair per phase boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Frontend (lex/parse/typecheck) cache hits.
    pub frontend_hits: u64,
    /// Frontend cache misses.
    pub frontend_misses: u64,
    /// CPS (convert/optimize/SSU) cache hits.
    pub cps_hits: u64,
    /// CPS cache misses.
    pub cps_misses: u64,
    /// Instruction-selection cache hits.
    pub isel_hits: u64,
    /// Instruction-selection cache misses.
    pub isel_misses: u64,
    /// Allocation cache hits (MILP solve skipped, re-finish only).
    pub alloc_hits: u64,
    /// Allocation cache misses (full solve ran).
    pub alloc_misses: u64,
    /// Whole-image cache hits (nothing re-ran).
    pub output_hits: u64,
    /// Whole-image cache misses.
    pub output_misses: u64,
    /// Allocation cache hits whose re-finish failed, forcing a fallback
    /// full solve (counted under `alloc_misses` as well).
    pub refinish_fallbacks: u64,
    /// Cold solves that were offered a cached warm-start vector.
    pub hint_offers: u64,
    /// Entries evicted from the phase caches under a
    /// [`crate::CacheBudget`] (zero when unbounded, the default).
    pub evict_count: u64,
    /// Estimated bytes those evictions released.
    pub evict_bytes: u64,
    /// Disk-cache lookups that loaded and readopted a persisted
    /// allocation (the MILP solve was skipped; also counted as
    /// `alloc_hits`). Zero when persistence is off.
    pub disk_hits: u64,
    /// Disk-cache lookups that found no entry.
    pub disk_misses: u64,
    /// Disk-cache lookups that found an entry but refused it: corrupt or
    /// truncated bytes, a stale format version, or an assignment the
    /// current program rejects. Always a clean miss, never a failure.
    pub disk_rejects: u64,
}

impl CacheStats {
    /// Hit rate of one (hits, misses) pair; `None` when nothing was
    /// looked up.
    #[allow(clippy::cast_precision_loss)]
    fn rate(hits: u64, misses: u64) -> Option<f64> {
        let total = hits + misses;
        if total == 0 {
            None
        } else {
            Some(hits as f64 / total as f64)
        }
    }

    /// Allocation-phase hit rate, if any allocations were attempted.
    pub fn alloc_hit_rate(&self) -> Option<f64> {
        Self::rate(self.alloc_hits, self.alloc_misses)
    }

    /// Whole-image hit rate, if any compiles ran.
    pub fn output_hit_rate(&self) -> Option<f64> {
        Self::rate(self.output_hits, self.output_misses)
    }

    /// Frontend hit rate, if the frontend cache was consulted.
    pub fn frontend_hit_rate(&self) -> Option<f64> {
        Self::rate(self.frontend_hits, self.frontend_misses)
    }
}

/// A compile session: a handle over one [`CompileConfig`] plus
/// persistent phase caches. The primary compilation entry point.
///
/// Cloning is cheap and shares the caches — hand clones to worker
/// threads to serve concurrent clients from one artifact pool.
#[derive(Clone)]
pub struct Compiler {
    config: CompileConfig,
    /// Fingerprint of the optimizer slice of the config (+ `skip_opt`).
    opt_fp: u64,
    /// Fingerprint of the allocator slice of the config.
    alloc_fp: u64,
    /// Fingerprint of the allocator knobs that shape the MILP's variable
    /// space (cost and solver knobs excluded): two configs with equal
    /// structure fingerprints produce models over the same columns, so
    /// solutions transfer between them as warm starts.
    structure_fp: u64,
    /// Combined fingerprint of every config slice the pipeline reads.
    pipeline_fp: u64,
    state: Arc<SessionState>,
}

impl std::fmt::Debug for Compiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Compiler")
            .field("config", &self.config)
            .field("cache_stats", &self.cache_stats())
            .finish()
    }
}

impl Compiler {
    /// Create a session from a configuration. The configuration is fixed
    /// for the session's lifetime (its fingerprints key every cache);
    /// use one session per configuration.
    pub fn new(config: CompileConfig) -> Self {
        let opt_fp = hash_parts(&[
            fingerprint_str(&format!("{:?}", config.opt)),
            u64::from(config.skip_opt),
        ]);
        let alloc_fp = fingerprint_str(&format!("{:?}", config.alloc));
        let a = &config.alloc;
        let structure_fp = fingerprint_str(&format!(
            "{:?}",
            (
                a.allow_spill,
                a.redundant_cuts,
                a.prune,
                a.k_a,
                a.k_b,
                a.spill_auto
            )
        ));
        let pipeline_fp = hash_parts(&[opt_fp, alloc_fp]);
        // An uncreatable persistence directory silently disables the disk
        // cache: persistence accelerates restarts, it never gates them.
        let disk = config.persist_dir.as_deref().and_then(DiskCache::open);
        Compiler {
            config,
            opt_fp,
            alloc_fp,
            structure_fp,
            pipeline_fp,
            state: Arc::new(SessionState {
                disk,
                ..SessionState::default()
            }),
        }
    }

    /// The session's configuration.
    pub fn config(&self) -> &CompileConfig {
        &self.config
    }

    /// Current cache counters (cumulative across clones of this session).
    pub fn cache_stats(&self) -> CacheStats {
        let s = &self.state;
        let (frontend_hits, frontend_misses) = s.frontend_stats.snapshot();
        let (cps_hits, cps_misses) = s.cps_stats.snapshot();
        let (isel_hits, isel_misses) = s.isel_stats.snapshot();
        let (alloc_hits, alloc_misses) = s.alloc_stats.snapshot();
        let (output_hits, output_misses) = s.output_stats.snapshot();
        CacheStats {
            frontend_hits,
            frontend_misses,
            cps_hits,
            cps_misses,
            isel_hits,
            isel_misses,
            alloc_hits,
            alloc_misses,
            output_hits,
            output_misses,
            refinish_fallbacks: s.refinish_fallbacks.load(Ordering::Relaxed),
            hint_offers: s.hint_offers.load(Ordering::Relaxed),
            evict_count: s.evict_count.load(Ordering::Relaxed),
            evict_bytes: s.evict_bytes.load(Ordering::Relaxed),
            disk_hits: s.disk_hits.load(Ordering::Relaxed),
            disk_misses: s.disk_misses.load(Ordering::Relaxed),
            disk_rejects: s.disk_rejects.load(Ordering::Relaxed),
        }
    }

    /// Compile source text, returning the artifact plus an aggregated
    /// trace of whatever actually ran (a full cache hit produces a
    /// near-empty trace: the lex, the lookup counters, nothing else).
    ///
    /// # Errors
    ///
    /// The first [`CompileError`] of whichever phase fails. Failures are
    /// cached like successes: resubmitting a broken input returns the
    /// same diagnostic without re-running the failing phase.
    pub fn compile(&self, source: &str) -> Result<CompileReport, CompileError> {
        let memory = MemoryRecorder::new();
        let obs = if self.config.observer.enabled() {
            Obs::new(TeeRecorder::new(vec![
                Arc::new(memory.clone()) as Arc<dyn Recorder>,
                self.config
                    .observer
                    .recorder()
                    .expect("enabled observer has a recorder"),
            ]))
        } else {
            Obs::new(memory.clone())
        };
        let artifact = self.compile_cached(source, &obs)?;
        Ok(CompileReport {
            artifact,
            trace: memory.summary(),
        })
    }

    /// [`compile`](Self::compile) without the trace tee: telemetry goes
    /// only to the configured observer.
    ///
    /// # Errors
    ///
    /// Same contract as [`compile`](Self::compile).
    pub fn compile_output(&self, source: &str) -> Result<CompileOutput, CompileError> {
        let obs = self.config.observer.clone();
        self.compile_cached(source, &obs)
    }

    /// The cached pipeline: each phase is looked up by the content hash
    /// of its input artifact + config slice, computed on miss, and the
    /// result (success or failure) memoized.
    fn compile_cached(&self, source: &str, obs: &Obs) -> Result<CompileOutput, CompileError> {
        let state = &*self.state;
        // Lexing is the one phase that always runs: its token stream is
        // the root content hash every other key derives from. The lexer
        // drops comments and the fingerprint drops spans, so edits to
        // either are full cache hits.
        let tokens = nova_frontend::lex(source)
            .map_err(|d| CompileError::with_span(Phase::Parse, "E-PARSE", source, &d))?;
        let tok_fp = fingerprint_tokens(&tokens);
        drop(tokens);

        // Whole-image lookup first: on a hit nothing else runs.
        let out_key = hash_parts(&[0x6f75_7470, tok_fp, self.pipeline_fp]);
        if let Some(cached) = state.output.lock().unwrap().get(out_key).cloned() {
            state.output_stats.record(obs, "output", true);
            return cached.map(|arc| (*arc).clone());
        }
        state.output_stats.record(obs, "output", false);

        let result = self.compile_phases(source, tok_fp, obs);
        let memo = result
            .as_ref()
            .map(|out| Arc::new(out.clone()))
            .map_err(Clone::clone);
        let weight = weight_result(&memo, |out: &CompileOutput| {
            256 + 48 * instr_count(&out.prog) + 8 * source.len() as u64
        });
        self.insert_evicting(&state.output, out_key, memo, weight, obs);
        result
    }

    /// Insert into one phase cache under the session's budget, folding
    /// whatever got evicted into the counters.
    fn insert_evicting<V>(
        &self,
        cache: &Mutex<LruMap<V>>,
        key: u64,
        val: V,
        weight: u64,
        obs: &Obs,
    ) {
        let (count, bytes) =
            cache
                .lock()
                .unwrap()
                .insert(key, val, weight, &self.config.cache_budget);
        if count > 0 {
            self.state.evict_count.fetch_add(count, Ordering::Relaxed);
            self.state.evict_bytes.fetch_add(bytes, Ordering::Relaxed);
            obs.counter("session.cache.evict.count", count);
            obs.counter("session.cache.evict.bytes", bytes);
        }
    }

    /// The phase chain behind a whole-image miss.
    fn compile_phases(
        &self,
        source: &str,
        tok_fp: u64,
        obs: &Obs,
    ) -> Result<CompileOutput, CompileError> {
        let state = &*self.state;

        // ---- frontend ----
        let front = {
            let cached = state.frontend.lock().unwrap().get(tok_fp).cloned();
            match cached {
                Some(r) => {
                    state.frontend_stats.record(obs, "frontend", true);
                    r?
                }
                None => {
                    state.frontend_stats.record(obs, "frontend", false);
                    let computed = frontend_phase(source, obs).map(|(program, info, stats)| {
                        Arc::new(FrontendArt {
                            program,
                            info,
                            static_stats: stats,
                        })
                    });
                    // AST + type info scale with the source; a 4x charge
                    // is the retained-size estimate the byte budget sees.
                    let weight = weight_result(&computed, |_| 4 * source.len() as u64);
                    self.insert_evicting(&state.frontend, tok_fp, computed.clone(), weight, obs);
                    computed?
                }
            }
        };

        // ---- CPS ----
        let cps_key = hash_parts(&[0x0063_7073, tok_fp, self.opt_fp]);
        let cps_art = {
            let cached = state.cps.lock().unwrap().get(cps_key).cloned();
            match cached {
                Some(r) => {
                    state.cps_stats.record(obs, "cps", true);
                    r?
                }
                None => {
                    state.cps_stats.record(obs, "cps", false);
                    let computed =
                        cps_phase(&front.program, &front.info, source, &self.config, obs).map(
                            |(cps, opt_stats, ssu_stats)| {
                                Arc::new(CpsArt {
                                    cps,
                                    opt_stats,
                                    ssu_stats,
                                })
                            },
                        );
                    let weight = weight_result(&computed, |_| 8 * source.len() as u64);
                    self.insert_evicting(&state.cps, cps_key, computed.clone(), weight, obs);
                    computed?
                }
            }
        };

        // ---- instruction selection ----
        let isel_key = hash_parts(&[0x6973_656c, cps_key]);
        let vprog = {
            let cached = state.isel.lock().unwrap().get(isel_key).cloned();
            match cached {
                Some(r) => {
                    state.isel_stats.record(obs, "isel", true);
                    r?
                }
                None => {
                    state.isel_stats.record(obs, "isel", false);
                    let computed = isel_phase(&cps_art.cps, obs).map(Arc::new);
                    let weight = weight_result(&computed, |p: &Program<Temp>| 48 * instr_count(p));
                    self.insert_evicting(&state.isel, isel_key, computed.clone(), weight, obs);
                    computed?
                }
            }
        };

        // ---- allocation ----
        let allocation = self.allocate_cached(&vprog, obs)?;

        let code_size = allocation.prog.len();
        Ok(CompileOutput {
            prog: allocation.prog,
            static_stats: front.static_stats,
            cps: cps_art.cps.clone(),
            opt_stats: cps_art.opt_stats.clone(),
            ssu_stats: cps_art.ssu_stats.clone(),
            alloc_stats: allocation.stats,
            alloc_quality: allocation.quality,
            code_size,
        })
    }

    /// Allocation with the immediate-masked cache: an in-memory hit skips
    /// the MILP solve entirely and re-finishes the cached assignment
    /// against this (structurally identical) program; on a miss the
    /// on-disk cache (if configured) is consulted and a persisted
    /// assignment is readopted — still no solve; only when both miss does
    /// a full solve run, warm-started from the hint pool when a
    /// compatible solution exists.
    fn allocate_cached(
        &self,
        vprog: &Program<Temp>,
        obs: &Obs,
    ) -> Result<Allocation, CompileError> {
        let state = &*self.state;
        let masked_fp = masked_program_fp(vprog);
        let alloc_key = hash_parts(&[0x0061_6c6c_6f63, masked_fp, self.alloc_fp]);

        let cached = state.alloc.lock().unwrap().get(alloc_key).cloned();
        if let Some(solved) = cached {
            match refinish_with(vprog, &solved, obs) {
                Ok(alloc) => {
                    state.alloc_stats.record(obs, "alloc", true);
                    return Ok(alloc);
                }
                Err(_) => {
                    // A masked-fingerprint collision or a cached artifact
                    // the new program rejects: fall back to a full solve
                    // rather than failing the compile.
                    state.refinish_fallbacks.fetch_add(1, Ordering::Relaxed);
                    obs.counter("session.cache.refinish_fallback", 1);
                }
            }
        } else if let Some(disk) = &state.disk {
            // Restart warm path: the predecessor session persisted the
            // decision half of this solve; readopting it rebuilds the
            // deterministic rest and skips the MILP. Every lookup lands
            // on exactly one of hit/miss/reject.
            match disk.load(alloc_key) {
                Load::Hit(entry) => {
                    match readopt_assignment_with(
                        vprog,
                        &self.config.alloc,
                        entry.asg,
                        entry.quality,
                        entry.objective,
                        entry.values,
                        obs,
                    ) {
                        Ok((alloc, solved)) => {
                            state.disk_hits.fetch_add(1, Ordering::Relaxed);
                            obs.counter("session.cache.disk.hit", 1);
                            state.alloc_stats.record(obs, "alloc", true);
                            self.remember_solved(alloc_key, masked_fp, solved, obs);
                            return Ok(alloc);
                        }
                        Err(_) => {
                            // The entry decoded but this program rejects
                            // it (stale key, collision): a reject, and
                            // the full solve below recovers.
                            state.disk_rejects.fetch_add(1, Ordering::Relaxed);
                            obs.counter("session.cache.disk.reject", 1);
                        }
                    }
                }
                Load::Miss => {
                    state.disk_misses.fetch_add(1, Ordering::Relaxed);
                    obs.counter("session.cache.disk.miss", 1);
                }
                Load::Reject => {
                    state.disk_rejects.fetch_add(1, Ordering::Relaxed);
                    obs.counter("session.cache.disk.reject", 1);
                }
            }
        }
        state.alloc_stats.record(obs, "alloc", false);

        let hint_key = hash_parts(&[0x6869_6e74, masked_fp, self.structure_fp]);
        let hint = state.hints.lock().unwrap().get(hint_key).cloned();
        if hint.is_some() {
            state.hint_offers.fetch_add(1, Ordering::Relaxed);
            obs.counter("session.cache.hint_offered", 1);
        }
        let (alloc, solved) = allocate_solved_with(
            vprog,
            &self.config.alloc,
            hint.as_deref().map(Vec::as_slice),
            obs,
        )
        .map_err(alloc_error)?;
        if let Some(disk) = &state.disk {
            disk.store(
                alloc_key,
                &DiskEntry {
                    objective: solved.stats.objective,
                    quality: solved.quality,
                    asg: solved.asg.clone(),
                    values: solved.values.clone(),
                },
            );
        }
        self.remember_solved(alloc_key, masked_fp, solved, obs);
        Ok(alloc)
    }

    /// Put a solved allocation into the in-memory caches: the solution
    /// vector into the warm-start hint pool, the artifacts under the
    /// allocation key.
    fn remember_solved(&self, alloc_key: u64, masked_fp: u64, solved: SolvedAllocation, obs: &Obs) {
        let state = &*self.state;
        let hint_key = hash_parts(&[0x6869_6e74, masked_fp, self.structure_fp]);
        if let Some(values) = &solved.values {
            let weight = 64 + 8 * values.len() as u64;
            self.insert_evicting(
                &state.hints,
                hint_key,
                Arc::new(values.clone()),
                weight,
                obs,
            );
        }
        let weight = weight_solved(&solved);
        self.insert_evicting(&state.alloc, alloc_key, Arc::new(solved), weight, obs);
    }
}

/// Machine-instruction count of a program (any register type).
fn instr_count<R>(p: &Program<R>) -> u64 {
    p.blocks.iter().map(|b| b.instrs.len() as u64).sum()
}

/// Estimated retained bytes of one memoized phase result: a fixed entry
/// overhead plus the artifact estimate (or the diagnostic's message).
fn weight_result<T>(r: &Result<Arc<T>, CompileError>, artifact: impl Fn(&T) -> u64) -> u64 {
    64 + match r {
        Ok(v) => artifact(v),
        Err(e) => e.message.len() as u64,
    }
}

/// Estimated retained bytes of a cached [`SolvedAllocation`]: the decoded
/// assignment and solution vector dominate, plus a flat charge for the
/// facts and model bookkeeping.
fn weight_solved(s: &SolvedAllocation) -> u64 {
    let asg = 24 * (s.asg.before.len() + s.asg.after.len() + s.asg.colors.len()) as u64;
    let values = 8 * s.values.as_ref().map_or(0, Vec::len) as u64;
    let facts = 48 * s.facts.exists.len() as u64;
    4096 + asg + values + facts
}

/// Deterministic (fixed-key SipHash) combination of pre-hashed parts.
fn hash_parts(parts: &[u64]) -> u64 {
    let mut h = DefaultHasher::new();
    for p in parts {
        p.hash(&mut h);
    }
    h.finish()
}

/// Deterministic fingerprint of a string (config `Debug` renderings).
fn fingerprint_str(s: &str) -> u64 {
    let mut h = DefaultHasher::new();
    s.hash(&mut h);
    h.finish()
}

/// Content hash of a token stream with spans dropped: the token kind,
/// the literal value, and the identifier text. Two sources that differ
/// only in comments or layout fingerprint identically (the lexer never
/// emits comment tokens).
fn fingerprint_tokens(tokens: &[Token]) -> u64 {
    let mut h = DefaultHasher::new();
    tokens.len().hash(&mut h);
    for t in tokens {
        std::mem::discriminant(&t.tok).hash(&mut h);
        t.value.hash(&mut h);
        t.text.hash(&mut h);
    }
    h.finish()
}

/// Fingerprint of a virtual-register program with immediate *values*
/// masked out (their positions still hash). Sound as an allocation cache
/// key because no allocation-phase input reads immediate values: fact
/// extraction matches operand shapes (`AluSrc::Imm(_)`), and frequency
/// estimation reads only branch/block structure. Everything allocation
/// *does* read — opcodes, register structure, memory spaces, aggregate
/// widths, conditions, control flow — hashes fully.
fn masked_program_fp(prog: &Program<Temp>) -> u64 {
    let mut h = DefaultHasher::new();
    prog.entry.hash(&mut h);
    prog.blocks.len().hash(&mut h);
    for block in &prog.blocks {
        block.instrs.len().hash(&mut h);
        for ins in &block.instrs {
            hash_instr_masked(ins, &mut h);
        }
        match &block.term {
            Terminator::Jump(t) => {
                0u8.hash(&mut h);
                t.hash(&mut h);
            }
            Terminator::Branch {
                cond,
                a,
                b,
                if_true,
                if_false,
            } => {
                1u8.hash(&mut h);
                cond.hash(&mut h);
                a.hash(&mut h);
                hash_alusrc_masked(b, &mut h);
                if_true.hash(&mut h);
                if_false.hash(&mut h);
            }
            Terminator::Halt => 2u8.hash(&mut h),
        }
    }
    h.finish()
}

fn hash_alusrc_masked<H: Hasher>(src: &AluSrc<Temp>, h: &mut H) {
    match src {
        AluSrc::Reg(r) => {
            0u8.hash(h);
            r.hash(h);
        }
        AluSrc::Imm(_) => 1u8.hash(h),
    }
}

fn hash_addr_masked<H: Hasher>(addr: &Addr<Temp>, h: &mut H) {
    match addr {
        Addr::Imm(_) => 0u8.hash(h),
        Addr::Reg(r, _) => {
            1u8.hash(h);
            r.hash(h);
        }
    }
}

fn hash_instr_masked<H: Hasher>(ins: &Instr<Temp>, h: &mut H) {
    match ins {
        Instr::Alu { op, dst, a, b } => {
            0u8.hash(h);
            op.hash(h);
            dst.hash(h);
            a.hash(h);
            hash_alusrc_masked(b, h);
        }
        Instr::Imm { dst, val: _ } => {
            1u8.hash(h);
            dst.hash(h);
        }
        Instr::Move { dst, src } => {
            2u8.hash(h);
            dst.hash(h);
            src.hash(h);
        }
        Instr::Clone { dst, src } => {
            3u8.hash(h);
            dst.hash(h);
            src.hash(h);
        }
        Instr::MemRead { space, addr, dst } => {
            4u8.hash(h);
            space.hash(h);
            hash_addr_masked(addr, h);
            dst.hash(h);
        }
        Instr::MemWrite { space, addr, src } => {
            5u8.hash(h);
            space.hash(h);
            hash_addr_masked(addr, h);
            src.hash(h);
        }
        Instr::Hash { dst, src } => {
            6u8.hash(h);
            dst.hash(h);
            src.hash(h);
        }
        Instr::TestAndSet { dst, src, addr } => {
            7u8.hash(h);
            dst.hash(h);
            src.hash(h);
            hash_addr_masked(addr, h);
        }
        // CSR numbers select *which* register is touched (semantics, not
        // a tunable constant): hash them fully.
        Instr::CsrRead { dst, csr } => {
            8u8.hash(h);
            dst.hash(h);
            csr.hash(h);
        }
        Instr::CsrWrite { src, csr } => {
            9u8.hash(h);
            src.hash(h);
            csr.hash(h);
        }
        Instr::RxPacket { len_dst, addr_dst } => {
            10u8.hash(h);
            len_dst.hash(h);
            addr_dst.hash(h);
        }
        Instr::TxPacket { addr, len } => {
            11u8.hash(h);
            addr.hash(h);
            len.hash(h);
        }
        Instr::CtxSwap => 12u8.hash(h),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CompileConfig;

    const BASE: &str = "fun main() { let (a, b) = sram(0); sram(8) <- (a + b, a); 0 }";

    fn cfg() -> CompileConfig {
        CompileConfig::builder().solver_threads(1).build()
    }

    #[test]
    fn comment_edit_is_a_full_image_hit() {
        let c = Compiler::new(cfg());
        let cold = c.compile(BASE).unwrap();
        let commented = format!("// a comment\n{BASE} // trailing\n");
        let warm = c.compile(&commented).unwrap();
        assert!(warm.artifact.artifact_eq(&cold.artifact));
        let s = c.cache_stats();
        assert_eq!(s.output_hits, 1);
        assert_eq!(s.output_misses, 1);
        // The hit never consulted the per-phase caches.
        assert_eq!(s.frontend_misses, 1);
        assert_eq!(s.frontend_hits, 0);
    }

    #[test]
    fn constant_edit_skips_the_solve() {
        let c = Compiler::new(cfg());
        let cold = Compiler::new(cfg()).compile(BASE).unwrap();
        c.compile(BASE).unwrap();
        let edited = BASE.replace("sram(8)", "sram(12)");
        assert_ne!(edited, BASE);
        let warm = c.compile(&edited).unwrap();
        let s = c.cache_stats();
        assert_eq!(s.output_hits, 0);
        assert_eq!(s.alloc_hits, 1, "masked fingerprint should hit: {s:?}");
        assert_eq!(s.alloc_misses, 1);
        // Bit-identical to a cold compile of the edited source.
        let cold_edited = Compiler::new(cfg()).compile(&edited).unwrap();
        assert_eq!(warm.artifact.prog, cold_edited.artifact.prog);
        // And genuinely different from the base program's image.
        assert_ne!(warm.artifact.prog, cold.artifact.prog);
    }

    #[test]
    fn structural_edit_misses_everywhere() {
        let c = Compiler::new(cfg());
        c.compile(BASE).unwrap();
        let structural = "fun main() { let (a, b) = sram(0); sram(8) <- (a + b, a - b); 0 }";
        c.compile(structural).unwrap();
        let s = c.cache_stats();
        assert_eq!(s.frontend_hits, 0);
        assert_eq!(s.frontend_misses, 2);
        assert_eq!(s.alloc_hits, 0);
        assert_eq!(s.alloc_misses, 2);
    }

    #[test]
    fn failures_are_cached() {
        let c = Compiler::new(cfg());
        let e1 = c.compile("fun main() { let x = 1; y }").unwrap_err();
        let e2 = c.compile("fun main() { let x = 1; y }").unwrap_err();
        assert_eq!(e1, e2);
        let s = c.cache_stats();
        assert_eq!(s.output_hits, 1);
        assert_eq!(s.output_misses, 1);
    }

    #[test]
    fn clones_share_caches() {
        let c = Compiler::new(cfg());
        c.compile(BASE).unwrap();
        let worker = c.clone();
        worker.compile(BASE).unwrap();
        let s = c.cache_stats();
        assert_eq!(s.output_hits, 1);
        assert_eq!(s.output_misses, 1);
    }

    #[test]
    fn masked_fingerprint_ignores_immediates_only() {
        let cfg = cfg();
        let compile_vprog = |src: &str| {
            let (program, info, _) = frontend_phase(src, &Obs::noop()).unwrap();
            let (cps, _, _) = cps_phase(&program, &info, src, &cfg, &Obs::noop()).unwrap();
            isel_phase(&cps, &Obs::noop()).unwrap()
        };
        let base = compile_vprog(BASE);
        let consts = compile_vprog(&BASE.replace("sram(8)", "sram(12)"));
        let structural =
            compile_vprog("fun main() { let (a, b) = sram(0); sram(8) <- (a + b, a - b); 0 }");
        assert_eq!(masked_program_fp(&base), masked_program_fp(&consts));
        assert_ne!(masked_program_fp(&base), masked_program_fp(&structural));
    }
}
