//! The Nova compiler: one-call pipeline from source text to allocated,
//! validated IXP1200 machine code.
//!
//! This crate glues the phases together in the paper's order (§4):
//! parse → type check → CPS conversion → CPS optimization
//! (de-proceduralization included) → static single use → instruction
//! selection → ILP bank/register allocation → A/B coloring → validation.
//!
//! # Example
//!
//! ```
//! let out = nova::compile_source(
//!     "fun main() { let (a, b) = sram(0); sram(8) <- (a + b, a); 0 }",
//!     &nova::CompileConfig::default(),
//! ).unwrap();
//! assert!(ixp_machine::validate(&out.prog).is_empty());
//! assert_eq!(out.alloc_stats.spills, 0);
//! ```

#![warn(missing_docs)]

use nova_backend::alloc::AllocConfig;
use nova_cps::{OptConfig, SsuStats};
use nova_frontend::StaticStats;

pub use nova_backend::AllocStats;

/// Pipeline configuration.
#[derive(Debug, Clone, Default)]
pub struct CompileConfig {
    /// CPS optimizer settings.
    pub opt: OptConfig,
    /// Allocator / ILP settings.
    pub alloc: AllocConfig,
    /// Skip the optimizer (for ablations and debugging).
    pub skip_opt: bool,
}

impl CompileConfig {
    /// Builder-style override of the ILP solver's worker-thread count.
    /// `0` restores automatic selection: the `NOVA_ILP_THREADS`
    /// environment variable if set, else the machine's available
    /// parallelism.
    #[must_use]
    pub fn with_solver_threads(mut self, threads: usize) -> Self {
        self.alloc.solver.threads = threads;
        self
    }

    /// Builder-style override of the ILP solver's LP basis kernel.
    /// `None` restores automatic selection: sparse LU unless the
    /// `NOVA_ILP_KERNEL=dense` environment variable asks for the dense
    /// product-form inverse.
    #[must_use]
    pub fn with_solver_kernel(mut self, kernel: Option<ilp::KernelKind>) -> Self {
        self.alloc.solver.kernel = kernel;
        self
    }
}

/// Everything the compiler produces for one program.
#[derive(Debug)]
pub struct CompileOutput {
    /// Allocated, validated machine code.
    pub prog: ixp_machine::Program<ixp_machine::PhysReg>,
    /// Figure-5 static statistics of the source.
    pub static_stats: StaticStats,
    /// The optimized CPS (kept for oracle comparisons).
    pub cps: nova_cps::Cps,
    /// Optimizer statistics.
    pub opt_stats: nova_cps::OptStats,
    /// SSU statistics.
    pub ssu_stats: SsuStats,
    /// ILP model and solver statistics (Figures 6 and 7).
    pub alloc_stats: nova_backend::AllocStats,
    /// Machine instruction count of the final program.
    pub code_size: usize,
}

/// A pipeline failure with the phase that produced it.
#[derive(Debug)]
pub struct CompileError {
    /// Which phase failed.
    pub phase: &'static str,
    /// Rendered message.
    pub message: String,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.phase, self.message)
    }
}

impl std::error::Error for CompileError {}

fn err(phase: &'static str, message: impl std::fmt::Display) -> CompileError {
    CompileError { phase, message: message.to_string() }
}

/// Compile Nova source text to machine code.
///
/// # Errors
///
/// Returns the first error of whichever phase fails, tagged with the
/// phase name.
pub fn compile_source(
    source: &str,
    config: &CompileConfig,
) -> Result<CompileOutput, CompileError> {
    let program =
        nova_frontend::parse(source).map_err(|d| err("parse", d.render(source)))?;
    let info = nova_frontend::check(&program).map_err(|d| err("typecheck", d.render(source)))?;
    let static_stats = program.static_stats();
    let mut cps = nova_cps::convert(&program, &info)
        .map_err(|d| err("cps-convert", d.render(source)))?;
    let opt_stats = if config.skip_opt {
        // Even unoptimized builds need static call targets (label
        // specialization is a backend requirement, not an optimization).
        nova_cps::specialize(&mut cps)
    } else {
        nova_cps::optimize(&mut cps, &config.opt)
    };
    if !nova_cps::all_calls_static(&cps) {
        return Err(err(
            "cps-optimize",
            "a dynamic call target survived label specialization; \
             the IXP has no indirect branch",
        ));
    }
    let ssu_stats = nova_cps::to_ssu(&mut cps);
    nova_cps::check_ssu(&cps).map_err(|m| err("ssu", m))?;
    let vprog = nova_backend::select(&cps).map_err(|e| err("isel", e))?;
    let allocation =
        nova_backend::allocate(&vprog, &config.alloc).map_err(|e| err("alloc", e))?;
    let code_size = allocation.prog.len();
    Ok(CompileOutput {
        prog: allocation.prog,
        static_stats,
        cps,
        opt_stats,
        ssu_stats,
        alloc_stats: allocation.stats,
        code_size,
    })
}
