//! The Nova compiler: one-call pipeline from source text to allocated,
//! validated IXP1200 machine code.
//!
//! This crate glues the phases together in the paper's order (§4):
//! parse → type check → CPS conversion → CPS optimization
//! (de-proceduralization included) → static single use → instruction
//! selection → ILP bank/register allocation → A/B coloring → validation.
//!
//! Configuration goes through one builder — solver and simulation knobs
//! alike — and environment overrides (`NOVA_ILP_THREADS`,
//! `NOVA_ILP_KERNEL`) are resolved exactly once, at
//! [`CompileConfigBuilder::build`] time, never later inside the solver.
//!
//! The primary entry point is a [`Compiler`] session, which caches phase
//! artifacts by content hash so recompiling edited variants of a program
//! only re-runs the phases the edit invalidates:
//!
//! ```
//! let cfg = nova::CompileConfig::builder()
//!     .solver_threads(1)
//!     .solver_gap(0.0)
//!     .engines(6)
//!     .build();
//! let compiler = nova::Compiler::new(cfg);
//! let report = compiler
//!     .compile("fun main() { let (a, b) = sram(0); sram(8) <- (a + b, a); 0 }")
//!     .unwrap();
//! assert!(ixp_machine::validate(&report.artifact.prog).is_empty());
//! assert_eq!(report.artifact.alloc_stats.spills, 0);
//! ```

#![warn(missing_docs)]

mod lru;
mod persist;
mod session;

pub use session::{CacheStats, Compiler};

use nova_backend::alloc::AllocConfig;
use nova_cps::{OptConfig, SsuStats};
use nova_frontend::StaticStats;
use std::path::PathBuf;
use std::time::Duration;

pub use ilp::KernelKind;
pub use ixp_machine::channel::{ChannelFaults, ChannelStats};
pub use ixp_sim::{
    big_bang_rollout, image_checksum, simulate, simulate_chip, simulate_chip_reload,
    simulate_chip_reload_with, simulate_chip_with, simulate_topology, simulate_with,
    staged_rollout, ChipConfig, ChipShard, DisruptionReport, EngineStats, FlowPacket, HealthSlo,
    ImageSwap, LatencySummary, RollbackReason, RolloutConfig, RolloutFaults, RolloutOutcome,
    RolloutReport, RxGrant, SimConfig, SimMemory, SimMode, SimResult, StageOutcome, StageReport,
    StopReason, SwapOutcome, SwapReport, TopologyConfig, TopologyError, TopologyResult,
    TrafficSpec, WindowHealth,
};
pub use nova_backend::{AllocQuality, AllocStats, FallbackPolicy};
pub use nova_frontend::Span;
pub use nova_obs::{
    Event, EventKind, JsonLinesRecorder, MemoryRecorder, Obs, Recorder, Summary, TeeRecorder,
};

/// Hard ceiling on ILP worker threads (mirrors the solver's own cap).
const MAX_SOLVER_THREADS: usize = 64;

/// Simulation shape carried alongside the compile pipeline settings, so a
/// driver can compile and simulate from one configuration object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimSettings {
    /// Micro-engines for chip-level simulation (IXP1200: 6).
    pub engines: usize,
    /// Hardware contexts per engine (IXP1200: 4).
    pub contexts: usize,
    /// Simulated-cycle budget before the run stops with
    /// [`StopReason::CycleLimit`] and partial statistics.
    pub max_cycles: u64,
    /// Deterministic memory-channel fault injection (periodic bus stalls
    /// and dropped/retried references). Defaults to no faults; used by
    /// robustness tests to confirm the watchdog still yields partial
    /// statistics under a perturbed memory system.
    pub faults: ChannelFaults,
    /// Time-advance strategy: event-driven fast path (default) or the
    /// cycle-slice differential oracle. Both are bit-identical.
    pub mode: SimMode,
}

impl Default for SimSettings {
    fn default() -> Self {
        let chip = ChipConfig::default();
        SimSettings {
            engines: chip.engines,
            contexts: chip.contexts,
            max_cycles: chip.max_cycles,
            faults: chip.faults,
            mode: chip.mode,
        }
    }
}

impl SimSettings {
    /// Single-engine simulator configuration with these settings (the
    /// engine count is ignored; contexts become the engine's threads).
    pub fn sim_config(&self) -> SimConfig {
        SimConfig {
            threads: self.contexts,
            max_cycles: self.max_cycles,
            faults: self.faults,
            mode: self.mode,
        }
    }

    /// Chip-level simulator configuration with these settings.
    pub fn chip_config(&self) -> ChipConfig {
        ChipConfig {
            engines: self.engines,
            contexts: self.contexts,
            max_cycles: self.max_cycles,
            faults: self.faults,
            mode: self.mode,
            ..ChipConfig::default()
        }
    }
}

/// Retention budget for each of a session's phase caches. The default
/// (`0` on both axes) is unbounded — the historical behavior, and what
/// keeps short-lived CI streams' counter algebra exact. A long-lived
/// service sets one or both axes; the session then evicts
/// least-recently-used entries *per phase cache* on insertion, counting
/// them under `session.cache.evict.{count,bytes}` and
/// [`CacheStats::evict_count`]/[`CacheStats::evict_bytes`].
///
/// Eviction affects retention only: a re-compile after an eviction
/// recomputes a bit-identical artifact (it is just no longer free).
/// Byte weights are deterministic estimates of each artifact's retained
/// size, not exact heap measurements — budget in round numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheBudget {
    /// Maximum entries per phase cache (`0` = unbounded).
    pub max_entries: usize,
    /// Maximum estimated bytes per phase cache (`0` = unbounded).
    pub max_bytes: u64,
}

impl CacheBudget {
    /// Cap each phase cache at `n` entries.
    pub fn entries(n: usize) -> Self {
        CacheBudget {
            max_entries: n,
            max_bytes: 0,
        }
    }

    /// Cap each phase cache at approximately `n` bytes.
    pub fn bytes(n: u64) -> Self {
        CacheBudget {
            max_entries: 0,
            max_bytes: n,
        }
    }
}

/// Pipeline configuration. Construct with [`CompileConfig::builder`];
/// the fields stay public for read access and ablation experiments that
/// rewrite optimizer or allocator internals after building.
#[derive(Debug, Clone)]
pub struct CompileConfig {
    /// CPS optimizer settings.
    pub opt: OptConfig,
    /// Allocator / ILP settings.
    pub alloc: AllocConfig,
    /// Skip the optimizer (for ablations and debugging).
    pub skip_opt: bool,
    /// Simulation shape for drivers that run the compiled program.
    pub sim: SimSettings,
    /// Observability handle every phase reports into. Defaults to the
    /// no-op handle, which costs one branch per instrumentation site.
    pub observer: Obs,
    /// Per-phase-cache retention budget (default: unbounded).
    pub cache_budget: CacheBudget,
    /// Directory of the on-disk allocation cache. `None` (the default)
    /// disables persistence; when set, sessions write every solved
    /// allocation there and a restarted session warms from it (see
    /// `session.cache.disk.*` counters).
    pub persist_dir: Option<PathBuf>,
}

impl Default for CompileConfig {
    fn default() -> Self {
        CompileConfig::builder().build()
    }
}

impl CompileConfig {
    /// Start building a configuration. Environment overrides
    /// (`NOVA_ILP_THREADS`, `NOVA_ILP_KERNEL`) seed the corresponding
    /// defaults and are resolved once, when [`CompileConfigBuilder::build`]
    /// runs.
    pub fn builder() -> CompileConfigBuilder {
        CompileConfigBuilder::new()
    }
}

/// Builder for [`CompileConfig`].
///
/// All environment reads happen in [`build`](Self::build): the resulting
/// `CompileConfig` carries fully resolved values, so a solve or simulation
/// never consults the environment mid-run (parallel differential tests
/// cannot race on it). Marked non-exhaustive: construct via
/// [`CompileConfig::builder`] so added knobs stay source-compatible.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct CompileConfigBuilder {
    opt: OptConfig,
    alloc: AllocConfig,
    skip_opt: bool,
    sim: SimSettings,
    threads: Option<usize>,
    kernel: Option<KernelKind>,
    deadline: Option<Duration>,
    gap: Option<f64>,
    observer: Obs,
    cache_budget: CacheBudget,
    persist_dir: Option<PathBuf>,
}

impl Default for CompileConfigBuilder {
    fn default() -> Self {
        CompileConfigBuilder::new()
    }
}

impl CompileConfigBuilder {
    fn new() -> Self {
        CompileConfigBuilder {
            opt: OptConfig::default(),
            alloc: AllocConfig::default(),
            skip_opt: false,
            sim: SimSettings::default(),
            threads: None,
            kernel: None,
            deadline: None,
            gap: None,
            observer: Obs::noop(),
            cache_budget: CacheBudget::default(),
            persist_dir: None,
        }
    }

    /// Attach a [`Recorder`] that receives every span, counter, and
    /// sample the pipeline emits. Compilation, allocation, and any
    /// simulation driven from this configuration report into it.
    #[must_use]
    pub fn observer(mut self, recorder: impl Recorder + 'static) -> Self {
        self.observer = Obs::new(recorder);
        self
    }

    /// Attach an already-built observability handle (for sharing one
    /// handle — or [`Obs::noop`] — across several configurations).
    #[must_use]
    pub fn observer_handle(mut self, obs: Obs) -> Self {
        self.observer = obs;
        self
    }

    /// ILP worker threads. `0` (and not calling this at all) selects
    /// automatically: `NOVA_ILP_THREADS` if set, else the machine's
    /// available parallelism.
    #[must_use]
    pub fn solver_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// LP basis kernel. Not calling this selects automatically:
    /// `NOVA_ILP_KERNEL=dense` for the dense product-form inverse, sparse
    /// LU otherwise.
    #[must_use]
    pub fn solver_kernel(mut self, kernel: KernelKind) -> Self {
        self.kernel = Some(kernel);
        self
    }

    /// Wall-clock budget for each ILP solve; `None` (the default) means
    /// unlimited.
    #[must_use]
    pub fn solver_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Relative optimality gap at which the solver stops (the paper ran
    /// CPLEX within 0.01%, i.e. `1e-4`, the default). `0.0` demands the
    /// exact optimum.
    #[must_use]
    pub fn solver_gap(mut self, gap: f64) -> Self {
        self.gap = Some(gap);
        self
    }

    /// Micro-engines for chip-level simulation.
    #[must_use]
    pub fn engines(mut self, engines: usize) -> Self {
        self.sim.engines = engines;
        self
    }

    /// Hardware contexts per engine.
    #[must_use]
    pub fn contexts(mut self, contexts: usize) -> Self {
        self.sim.contexts = contexts;
        self
    }

    /// Simulated-cycle budget.
    #[must_use]
    pub fn max_cycles(mut self, max_cycles: u64) -> Self {
        self.sim.max_cycles = max_cycles;
        self
    }

    /// Deterministic memory-channel fault injection for simulations
    /// driven from this configuration.
    #[must_use]
    pub fn channel_faults(mut self, faults: ChannelFaults) -> Self {
        self.sim.faults = faults;
        self
    }

    /// Time-advance strategy for simulations driven from this
    /// configuration ([`SimMode::FastPath`] is the default; the
    /// cycle-slice oracle exists for differential testing).
    #[must_use]
    pub fn sim_mode(mut self, mode: SimMode) -> Self {
        self.sim.mode = mode;
        self
    }

    /// What allocation does when the exact ILP cannot prove a solution
    /// within its budget. The default, [`FallbackPolicy::Ladder`],
    /// retries through relaxations down to a greedy allocator, so
    /// compilation always terminates with *some* verified allocation;
    /// [`FallbackPolicy::Fail`] restores the historical hard error.
    #[must_use]
    pub fn fallback_policy(mut self, policy: FallbackPolicy) -> Self {
        self.alloc.fallback = policy;
        self
    }

    /// Bound each of the session's phase caches (see [`CacheBudget`]).
    /// The default is unbounded; long-lived services should set this.
    #[must_use]
    pub fn cache_budget(mut self, budget: CacheBudget) -> Self {
        self.cache_budget = budget;
        self
    }

    /// Persist solved allocations to `dir` and warm future sessions from
    /// it. The directory is created on first use; corrupt or truncated
    /// entries load as clean misses (`session.cache.disk.reject`), and a
    /// restarted session's warm artifacts are bit-identical to cold
    /// compiles.
    #[must_use]
    pub fn persist_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.persist_dir = Some(dir.into());
        self
    }

    /// Skip the CPS optimizer (ablations and debugging).
    #[must_use]
    pub fn skip_opt(mut self, skip: bool) -> Self {
        self.skip_opt = skip;
        self
    }

    /// Replace the CPS optimizer settings wholesale.
    #[must_use]
    pub fn opt(mut self, opt: OptConfig) -> Self {
        self.opt = opt;
        self
    }

    /// Replace the allocator settings wholesale. Solver knobs set through
    /// this builder ([`solver_threads`](Self::solver_threads), kernel,
    /// deadline, gap) still apply on top at build time.
    #[must_use]
    pub fn alloc(mut self, alloc: AllocConfig) -> Self {
        self.alloc = alloc;
        self
    }

    /// `NOVA_ILP_THREADS` if set and ≥ 1, else 0 (the solver's own
    /// "available parallelism" default).
    fn auto_threads() -> usize {
        match std::env::var("NOVA_ILP_THREADS") {
            Ok(s) => match s.trim().parse::<usize>() {
                Ok(n) if n >= 1 => n.min(MAX_SOLVER_THREADS),
                _ => 0,
            },
            Err(_) => 0,
        }
    }

    /// Resolve every automatic knob — including the environment
    /// overrides — and produce the final configuration.
    pub fn build(self) -> CompileConfig {
        let mut alloc = self.alloc;
        alloc.solver.threads = match self.threads {
            Some(n) if n >= 1 => n.min(MAX_SOLVER_THREADS),
            _ => Self::auto_threads(),
        };
        alloc.solver.kernel = Some(self.kernel.unwrap_or_else(KernelKind::from_env));
        alloc.solver.time_limit = self.deadline;
        if let Some(gap) = self.gap {
            alloc.solver.relative_gap = gap;
        }
        CompileConfig {
            opt: self.opt,
            alloc,
            skip_opt: self.skip_opt,
            sim: self.sim,
            observer: self.observer,
            cache_budget: self.cache_budget,
            persist_dir: self.persist_dir,
        }
    }
}

/// Everything the compiler produces for one program.
///
/// Clonable so a [`Compiler`] session can cache one compile and hand the
/// result to multiple clients.
#[derive(Debug, Clone)]
pub struct CompileOutput {
    /// Allocated, validated machine code.
    pub prog: ixp_machine::Program<ixp_machine::PhysReg>,
    /// Figure-5 static statistics of the source.
    pub static_stats: StaticStats,
    /// The optimized CPS (kept for oracle comparisons).
    pub cps: nova_cps::Cps,
    /// Optimizer statistics.
    pub opt_stats: nova_cps::OptStats,
    /// SSU statistics.
    pub ssu_stats: SsuStats,
    /// ILP model and solver statistics (Figures 6 and 7).
    pub alloc_stats: nova_backend::AllocStats,
    /// Which rung of the allocation fallback ladder produced the code and
    /// how far from proven-optimal it is. Stage 0 with
    /// `proven_optimal` means the exact ILP finished inside its budget;
    /// higher stages mean the build is degraded (and should be excluded
    /// from performance-floor comparisons).
    pub alloc_quality: AllocQuality,
    /// Machine instruction count of the final program.
    pub code_size: usize,
}

impl CompileOutput {
    /// Deterministic-artifact equality: two outputs agree on the machine
    /// program, the CPS, and every statistic that is a pure function of
    /// the input — everything except solver wall-clock timing, which
    /// differs run to run even for identical inputs. This is the "warm
    /// compile is bit-identical to cold" check used by the session cache
    /// tests and the service bench.
    pub fn artifact_eq(&self, other: &CompileOutput) -> bool {
        self.prog == other.prog
            && self.static_stats == other.static_stats
            && self.cps == other.cps
            && self.opt_stats == other.opt_stats
            && self.ssu_stats == other.ssu_stats
            && self.code_size == other.code_size
            && self.alloc_stats.moves == other.alloc_stats.moves
            && self.alloc_stats.spills == other.alloc_stats.spills
            && self.alloc_stats.objective == other.alloc_stats.objective
            && self.alloc_quality.stage == other.alloc_quality.stage
            && self.alloc_quality.spills == other.alloc_quality.spills
    }
}

/// The pipeline phase a diagnostic originated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Phase {
    /// Lexing and parsing.
    Parse,
    /// Type checking.
    Typecheck,
    /// CPS conversion.
    CpsConvert,
    /// CPS optimization (including label specialization).
    CpsOptimize,
    /// Static-single-use conversion and checking.
    Ssu,
    /// Instruction selection.
    Isel,
    /// ILP bank/register allocation.
    Alloc,
    /// Post-allocation code generation: solution extraction, A/B
    /// coloring, verification, machine-rule validation.
    Codegen,
    /// Not a pipeline phase: failures injected by the serving layer
    /// around the compiler (worker panics, deadlines, load shedding).
    Service,
}

impl Phase {
    /// Stable lowercase phase name (`"parse"`, `"typecheck"`, ...).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Typecheck => "typecheck",
            Phase::CpsConvert => "cps-convert",
            Phase::CpsOptimize => "cps-optimize",
            Phase::Ssu => "ssu",
            Phase::Isel => "isel",
            Phase::Alloc => "alloc",
            Phase::Codegen => "codegen",
            Phase::Service => "service",
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A structured pipeline failure: the phase that produced it, a
/// machine-readable code, the source span when the phase tracks one, and
/// the rendered human-readable message. Comparable and clonable so a
/// [`Compiler`] session can cache a failed compile and return the same
/// diagnostic to every client that submits the same input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Which phase failed.
    pub phase: Phase,
    /// Machine-readable diagnostic code, stable across message rewording
    /// (e.g. `"E-PARSE"`, `"E-DYNCALL"`).
    pub code: &'static str,
    /// Source region the diagnostic points at, when the failing phase
    /// still tracks source positions (frontend phases do; backend phases
    /// operate on CPS/machine code and do not).
    pub span: Option<Span>,
    /// Rendered message (with `line:col` coordinates when a span exists).
    pub message: String,
}

impl CompileError {
    fn new(phase: Phase, code: &'static str, message: impl std::fmt::Display) -> Self {
        CompileError {
            phase,
            code,
            span: None,
            message: message.to_string(),
        }
    }

    fn with_span(
        phase: Phase,
        code: &'static str,
        source: &str,
        d: &nova_frontend::Diagnostic,
    ) -> Self {
        CompileError {
            phase,
            code,
            span: Some(d.span),
            message: d.render(source),
        }
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {} [{}]", self.phase, self.message, self.code)
    }
}

impl std::error::Error for CompileError {}

/// A compile together with the structured trace it produced: the
/// [`CompileOutput`] artifact plus an aggregated [`Summary`] of every
/// span, counter, and sample the phases emitted. Returned by
/// [`Compiler::compile`] and the free [`compile`].
#[derive(Debug, Clone)]
pub struct CompileReport {
    /// The compiled artifact and its statistics.
    pub artifact: CompileOutput,
    /// Aggregated trace: per-phase wall time (`phase.*` spans), optimizer
    /// shrink counts, solver telemetry, allocator decisions.
    pub trace: Summary,
}

/// Compile Nova source text and return the artifact together with an
/// aggregated trace of the run, through a throwaway [`Compiler`] session.
///
/// An in-memory recorder is teed with the configured
/// [`CompileConfig::observer`] for the duration of the compile, so an
/// attached JSON-lines sink still sees every event while the caller gets
/// the aggregate [`Summary`] (per-phase wall time under `phase.*`,
/// optimizer pass shrink counts under `cps.pass.*`, solver telemetry
/// under `ilp.*`, allocator decisions under `backend.*`).
///
/// Callers that compile more than once should hold a [`Compiler`]
/// instead: the session's phase caches turn repeat and near-repeat
/// compiles into partial (or full) cache hits.
///
/// # Errors
///
/// Same contract as [`Compiler::compile`].
pub fn compile(source: &str, config: &CompileConfig) -> Result<CompileReport, CompileError> {
    Compiler::new(config.clone()).compile(source)
}

/// The frontend phase boundary: lex, parse, and type check under a
/// `phase.frontend` span. The returned artifact is keyed by the session
/// cache on the source's comment-free token fingerprint.
fn frontend_phase(
    source: &str,
    obs: &Obs,
) -> Result<(nova_frontend::Program, nova_frontend::TypeInfo, StaticStats), CompileError> {
    let frontend_span = obs.span("phase.frontend");
    let program = nova_frontend::parse_with(source, obs)
        .map_err(|d| CompileError::with_span(Phase::Parse, "E-PARSE", source, &d))?;
    let info = nova_frontend::check_with(&program, obs)
        .map_err(|d| CompileError::with_span(Phase::Typecheck, "E-TYPE", source, &d))?;
    let static_stats = program.static_stats();
    frontend_span.end();
    Ok((program, info, static_stats))
}

/// The CPS phase boundary: conversion, optimization (or bare label
/// specialization), and SSU under a `phase.cps` span. Keyed by the
/// session cache on (token fingerprint, optimizer config, `skip_opt`).
fn cps_phase(
    program: &nova_frontend::Program,
    info: &nova_frontend::TypeInfo,
    source: &str,
    config: &CompileConfig,
    obs: &Obs,
) -> Result<(nova_cps::Cps, nova_cps::OptStats, SsuStats), CompileError> {
    let cps_span = obs.span("phase.cps");
    let mut cps = {
        let _convert = obs.span("cps.convert");
        nova_cps::convert(program, info)
            .map_err(|d| CompileError::with_span(Phase::CpsConvert, "E-CPS", source, &d))?
    };
    let opt_stats = if config.skip_opt {
        // Even unoptimized builds need static call targets (label
        // specialization is a backend requirement, not an optimization).
        nova_cps::specialize(&mut cps)
    } else {
        nova_cps::optimize_with(&mut cps, &config.opt, obs)
    };
    if !nova_cps::all_calls_static(&cps) {
        return Err(CompileError::new(
            Phase::CpsOptimize,
            "E-DYNCALL",
            "a dynamic call target survived label specialization; \
             the IXP has no indirect branch",
        ));
    }
    let ssu_stats = {
        let _ssu = obs.span("cps.ssu");
        nova_cps::to_ssu(&mut cps)
    };
    nova_cps::check_ssu(&cps).map_err(|m| CompileError::new(Phase::Ssu, "E-SSU", m))?;
    cps_span.end();
    Ok((cps, opt_stats, ssu_stats))
}

/// The instruction-selection phase boundary, under `phase.codegen` /
/// `backend.isel` spans. Keyed by the session cache on the CPS key.
fn isel_phase(
    cps: &nova_cps::Cps,
    obs: &Obs,
) -> Result<ixp_machine::Program<ixp_machine::Temp>, CompileError> {
    let _codegen = obs.span("phase.codegen");
    let _isel = obs.span("backend.isel");
    nova_backend::select(cps).map_err(|e| CompileError::new(Phase::Isel, "E-ISEL", e))
}

/// Map an allocator failure onto the pipeline's diagnostic taxonomy.
fn alloc_error(e: nova_backend::AllocError) -> CompileError {
    match e {
        // Bank-assignment failures (solver or greedy constraints).
        nova_backend::AllocError::Solver(_) | nova_backend::AllocError::Greedy(_) => {
            CompileError::new(Phase::Alloc, "E-ALLOC", e)
        }
        // Downstream code generation on a feasible assignment.
        nova_backend::AllocError::Extract(_)
        | nova_backend::AllocError::Color(_)
        | nova_backend::AllocError::Invalid(_)
        | nova_backend::AllocError::Verify(_) => CompileError::new(Phase::Codegen, "E-CODEGEN", e),
    }
}
