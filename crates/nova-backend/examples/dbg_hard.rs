fn main() {
    let src = r#"fun main() {
    let (v0, v1, v2, v3) = sram(0);
    sram(66) <- (v3, v2);
    sram(173) <- (v2, v3);
    v1 = v0 | v3;
    sram(170) <- (v1, v2);
    sram(142) <- (v2, v0);
    v3 = v0 & v3;
    if (v3 > v0) { v0 = v3; } else { v0 = v0; }
    let (t2_4) = sram(12);
    v2 = t2_4;
    if (v2 > v3) { v2 = v2; } else { v2 = v3; }
    sram(48) <- (v0, v1, v2, v3);
    0
}"#;
    let p = nova_frontend::parse(src).unwrap();
    let info = nova_frontend::check(&p).unwrap();
    let mut cps = nova_cps::convert(&p, &info).unwrap();
    nova_cps::optimize(&mut cps, &Default::default());
    nova_cps::to_ssu(&mut cps);
    let prog = nova_backend::select(&cps).unwrap();
    let facts = nova_backend::alloc::build_facts(&prog);
    let freqs = nova_backend::freq::estimate(&prog);
    let mut cfg = nova_backend::alloc::AllocConfig {
        allow_spill: false,
        ..Default::default()
    };
    cfg.solver.time_limit = Some(std::time::Duration::from_secs(20));
    let mut bm = nova_backend::alloc::build_model(&prog, &facts, &freqs, &cfg);
    let st = bm.model.stats();
    println!("vars={} rows={}", st.variables, st.constraints);
    let lp = bm.model.problem().solve_lp();
    println!("root LP: {:?}", lp.map(|s| (s.objective, s.iterations)));
    let t0 = std::time::Instant::now();
    match nova_backend::alloc::solve(&mut bm, &cfg) {
        Ok((a, stats)) => println!(
            "OK {:?}: nodes={} iters={} activated={} gap={} moves={}",
            t0.elapsed(),
            stats.solve.nodes,
            stats.solve.simplex_iterations,
            stats.solve.activated_rows,
            stats.solve.gap,
            a.n_moves
        ),
        Err(e) => println!("ERR after {:?}: {e}", t0.elapsed()),
    }
}
