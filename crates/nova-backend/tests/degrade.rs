//! Fallback-policy tests: the ladder makes allocation total, the greedy
//! rung produces runnable (if costly) code, and the strict policies
//! reproduce the historical budget-exhaustion error.

use nova_backend::{allocate, select, AllocConfig, AllocError, FallbackPolicy};
use nova_cps::{convert, optimize, to_ssu, OptConfig};
use nova_frontend::{check, parse};
use std::time::Duration;

const SAMPLES: &[&str] = &[
    "fun main() { let (x, y) = sram(0); sram(10) <- (x + y); 0 }",
    r#"fun main() {
        let (a, b, c, d) = sram(100);
        let (e, f, g, h, i, j) = sram(200);
        let u = a + c;
        let v = g + h;
        sram(300) <- (b, e, v, u);
        sram(500) <- (f, j, d, i);
        0
    }"#,
    r#"fun main() {
        let (u, v, x, w) = sram(0);
        sram(100) <- (u, v, x, w);
        sram(200) <- (w, x, u, v);
        sram(300) <- (x);
        0
    }"#,
    r#"fun main() {
        let i = 0;
        let acc = 0;
        while (i < 10) { acc = acc + i; i = i + 1; }
        sram(0) <- (acc);
        0
    }"#,
];

fn program(src: &str) -> ixp_machine::Program<ixp_machine::Temp> {
    let p = parse(src).unwrap_or_else(|d| panic!("parse: {}", d.render(src)));
    let info = check(&p).unwrap_or_else(|d| panic!("check: {}", d.render(src)));
    let mut cps = convert(&p, &info).unwrap();
    optimize(&mut cps, &OptConfig::default());
    to_ssu(&mut cps);
    select(&cps).unwrap()
}

fn zero_deadline(policy: FallbackPolicy) -> AllocConfig {
    let mut cfg = AllocConfig::default();
    cfg.solver.time_limit = Some(Duration::ZERO);
    cfg.fallback = policy;
    cfg
}

#[test]
fn exact_runs_report_stage_zero() {
    // Default config: generous budget, Ladder policy. Small programs
    // solve exactly, so the ladder must never engage.
    for src in SAMPLES {
        let a = allocate(&program(src), &AllocConfig::default()).expect("allocates");
        assert_eq!(a.quality.stage, 0);
        assert!(a.quality.proven_optimal);
        assert_eq!(a.quality.spills, a.stats.spills);
    }
}

#[test]
fn ladder_terminates_under_zero_deadline() {
    // The never-fail guarantee: a zero deadline exhausts stage 0
    // immediately, and the ladder still produces a validated (and, in
    // debug builds, verifier-checked) allocation for every sample.
    for src in SAMPLES {
        let a = allocate(&program(src), &zero_deadline(FallbackPolicy::Ladder))
            .unwrap_or_else(|e| panic!("ladder must not fail: {e}"));
        assert!(a.quality.stage >= 1, "zero budget cannot prove stage 0");
        assert!(a.quality.stage <= 4);
    }
}

#[test]
fn greedy_policy_skips_the_solver() {
    for src in SAMPLES {
        let a = allocate(&program(src), &zero_deadline(FallbackPolicy::Greedy))
            .unwrap_or_else(|e| panic!("greedy must not fail: {e}"));
        assert_eq!(a.quality.stage, 4);
        assert!(!a.quality.proven_optimal);
        assert_eq!(a.quality.gap, 1.0);
        // The solver never ran.
        assert_eq!(a.stats.solve.nodes, 0);
        assert_eq!(a.stats.solve.simplex_iterations, 0);
    }
}

#[test]
fn fail_policy_reproduces_budget_error() {
    let err = allocate(&program(SAMPLES[0]), &zero_deadline(FallbackPolicy::Fail))
        .err()
        .expect("zero budget must fail under Fail");
    match &err {
        AllocError::Solver(ilp::MilpError::BudgetExhausted(_)) => {}
        other => panic!("expected BudgetExhausted, got {other}"),
    }
    assert!(err
        .to_string()
        .contains("budget exhausted before an integer solution was found"));
}

#[test]
fn incumbent_policy_errors_without_incumbent() {
    // The historical behavior: no incumbent under the budget is an error,
    // with the same message Fail produces.
    let fail = allocate(&program(SAMPLES[0]), &zero_deadline(FallbackPolicy::Fail))
        .err()
        .expect("Fail errors")
        .to_string();
    let incumbent = allocate(
        &program(SAMPLES[0]),
        &zero_deadline(FallbackPolicy::Incumbent),
    )
    .err()
    .expect("Incumbent errors with no incumbent")
    .to_string();
    assert_eq!(fail, incumbent);
}

#[test]
fn greedy_quality_is_bounded_by_exact() {
    // Degradation is a quality trade, not a correctness one: greedy may
    // spill (the exact runs don't), but both must validate.
    for src in SAMPLES {
        let prog = program(src);
        let exact = allocate(&prog, &AllocConfig::default()).expect("exact");
        let greedy = allocate(&prog, &zero_deadline(FallbackPolicy::Greedy)).expect("greedy");
        assert!(
            greedy.stats.moves >= exact.stats.moves,
            "greedy cannot beat the proven optimum"
        );
        assert!(greedy.stats.spills >= exact.stats.spills);
    }
}
