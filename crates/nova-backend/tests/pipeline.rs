//! End-to-end pipeline tests: Nova source -> optimized CPS -> ILP
//! allocation -> validated machine code.

use nova_backend::{allocate, select, AllocConfig};
use nova_cps::{convert, optimize, to_ssu, OptConfig};
use nova_frontend::{check, parse};

fn compile(src: &str) -> nova_backend::Allocation {
    let p = parse(src).unwrap_or_else(|d| panic!("parse: {}", d.render(src)));
    let info = check(&p).unwrap_or_else(|d| panic!("check: {}", d.render(src)));
    let mut cps = convert(&p, &info).unwrap();
    optimize(&mut cps, &OptConfig::default());
    to_ssu(&mut cps);
    let prog = select(&cps).unwrap();
    allocate(&prog, &AllocConfig::default()).unwrap_or_else(|e| panic!("{e}\n{prog}"))
}

#[test]
fn trivial_program_allocates() {
    let a = compile("fun main() { let (x, y) = sram(0); sram(10) <- (x + y); 0 }");
    assert_eq!(a.stats.spills, 0);
    println!("{}", a.prog);
}

#[test]
fn figure3_program_allocates_without_spills() {
    // The paper's Figure 3 example.
    let a = compile(
        r#"fun main() {
            let (a, b, c, d) = sram(100);
            let (e, f, g, h, i, j) = sram(200);
            let u = a + c;
            let v = g + h;
            sram(300) <- (b, e, v, u);
            sram(500) <- (f, j, d, i);
            0
        }"#,
    );
    assert_eq!(a.stats.spills, 0, "paper reports zero spills");
    println!(
        "moves: {}, model: {:?}",
        a.stats.moves, a.stats.model.variables
    );
}

#[test]
fn conflicting_aggregate_positions_need_clones() {
    // §2.1: x in two stores at different positions plus a later use.
    let a = compile(
        r#"fun main() {
            let (u, v, x, w) = sram(0);
            sram(100) <- (u, v, x, w);
            sram(200) <- (w, x, u, v);
            sram(300) <- (x);
            0
        }"#,
    );
    assert_eq!(a.stats.spills, 0);
}

#[test]
fn branches_and_loops_allocate() {
    let a = compile(
        r#"fun main() {
            let i = 0;
            let acc = 0;
            while (i < 10) { acc = acc + i; i = i + 1; }
            sram(0) <- (acc);
            0
        }"#,
    );
    assert_eq!(a.stats.spills, 0);
}
