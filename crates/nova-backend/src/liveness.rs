//! Liveness analysis over the virtual-register flowgraph.
//!
//! Produces the per-point live sets behind the ILP model's `Exists` and
//! `Copy` data (§5.2): standard backward dataflow at block granularity,
//! then a per-instruction sweep. Program points follow the paper: one
//! point between every pair of adjacent instructions, one before the
//! first, one after the terminator (the "after branch" point shared by
//! all outgoing edges, where move insertion is illegal).

use ixp_machine::{Block, BlockId, Program, Temp};
use std::collections::{HashMap, HashSet};

/// Identifies a program point: `index` 0 is before the first instruction
/// of the block, `index == instrs.len()` is before the terminator, and
/// `index == instrs.len() + 1` is after the terminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Point {
    /// The block.
    pub block: BlockId,
    /// Position within the block (see type docs).
    pub index: u32,
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.block, self.index)
    }
}

/// Result of liveness analysis.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Temporaries live at each point (live = will be used later along
    /// some path).
    pub live: HashMap<Point, HashSet<Temp>>,
    /// Block-entry live sets.
    pub live_in: HashMap<BlockId, HashSet<Temp>>,
    /// Block-exit live sets (after the terminator).
    pub live_out: HashMap<BlockId, HashSet<Temp>>,
}

/// Number of points in a block: `instrs.len() + 2`.
pub fn points_in(block: &Block<Temp>) -> u32 {
    block.instrs.len() as u32 + 2
}

/// Predecessor map of the flowgraph.
pub fn predecessors(prog: &Program<Temp>) -> HashMap<BlockId, Vec<BlockId>> {
    let mut preds: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
    for (i, b) in prog.blocks.iter().enumerate() {
        for s in b.term.successors() {
            preds.entry(s).or_default().push(BlockId(i as u32));
        }
    }
    preds
}

/// Run liveness analysis.
pub fn analyze(prog: &Program<Temp>) -> Liveness {
    let n = prog.blocks.len();
    // use/def per block.
    let mut gen: Vec<HashSet<Temp>> = vec![HashSet::new(); n];
    let mut kill: Vec<HashSet<Temp>> = vec![HashSet::new(); n];
    for (i, b) in prog.blocks.iter().enumerate() {
        let mut defined: HashSet<Temp> = HashSet::new();
        for ins in &b.instrs {
            for u in ins.uses() {
                if !defined.contains(u) {
                    gen[i].insert(*u);
                }
            }
            for d in ins.defs() {
                defined.insert(*d);
            }
        }
        for u in b.term.uses() {
            if !defined.contains(u) {
                gen[i].insert(*u);
            }
        }
        kill[i] = defined;
    }
    // Backward fixpoint.
    let mut live_in: Vec<HashSet<Temp>> = vec![HashSet::new(); n];
    let mut live_out: Vec<HashSet<Temp>> = vec![HashSet::new(); n];
    loop {
        let mut changed = false;
        for i in (0..n).rev() {
            let mut out = HashSet::new();
            for s in prog.blocks[i].term.successors() {
                out.extend(live_in[s.index()].iter().copied());
            }
            let mut inn: HashSet<Temp> = gen[i].clone();
            for t in &out {
                if !kill[i].contains(t) {
                    inn.insert(*t);
                }
            }
            if out != live_out[i] || inn != live_in[i] {
                changed = true;
                live_out[i] = out;
                live_in[i] = inn;
            }
        }
        if !changed {
            break;
        }
    }
    // Per-point sweep (backwards through each block).
    let mut live: HashMap<Point, HashSet<Temp>> = HashMap::new();
    for (i, b) in prog.blocks.iter().enumerate() {
        let bid = BlockId(i as u32);
        let n_instr = b.instrs.len() as u32;
        // After-terminator point = block live-out.
        let mut cur = live_out[i].clone();
        live.insert(
            Point {
                block: bid,
                index: n_instr + 1,
            },
            cur.clone(),
        );
        // Terminator: add its uses.
        for u in b.term.uses() {
            cur.insert(*u);
        }
        live.insert(
            Point {
                block: bid,
                index: n_instr,
            },
            cur.clone(),
        );
        for (j, ins) in b.instrs.iter().enumerate().rev() {
            for d in ins.defs() {
                cur.remove(d);
            }
            for u in ins.uses() {
                cur.insert(*u);
            }
            live.insert(
                Point {
                    block: bid,
                    index: j as u32,
                },
                cur.clone(),
            );
        }
    }
    Liveness {
        live,
        live_in: (0..n)
            .map(|i| (BlockId(i as u32), live_in[i].clone()))
            .collect(),
        live_out: (0..n)
            .map(|i| (BlockId(i as u32), live_out[i].clone()))
            .collect(),
    }
}

/// Maximum number of simultaneously live temporaries over all points (the
/// "register pressure" of the program).
pub fn max_pressure(l: &Liveness) -> usize {
    l.live.values().map(|s| s.len()).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixp_machine::{Addr, AluOp, AluSrc, Instr, MemSpace, Terminator};

    fn t(i: u32) -> Temp {
        Temp(i)
    }

    fn simple_block(instrs: Vec<Instr<Temp>>, term: Terminator<Temp>) -> Program<Temp> {
        Program {
            blocks: vec![Block { instrs, term }],
            entry: BlockId(0),
        }
    }

    #[test]
    fn straight_line_liveness() {
        // t0 = imm; t1 = t0 + t0; write t1
        let p = simple_block(
            vec![
                Instr::Imm { dst: t(0), val: 1 },
                Instr::Alu {
                    op: AluOp::Add,
                    dst: t(1),
                    a: t(0),
                    b: AluSrc::Reg(t(0)),
                },
                Instr::MemWrite {
                    space: MemSpace::Sram,
                    addr: Addr::Imm(0),
                    src: vec![t(1)],
                },
            ],
            Terminator::Halt,
        );
        let l = analyze(&p);
        let at = |i: u32| {
            l.live
                .get(&Point {
                    block: BlockId(0),
                    index: i,
                })
                .unwrap()
        };
        assert!(!at(0).contains(&t(0)), "t0 not live before its def");
        assert!(at(1).contains(&t(0)));
        assert!(at(2).contains(&t(1)));
        assert!(!at(2).contains(&t(0)));
        assert!(at(3).is_empty());
    }

    #[test]
    fn loop_liveness_flows_backward() {
        // L0: t0 = imm 0 -> L1
        // L1: t1 = t0 + t0; branch t1 < t0 ? L1 : L2   (t0 live around loop)
        // L2: halt
        let p = Program {
            blocks: vec![
                Block {
                    instrs: vec![Instr::Imm { dst: t(0), val: 0 }],
                    term: Terminator::Jump(BlockId(1)),
                },
                Block {
                    instrs: vec![Instr::Alu {
                        op: AluOp::Add,
                        dst: t(1),
                        a: t(0),
                        b: AluSrc::Reg(t(0)),
                    }],
                    term: Terminator::Branch {
                        cond: ixp_machine::Cond::Lt,
                        a: t(1),
                        b: AluSrc::Reg(t(0)),
                        if_true: BlockId(1),
                        if_false: BlockId(2),
                    },
                },
                Block {
                    instrs: vec![],
                    term: Terminator::Halt,
                },
            ],
            entry: BlockId(0),
        };
        let l = analyze(&p);
        assert!(l.live_in[&BlockId(1)].contains(&t(0)));
        assert!(
            l.live_out[&BlockId(1)].contains(&t(0)),
            "live around the backedge"
        );
        assert!(l.live_out[&BlockId(2)].is_empty());
    }

    #[test]
    fn pressure_counts() {
        let p = simple_block(
            vec![
                Instr::Imm { dst: t(0), val: 1 },
                Instr::Imm { dst: t(1), val: 2 },
                Instr::Imm { dst: t(2), val: 3 },
                Instr::MemWrite {
                    space: MemSpace::Sram,
                    addr: Addr::Imm(0),
                    src: vec![t(0), t(1), t(2)],
                },
            ],
            Terminator::Halt,
        );
        let l = analyze(&p);
        assert_eq!(max_pressure(&l), 3);
    }
}
