//! IXP back end: the paper's primary contribution.
//!
//! * [`isel`] — instruction selection from CPS to a virtual-register
//!   flowgraph;
//! * [`liveness`] — per-point live sets (the ILP's `Exists`/`Copy` data);
//! * [`freq`] — Wu-Larus/Dempster-Shafer static frequency estimation (§7);
//! * [`alloc`] — the 0-1 ILP formulation of bank assignment, transfer-bank
//!   coloring with aggregates, cloning, and spilling (§5–§10), plus
//!   solution extraction;
//! * [`color`] — post-ILP A/B register assignment with optimistic
//!   coalescing (§9);
//! * the [`compile`] entry point runs the whole pipeline from CPS to
//!   validated machine code.

#![warn(missing_docs)]

pub mod alloc;
pub mod color;
pub mod freq;
pub mod isel;
pub mod liveness;

pub use alloc::{
    allocate, allocate_solved_with, allocate_with, readopt_assignment_with, refinish_with,
    AllocConfig, AllocError, AllocQuality, AllocStats, Allocation, FallbackPolicy,
    SolvedAllocation,
};
pub use isel::{select, IselError};

/// Compile an optimized, SSU-form CPS program all the way to validated
/// machine code.
///
/// # Errors
///
/// Propagates selection and allocation failures.
pub fn compile(
    cps: &nova_cps::Cps,
    cfg: &AllocConfig,
) -> Result<Allocation, Box<dyn std::error::Error>> {
    let prog = select(cps)?;
    Ok(allocate(&prog, cfg)?)
}
