//! The 0-1 ILP model of bank assignment, transfer-bank coloring, cloning,
//! and spilling (§5–§10).
//!
//! Variables (all 0-1), following the paper:
//!
//! * `Move[p,v,b1,b2]` — temporary `v` moves from bank `b1` to `b2` at
//!   point `p` (identity moves cost nothing);
//! * `Before[p,v,b]`/`After[p,v,b]` — **expression aliases** `Σ_d
//!   Move[p,v,b,d]` / `Σ_s Move[p,v,s,b]` (the paper's "redundant
//!   variables", §6, realized symbolically);
//! * `Color[v,xb,r]` — point-independent transfer-bank register choice
//!   (§9);
//! * `cloneBefore/cloneAfter/cloneMove` — representative counting for
//!   clone sets (§10);
//! * `colorAvail[p,b,r]`, `needsSpill[p,b]` — spare-register bookkeeping
//!   for spills through `L`/`S` (§9).
//!
//! **Move-point compression.** The paper gives every live temporary a move
//! opportunity at every point and reduces the model with §8's bank
//! pruning. We add one further reduction with the same optimal value in
//! practice: move variables exist only at a temporary's *action points*
//! (its definition, its uses, and block boundaries it crosses). Between
//! consecutive action points the bank cannot usefully change, so the
//! per-point `Copy` chains collapse into one `After[a_i] = Before[a_{i+1}]`
//! equality per segment, and K constraints reference the segment's
//! expression. This is what lets our bounded-variable simplex (dense
//! basis inverse) solve the models CPLEX solved for the paper.

use super::candidates::{
    clone_groups, load_bank, prune, store_bank, unpruned, Candidates, IlpBank,
};
use super::facts::{Fact, Facts, PointId};
use super::staged::FallbackPolicy;
use crate::freq::Frequencies;
use crate::liveness::Point;
use ilp::{
    BranchConfig, Cmp, GroupId, Key, LinExpr, MilpError, Model, ModelStats, SolveStats, Var,
};
use ixp_machine::{Program, Temp};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Configuration of the allocator's ILP model (ablation knobs included).
#[derive(Debug, Clone)]
pub struct AllocConfig {
    /// Model spilling through scratch (`M` bank). When off, programs that
    /// need spills become infeasible.
    pub allow_spill: bool,
    /// Generate the §9 redundant aggregate-position cuts (E6).
    pub redundant_cuts: bool,
    /// Objective bias on moves out of bank `B` (§7; E7).
    pub bias: f64,
    /// Apply §8 candidate pruning (E8).
    pub prune: bool,
    /// Cost of a register-register move.
    pub mv_cost: f64,
    /// Cost of a spill-memory load.
    pub ld_cost: f64,
    /// Cost of a spill-memory store.
    pub st_cost: f64,
    /// Usable A registers (one of 16 is reserved for parallel-copy cycles,
    /// §6 "K and Spilling for A/B").
    pub k_a: usize,
    /// Usable B registers.
    pub k_b: usize,
    /// Automatically drop the spill machinery when register pressure
    /// provably cannot exceed the general-purpose capacity (the paper's
    /// "spilling occurs very rarely"; E5 measures the two-stage variant).
    pub spill_auto: bool,
    /// Branch-and-bound configuration (gap defaults to the paper's 0.01%).
    pub solver: BranchConfig,
    /// What to do when the solver's budget expires without a usable
    /// solution (see [`FallbackPolicy`]).
    pub fallback: FallbackPolicy,
}

impl Default for AllocConfig {
    fn default() -> Self {
        AllocConfig {
            allow_spill: true,
            redundant_cuts: true,
            bias: 1.01,
            prune: true,
            mv_cost: 1.0,
            ld_cost: 200.0,
            st_cost: 200.0,
            k_a: 15,
            k_b: 16,
            spill_auto: true,
            solver: BranchConfig {
                // The paper ran CPLEX to a 0.01% gap in 36-156 s; give our
                // branch-and-bound the same order of wall clock. When the
                // budget expires the best incumbent is used and
                // `SolveStats::proven_optimal` reports the gap.
                time_limit: Some(std::time::Duration::from_secs(150)),
                ..BranchConfig::default()
            },
            fallback: FallbackPolicy::Ladder,
        }
    }
}

impl AllocConfig {
    /// Builder-style override of the solver's worker-thread count
    /// (`0` restores automatic selection; see
    /// [`BranchConfig::effective_threads`]).
    #[must_use]
    pub fn with_solver_threads(mut self, threads: usize) -> Self {
        self.solver.threads = threads;
        self
    }

    /// Builder-style override of the LP basis kernel (`None` restores
    /// automatic selection via the `NOVA_ILP_KERNEL` environment
    /// variable; see [`ilp::KernelKind::from_env`]).
    #[must_use]
    pub fn with_solver_kernel(mut self, kernel: Option<ilp::KernelKind>) -> Self {
        self.solver.kernel = kernel;
        self
    }
}

/// Move variables keyed by action point and temp: `(var, from, to)`.
pub type MoveVars = HashMap<(PointId, Temp), Vec<(Var, IlpBank, IlpBank)>>;

/// The generated model plus the bookkeeping needed to read a solution.
pub struct BankModel {
    /// The underlying ILP.
    pub model: Model,
    /// Move variables per action point and temp: `(var, from, to)`.
    pub moves: MoveVars,
    /// Color variables per `(temp, transfer bank)`: one var per register.
    pub colors: HashMap<(Temp, IlpBank), Vec<Var>>,
    /// Action points per temp (sorted; `PointId` order equals block order).
    pub actions: HashMap<Temp, BTreeSet<PointId>>,
    /// Candidate banks per temp.
    pub candidates: Candidates,
    /// Clone groups.
    pub groups: HashMap<Temp, Vec<Temp>>,
    /// Per-block range of point ids `(first, last)`.
    pub block_range: Vec<(PointId, PointId)>,
    /// Figure-6 statistics: members of `DefLi`, `DefLDj`, `UseSi`, `UseSDj`.
    pub fig6: Fig6,
}

/// Figure 6's "AMPL statistics": how many variables participate in
/// aggregate definitions and uses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fig6 {
    /// Variables defined by SRAM/scratch reads.
    pub def_l: usize,
    /// Variables defined by SDRAM reads.
    pub def_ld: usize,
    /// Variables consumed by SRAM/scratch writes.
    pub use_s: usize,
    /// Variables consumed by SDRAM writes.
    pub use_sd: usize,
}

impl Fig6 {
    /// Total read-side members.
    pub fn def_total(&self) -> usize {
        self.def_l + self.def_ld
    }

    /// Total write-side members.
    pub fn use_total(&self) -> usize {
        self.use_s + self.use_sd
    }
}

/// Cost of a `b1 → b2` transition, or `None` if illegal (§7 and the
/// composite spill paths of §8).
pub fn move_cost(cfg: &AllocConfig, from: IlpBank, to: IlpBank) -> Option<f64> {
    use IlpBank::*;
    if from == to {
        return Some(0.0);
    }
    match (from, to) {
        // Plain register-register move: source readable, target writable.
        (A | B | L | Ld, A | B | S | Sd) => Some(cfg.mv_cost),
        // Spill stores: via an S register (move+store), except from S.
        (A | B | L | Ld, M) => Some(cfg.mv_cost + cfg.st_cost),
        (S, M) => Some(cfg.st_cost),
        // Reloads land in L; onwards costs a move.
        (M, L) => Some(cfg.ld_cost),
        (M, A | B | S | Sd) => Some(cfg.ld_cost + cfg.mv_cost),
        _ => None,
    }
}

fn bank_key(b: IlpBank) -> Key {
    Key::Sym(b.name())
}

/// Stream a buffered term list into one committed constraint row. All of
/// `build_model`'s rows funnel through here (or through an inline
/// [`Model::row`] chain), so constraint generation allocates nothing per
/// row beyond the shared CSR arrays.
fn commit_row(model: &mut Model, g: GroupId, terms: &[(Var, f64)], cmp: Cmp, rhs: f64, lazy: bool) {
    let mut b = model.row(g);
    for &(v, c) in terms {
        b.term(v, c);
    }
    if lazy {
        b.finish_lazy(cmp, rhs);
    } else {
        b.finish(cmp, rhs);
    }
}

/// Per-block `(first, last)` point-id range of a program (blocks have
/// `instrs.len() + 2` points).
pub(crate) fn block_ranges(prog: &Program<Temp>) -> Vec<(PointId, PointId)> {
    let mut block_range = Vec::new();
    let mut i = 0usize;
    for b in &prog.blocks {
        let n = b.instrs.len() + 2;
        block_range.push((PointId(i as u32), PointId((i + n - 1) as u32)));
        i += n;
    }
    block_range
}

/// Action points per temporary: block entries it is live into plus the
/// instruction-adjacent points of its uses and definitions. Only at these
/// points may a temporary change banks (move-point compression).
pub(crate) fn action_points(
    prog: &Program<Temp>,
    facts: &Facts,
    block_range: &[(PointId, PointId)],
) -> HashMap<Temp, BTreeSet<PointId>> {
    let mut actions: HashMap<Temp, BTreeSet<PointId>> = HashMap::new();
    // Block entries are action points for everything live-in.
    for (bi, _) in prog.blocks.iter().enumerate() {
        let entry = block_range[bi].0;
        for v in &facts.liveness.live_in[&ixp_machine::BlockId(bi as u32)] {
            actions.entry(*v).or_default().insert(entry);
        }
    }
    // Instruction-adjacent points for operands and results.
    for fact in &facts.facts {
        let mut touch = |v: Temp, p: PointId| {
            actions.entry(v).or_default().insert(p);
        };
        match fact {
            Fact::AluTwo {
                pre,
                post,
                dst,
                a,
                b,
            } => {
                touch(*a, *pre);
                touch(*b, *pre);
                touch(*dst, *post);
            }
            Fact::AluOne { pre, post, dst, a } => {
                touch(*a, *pre);
                touch(*dst, *post);
            }
            Fact::MoveF {
                pre,
                post,
                dst,
                src,
            } => {
                touch(*src, *pre);
                touch(*dst, *post);
            }
            Fact::Def { post, dsts } => {
                for d in dsts {
                    touch(*d, *post);
                }
            }
            Fact::GpUse { pre, srcs } => {
                for s in srcs {
                    touch(*s, *pre);
                }
            }
            Fact::ReadAgg { post, dsts, .. } => {
                for d in dsts {
                    touch(*d, *post);
                }
            }
            Fact::WriteAgg { pre, srcs, .. } => {
                for s in srcs {
                    touch(*s, *pre);
                }
            }
            Fact::SameReg {
                pre,
                post,
                dst,
                src,
            } => {
                touch(*src, *pre);
                touch(*dst, *post);
            }
            Fact::CloneF {
                pre,
                post,
                dst,
                src,
            } => {
                touch(*src, *pre);
                touch(*dst, *post);
            }
            Fact::BranchUse { pre, a, b } => {
                touch(*a, *pre);
                if let Some(b) = b {
                    touch(*b, *pre);
                }
            }
        }
    }
    actions
}

/// Build the complete model for a program.
pub fn build_model(
    prog: &Program<Temp>,
    facts: &Facts,
    freqs: &Frequencies,
    cfg: &AllocConfig,
) -> BankModel {
    let candidates = if cfg.prune {
        prune(facts, cfg.allow_spill)
    } else {
        unpruned(facts, cfg.allow_spill)
    };
    let groups = clone_groups(facts);
    let mut model = Model::minimize();
    let fam_move = model.family("Move");
    let fam_color = model.family("Color");
    let fam_cb = model.family("cloneBefore");
    let fam_ca = model.family("cloneAfter");
    let fam_cm = model.family("cloneMove");
    let fam_ns = model.family("needsSpill");
    let fam_cp = model.family("copyPenalty");
    let fam_cav = model.family("colorAvail");

    // Constraint groups, interned once; rows are streamed under these ids
    // instead of carrying a formatted name each.
    let g_oneplace = model.group("OnePlace");
    let g_copy = model.group("Copy");
    let g_copyedge = model.group("CopyEdge");
    let g_aritha = model.group("ArithA");
    let g_arithb = model.group("ArithB");
    let g_arithpair = model.group("ArithPair");
    let g_arithxfer = model.group("ArithXfer");
    let g_defabw = model.group("DefABW");
    let g_gpuse = model.group("GpUse");
    let g_defagg = model.group("DefAgg");
    let g_useagg = model.group("UseAgg");
    let g_unitsrc = model.group("UnitSrc");
    let g_unitdst = model.group("UnitDst");
    let g_brancha = model.group("BranchA");
    let g_branchb = model.group("BranchB");
    let g_cloneloc = model.group("CloneLoc");
    let g_coalesce = model.group("CopyCoalesce");
    let g_k = model.group("K");
    let g_clonecount = model.group("CloneCount");
    let g_colorone = model.group("ColorOne");
    let g_interfere = model.group("Interfere");
    let g_adjacent = model.group("Adjacent");
    let g_cut = model.group("Cut");
    let g_samereg = model.group("SameReg");
    let g_clonecolor = model.group("CloneColor");
    let g_needspill = model.group("NeedSpill");
    let g_occupy = model.group("Occupy");
    let g_sparereg = model.group("SpareReg");
    let g_clonemove = model.group("CloneMove");

    // ---- block point ranges & action points ----
    let block_range = block_ranges(prog);
    let block_of = |p: PointId| facts.points[p.0 as usize].block;
    let mut actions = action_points(prog, facts, &block_range);
    // Clamp actions to points where the temp actually exists, and drop
    // move opportunities at no-move points (keep them as anchors though:
    // no-move points are never instruction-adjacent nor entries, so none
    // appear here by construction).
    for (v, set) in actions.iter_mut() {
        set.retain(|p| {
            facts.exists_at(*p).contains(v) || {
                // results exist at their post point by construction
                true
            }
        });
        let _ = v;
    }

    // ---- Move variables at action points ----
    let mut moves: MoveVars = HashMap::new();
    let mut action_order: Vec<(Temp, &BTreeSet<PointId>)> =
        actions.iter().map(|(v, s)| (*v, s)).collect();
    action_order.sort_by_key(|(v, _)| *v);
    for (v, pts) in &action_order {
        let mut cand: Vec<IlpBank> = candidates.of(*v).into_iter().collect();
        cand.sort();
        for p in pts.iter() {
            let no_move = facts.no_moves.contains(p);
            let mut vars = Vec::new();
            for &b1 in &cand {
                for &b2 in &cand {
                    if b1 != b2 && no_move {
                        continue;
                    }
                    if move_cost(cfg, b1, b2).is_none() {
                        continue;
                    }
                    let var = model.binary(
                        fam_move,
                        &[Key::Int(p.0), Key::Int(v.0), bank_key(b1), bank_key(b2)],
                    );
                    vars.push((var, b1, b2));
                }
            }
            moves.insert((*p, *v), vars);
        }
    }

    // `Before[p,v,b]` / `After[p,v,b]` stream `coeff·Move[..]` terms into a
    // caller-supplied scratch buffer (returning how many were pushed) so no
    // intermediate expression is ever allocated.
    let push_before = |buf: &mut Vec<(Var, f64)>,
                       moves: &MoveVars,
                       p: PointId,
                       v: Temp,
                       b: IlpBank,
                       coeff: f64|
     -> usize {
        let mut n = 0;
        if let Some(vars) = moves.get(&(p, v)) {
            for (var, from, _) in vars {
                if *from == b {
                    buf.push((*var, coeff));
                    n += 1;
                }
            }
        }
        n
    };
    let push_after = |buf: &mut Vec<(Var, f64)>,
                      moves: &MoveVars,
                      p: PointId,
                      v: Temp,
                      b: IlpBank,
                      coeff: f64|
     -> usize {
        let mut n = 0;
        if let Some(vars) = moves.get(&(p, v)) {
            for (var, _, to) in vars {
                if *to == b {
                    buf.push((*var, coeff));
                    n += 1;
                }
            }
        }
        n
    };
    // Shared scratch buffers, reused across every constraint below.
    let mut buf: Vec<(Var, f64)> = Vec::new();
    let mut obuf: Vec<(Var, f64)> = Vec::new();
    let mut obuf2: Vec<(Var, f64)> = Vec::new();
    let mut sbuf: Vec<(Var, f64)> = Vec::new();

    // ---- In one place only ----
    let mut move_keys: Vec<(PointId, Temp)> = moves.keys().copied().collect();
    move_keys.sort();
    for key in &move_keys {
        let mut b = model.row(g_oneplace);
        for (v, _, _) in &moves[key] {
            b.term(*v, 1.0);
        }
        b.finish(Cmp::Eq, 1.0);
    }

    // ---- Segment links (compressed Copy) within blocks ----
    for (v, pts) in &action_order {
        let mut cand: Vec<IlpBank> = candidates.of(*v).into_iter().collect();
        cand.sort();
        let list: Vec<PointId> = pts.iter().copied().collect();
        for w in list.windows(2) {
            let (a, b2) = (w[0], w[1]);
            if block_of(a) != block_of(b2) {
                continue;
            }
            // Only link when the variable exists on the whole span (it
            // does by liveness: both are action points of v in one block
            // and liveness is contiguous between a use and the next).
            for &bk in &cand {
                buf.clear();
                push_after(&mut buf, &moves, a, *v, bk, 1.0);
                push_before(&mut buf, &moves, b2, *v, bk, -1.0);
                commit_row(&mut model, g_copy, &buf, Cmp::Eq, 0.0, false);
            }
        }
    }

    // ---- Copy across CFG edges ----
    for (bi, b) in prog.blocks.iter().enumerate() {
        for succ in b.term.successors() {
            let entry = block_range[succ.index()].0;
            let mut live: Vec<Temp> = facts.liveness.live_in[&succ].iter().copied().collect();
            live.sort();
            for v in &live {
                // Last action of v in the predecessor block.
                let Some(pts) = actions.get(v) else { continue };
                let (lo, hi) = block_range[bi];
                let Some(last) = pts.range(lo..=hi).next_back().copied() else {
                    continue;
                };
                let mut cand: Vec<IlpBank> = candidates.of(*v).into_iter().collect();
                cand.sort();
                for bk in cand {
                    buf.clear();
                    push_after(&mut buf, &moves, last, *v, bk, 1.0);
                    push_before(&mut buf, &moves, entry, *v, bk, -1.0);
                    commit_row(&mut model, g_copyedge, &buf, Cmp::Eq, 0.0, false);
                }
            }
        }
    }

    // ---- Operand and definition constraints ----
    let mut fig6 = Fig6::default();
    let mut copy_penalties: Vec<(PointId, Var)> = Vec::new();
    let readable = [IlpBank::A, IlpBank::B, IlpBank::L, IlpBank::Ld];
    let writable = [IlpBank::A, IlpBank::B, IlpBank::S, IlpBank::Sd];
    let gp = [IlpBank::A, IlpBank::B];
    let require_in = |model: &mut Model,
                      moves: &MoveVars,
                      buf: &mut Vec<(Var, f64)>,
                      group: GroupId,
                      p: PointId,
                      v: Temp,
                      banks: &[IlpBank],
                      use_after: bool| {
        // When every candidate bank of v already satisfies the requirement,
        // the row is implied by OnePlace and adds nothing.
        if candidates.of(v).iter().all(|b| banks.contains(b)) {
            return;
        }
        buf.clear();
        for &bk in banks {
            if use_after {
                push_after(buf, moves, p, v, bk, 1.0);
            } else {
                push_before(buf, moves, p, v, bk, 1.0);
            }
        }
        commit_row(model, group, buf, Cmp::Eq, 1.0, false);
    };
    for fact in &facts.facts {
        match fact {
            Fact::AluTwo {
                pre,
                post,
                dst,
                a,
                b,
            } => {
                require_in(
                    &mut model, &moves, &mut buf, g_aritha, *pre, *a, &readable, true,
                );
                require_in(
                    &mut model, &moves, &mut buf, g_arithb, *pre, *b, &readable, true,
                );
                // Operands cannot share a general-purpose bank (rows that a
                // single operand populates are implied by OnePlace and
                // skipped).
                for bk in gp {
                    buf.clear();
                    let na = push_after(&mut buf, &moves, *pre, *a, bk, 1.0);
                    let nb = push_after(&mut buf, &moves, *pre, *b, bk, 1.0);
                    if na > 0 && nb > 0 {
                        commit_row(&mut model, g_arithpair, &buf, Cmp::Le, 1.0, true);
                    }
                }
                // Transfer-bank clique: L and LD together supply at most one
                // operand. One row subsumes the per-bank pair rows for L/LD
                // plus the two cross rows (given OnePlace each operand sits
                // in exactly one bank), and its LP relaxation is tighter.
                buf.clear();
                let mut na = 0;
                let mut nb = 0;
                for xb in [IlpBank::L, IlpBank::Ld] {
                    na += push_after(&mut buf, &moves, *pre, *a, xb, 1.0);
                    nb += push_after(&mut buf, &moves, *pre, *b, xb, 1.0);
                }
                if na > 0 && nb > 0 {
                    commit_row(&mut model, g_arithxfer, &buf, Cmp::Le, 1.0, true);
                }
                require_in(
                    &mut model, &moves, &mut buf, g_defabw, *post, *dst, &writable, false,
                );
            }
            Fact::AluOne { pre, post, dst, a } => {
                require_in(
                    &mut model, &moves, &mut buf, g_aritha, *pre, *a, &readable, true,
                );
                require_in(
                    &mut model, &moves, &mut buf, g_defabw, *post, *dst, &writable, false,
                );
            }
            Fact::MoveF {
                pre,
                post,
                dst,
                src,
            } => {
                require_in(
                    &mut model, &moves, &mut buf, g_aritha, *pre, *src, &readable, true,
                );
                require_in(
                    &mut model, &moves, &mut buf, g_defabw, *post, *dst, &writable, false,
                );
                // Coalescing incentive: when source and destination share
                // a bank, the A/B coloring phase deletes this copy; when
                // they differ, the instruction survives and costs a move.
                // pm >= After[pre,src,b] - Before[post,dst,b]  for each b.
                let pm = model.continuous(fam_cp, &[Key::Int(pre.0), Key::Int(dst.0)], 0.0, 1.0);
                for &bk in &candidates.of(*src) {
                    buf.clear();
                    push_after(&mut buf, &moves, *pre, *src, bk, 1.0);
                    push_before(&mut buf, &moves, *post, *dst, bk, -1.0);
                    buf.push((pm, -1.0));
                    commit_row(&mut model, g_coalesce, &buf, Cmp::Le, 0.0, false);
                }
                copy_penalties.push((*pre, pm));
            }
            Fact::Def { post, dsts } => {
                for d in dsts {
                    require_in(
                        &mut model, &moves, &mut buf, g_defabw, *post, *d, &writable, false,
                    );
                }
            }
            Fact::GpUse { pre, srcs } => {
                for s in srcs {
                    require_in(&mut model, &moves, &mut buf, g_gpuse, *pre, *s, &gp, true);
                }
            }
            Fact::ReadAgg {
                post, space, dsts, ..
            } => {
                let bank = load_bank(*space);
                match bank {
                    IlpBank::L => fig6.def_l += dsts.len(),
                    _ => fig6.def_ld += dsts.len(),
                }
                for d in dsts {
                    require_in(
                        &mut model,
                        &moves,
                        &mut buf,
                        g_defagg,
                        *post,
                        *d,
                        &[bank],
                        false,
                    );
                }
            }
            Fact::WriteAgg { pre, space, srcs } => {
                let bank = store_bank(*space);
                match bank {
                    IlpBank::S => fig6.use_s += srcs.len(),
                    _ => fig6.use_sd += srcs.len(),
                }
                for s in srcs {
                    require_in(
                        &mut model,
                        &moves,
                        &mut buf,
                        g_useagg,
                        *pre,
                        *s,
                        &[bank],
                        true,
                    );
                }
            }
            Fact::SameReg {
                pre,
                post,
                dst,
                src,
            } => {
                require_in(
                    &mut model,
                    &moves,
                    &mut buf,
                    g_unitsrc,
                    *pre,
                    *src,
                    &[IlpBank::S],
                    true,
                );
                require_in(
                    &mut model,
                    &moves,
                    &mut buf,
                    g_unitdst,
                    *post,
                    *dst,
                    &[IlpBank::L],
                    false,
                );
            }
            Fact::CloneF {
                pre,
                post,
                dst,
                src,
            } => {
                // Clone starts out wherever the original is (§10).
                let mut banks: Vec<IlpBank> = candidates.of(*dst).into_iter().collect();
                banks.sort();
                for bk in banks {
                    buf.clear();
                    push_before(&mut buf, &moves, *post, *dst, bk, 1.0);
                    push_after(&mut buf, &moves, *pre, *src, bk, -1.0);
                    commit_row(&mut model, g_cloneloc, &buf, Cmp::Eq, 0.0, false);
                }
            }
            Fact::BranchUse { pre, a, b } => {
                require_in(
                    &mut model, &moves, &mut buf, g_brancha, *pre, *a, &readable, true,
                );
                if let Some(b) = b {
                    require_in(
                        &mut model, &moves, &mut buf, g_branchb, *pre, *b, &readable, true,
                    );
                    for bk in gp {
                        buf.clear();
                        let na = push_after(&mut buf, &moves, *pre, *a, bk, 1.0);
                        let nb = push_after(&mut buf, &moves, *pre, *b, bk, 1.0);
                        if na > 0 && nb > 0 {
                            commit_row(&mut model, g_arithpair, &buf, Cmp::Le, 1.0, true);
                        }
                    }
                    // Same transfer-bank clique as AluTwo.
                    buf.clear();
                    let mut na = 0;
                    let mut nb = 0;
                    for xb in [IlpBank::L, IlpBank::Ld] {
                        na += push_after(&mut buf, &moves, *pre, *a, xb, 1.0);
                        nb += push_after(&mut buf, &moves, *pre, *b, xb, 1.0);
                    }
                    if na > 0 && nb > 0 {
                        commit_row(&mut model, g_arithxfer, &buf, Cmp::Le, 1.0, true);
                    }
                }
            }
        }
    }

    // ---- Governing expression per (point, temp) for K/interference ----
    // The latest action point of v at or before p within p's block.
    let governing =
        |actions: &HashMap<Temp, BTreeSet<PointId>>, p: PointId, v: Temp| -> Option<PointId> {
            let pts = actions.get(&v)?;
            let (lo, _) = block_range[block_of(p).index()];
            pts.range(lo..=p).next_back().copied()
        };
    // Residency of v at p before/after the moves executing at p: between
    // action points the bank is the governing point's After; exactly at an
    // action point, "before the moves" is that point's Before.
    let push_occupancy = |buf: &mut Vec<(Var, f64)>,
                          moves: &MoveVars,
                          actions: &HashMap<Temp, BTreeSet<PointId>>,
                          p: PointId,
                          v: Temp,
                          bank: IlpBank,
                          after_moves: bool,
                          coeff: f64|
     -> Option<usize> {
        let g = governing(actions, p, v)?;
        if g == p && !after_moves {
            Some(push_before(buf, moves, p, v, bank, coeff))
        } else {
            Some(push_after(buf, moves, g, v, bank, coeff))
        }
    };

    // ---- Clone-aware K constraints for A and B ----
    // Representative counting (§10): members of one clone set in the same
    // bank occupy one register.
    let group_key = |g: &[Temp]| g[0];
    for (pi, _) in facts.points.iter().enumerate() {
        let p = PointId(pi as u32);
        let exists = facts.exists_at(p);
        for (bank, cap) in [(IlpBank::A, cfg.k_a), (IlpBank::B, cfg.k_b)] {
            // Cheap skip: pressure cannot exceed the cap.
            let mut eligible: Vec<Temp> = exists
                .iter()
                .filter(|v| candidates.allows(**v, bank))
                .copied()
                .collect();
            eligible.sort();
            if eligible.len() <= cap {
                continue;
            }
            // The before-moves variant only differs from the after-moves
            // variant when some eligible temp has an action at p.
            let any_action_here = eligible
                .iter()
                .any(|v| actions.get(v).is_some_and(|s| s.contains(&p)));
            for after_moves in [false, true] {
                if !after_moves && !any_action_here {
                    continue;
                }
                buf.clear();
                let mut done_groups: HashSet<Temp> = HashSet::new();
                for v in &eligible {
                    if let Some(g) = groups.get(v) {
                        let rep = group_key(g);
                        if !done_groups.insert(rep) {
                            continue;
                        }
                        let live_members: Vec<Temp> = g
                            .iter()
                            .filter(|m| exists.contains(m) && candidates.allows(**m, bank))
                            .copied()
                            .collect();
                        if live_members.len() == 1 {
                            let m = live_members[0];
                            push_occupancy(
                                &mut buf,
                                &moves,
                                &actions,
                                p,
                                m,
                                bank,
                                after_moves,
                                1.0,
                            );
                            continue;
                        }
                        // cloneBefore / cloneAfter counting variable.
                        let fam = if after_moves { fam_ca } else { fam_cb };
                        let cvar =
                            model.binary(fam, &[Key::Int(p.0), Key::Int(rep.0), bank_key(bank)]);
                        sbuf.clear();
                        for m in &live_members {
                            obuf.clear();
                            if push_occupancy(
                                &mut obuf,
                                &moves,
                                &actions,
                                p,
                                *m,
                                bank,
                                after_moves,
                                1.0,
                            )
                            .is_some()
                            {
                                // cvar >= member occupancy
                                sbuf.extend_from_slice(&obuf);
                                obuf.push((cvar, -1.0));
                                commit_row(&mut model, g_clonecount, &obuf, Cmp::Le, 0.0, true);
                            }
                        }
                        // cvar <= sum of member occupancies.
                        let mut b = model.row(g_clonecount);
                        b.term(cvar, 1.0);
                        for &(mv, c) in &sbuf {
                            b.term(mv, -c);
                        }
                        b.finish_lazy(Cmp::Le, 0.0);
                        buf.push((cvar, 1.0));
                    } else {
                        push_occupancy(&mut buf, &moves, &actions, p, *v, bank, after_moves, 1.0);
                    }
                }
                commit_row(&mut model, g_k, &buf, Cmp::Le, cap as f64, true);
            }
        }
    }

    // ---- Transfer-bank colors ----
    let mut colors: HashMap<(Temp, IlpBank), Vec<Var>> = HashMap::new();
    let mut all_temps: Vec<Temp> = actions.keys().copied().collect();
    all_temps.sort();
    for v in &all_temps {
        for xb in IlpBank::TRANSFER {
            if !candidates.allows(*v, xb) {
                continue;
            }
            let vars: Vec<Var> = (0..8)
                .map(|r| model.binary(fam_color, &[Key::Int(v.0), bank_key(xb), Key::Int(r)]))
                .collect();
            let mut b = model.row(g_colorone);
            for &cv in &vars {
                b.term(cv, 1.0);
            }
            b.finish(Cmp::Eq, 1.0);
            colors.insert((*v, xb), vars);
        }
    }

    // ---- Color interference (§9): different registers when coexisting ----
    // Two temps that are simultaneously in the same transfer bank must
    // differ in color, unless they are clones of each other.
    let same_group = |a: Temp, b: Temp| groups.get(&a).is_some_and(|g| g.contains(&b));
    // Residency only changes at action points: the post-move variant needs
    // one constraint per (pair, bank, governing-point combination); the
    // pre-move variant matters at action points, where a value a memory
    // read just delivered coexists with residents that only leave in the
    // moves at that point.
    let mut seen_pairs: HashSet<(Temp, Temp, IlpBank, PointId, PointId)> = HashSet::new();
    let mut seen_before: HashSet<(Temp, Temp, IlpBank, PointId)> = HashSet::new();
    for (pi, _) in facts.points.iter().enumerate() {
        let p = PointId(pi as u32);
        let exists = facts.exists_at(p);
        let mut xfer_vars: Vec<(Temp, IlpBank)> = Vec::new();
        let mut exists_sorted: Vec<Temp> = exists.iter().copied().collect();
        exists_sorted.sort();
        for v in &exists_sorted {
            for xb in IlpBank::TRANSFER {
                if candidates.allows(*v, xb) {
                    xfer_vars.push((*v, xb));
                }
            }
        }
        for i in 0..xfer_vars.len() {
            for j in (i + 1)..xfer_vars.len() {
                let (v1, b1) = xfer_vars[i];
                let (v2, b2) = xfer_vars[j];
                if b1 != b2 || v1 == v2 || same_group(v1, v2) {
                    continue;
                }
                let (Some(g1), Some(g2)) = (governing(&actions, p, v1), governing(&actions, p, v2))
                else {
                    continue;
                };
                let (lo, hi, glo, ghi) = if v1 < v2 {
                    (v1, v2, g1, g2)
                } else {
                    (v2, v1, g2, g1)
                };
                if seen_pairs.insert((lo, hi, b1, glo, ghi)) {
                    obuf.clear();
                    obuf2.clear();
                    let n1 = push_after(&mut obuf, &moves, g1, v1, b1, 1.0);
                    let n2 = push_after(&mut obuf2, &moves, g2, v2, b1, 1.0);
                    if n1 > 0 && n2 > 0 {
                        for (&c1, &c2) in colors[&(v1, b1)].iter().zip(&colors[&(v2, b1)]) {
                            let mut b = model.row(g_interfere);
                            for &(mv, c) in obuf.iter().chain(&obuf2) {
                                b.term(mv, c);
                            }
                            b.term(c1, 1.0).term(c2, 1.0).finish_lazy(Cmp::Le, 3.0);
                        }
                    }
                }
                let action_here = g1 == p || g2 == p;
                if action_here && seen_before.insert((lo, hi, b1, p)) {
                    obuf.clear();
                    obuf2.clear();
                    let n1 = if g1 == p {
                        push_before(&mut obuf, &moves, p, v1, b1, 1.0)
                    } else {
                        push_after(&mut obuf, &moves, g1, v1, b1, 1.0)
                    };
                    let n2 = if g2 == p {
                        push_before(&mut obuf2, &moves, p, v2, b1, 1.0)
                    } else {
                        push_after(&mut obuf2, &moves, g2, v2, b1, 1.0)
                    };
                    if n1 > 0 && n2 > 0 {
                        for (&c1, &c2) in colors[&(v1, b1)].iter().zip(&colors[&(v2, b1)]) {
                            let mut b = model.row(g_interfere);
                            for &(mv, c) in obuf.iter().chain(&obuf2) {
                                b.term(mv, c);
                            }
                            b.term(c1, 1.0).term(c2, 1.0).finish_lazy(Cmp::Le, 3.0);
                        }
                    }
                }
            }
        }
    }

    // ---- Aggregate adjacency (§9) ----
    for (space, is_read, members) in &facts.aggregates {
        let xb = if *is_read {
            load_bank(*space)
        } else {
            store_bank(*space)
        };
        let k = members.len();
        for j in 0..k.saturating_sub(1) {
            let cj = &colors[&(members[j], xb)];
            let cj1 = &colors[&(members[j + 1], xb)];
            for r in 0..8 {
                let mut b = model.row(g_adjacent);
                b.term(cj[r], 1.0);
                if r + 1 < 8 {
                    b.term(cj1[r + 1], -1.0);
                }
                b.finish(Cmp::Eq, 0.0);
            }
        }
        if cfg.redundant_cuts {
            // Member m of an aggregate of size k can only use registers
            // m ..= 8-k+m; ruling the rest out up front speeds the solver
            // (§9 "we found that adding a redundant set of constraints...").
            for (m, v) in members.iter().enumerate() {
                let cv = &colors[&(*v, xb)];
                for (r, &c) in cv.iter().enumerate() {
                    if r < m || r > 8 - k + m {
                        model.row(g_cut).term(c, 1.0).finish(Cmp::Eq, 0.0);
                    }
                }
            }
        }
    }

    // ---- Same-register units ----
    for fact in &facts.facts {
        if let Fact::SameReg { dst, src, .. } = fact {
            let cd = &colors[&(*dst, IlpBank::L)];
            let cs = &colors[&(*src, IlpBank::S)];
            for r in 0..8 {
                model
                    .row(g_samereg)
                    .term(cd[r], 1.0)
                    .term(cs[r], -1.0)
                    .finish(Cmp::Eq, 0.0);
            }
        }
    }

    // ---- Clone color agreement (§10) ----
    for fact in &facts.facts {
        if let Fact::CloneF { post, dst, src, .. } = fact {
            for xb in IlpBank::TRANSFER {
                if !candidates.allows(*dst, xb) || !candidates.allows(*src, xb) {
                    continue;
                }
                obuf.clear();
                if push_before(&mut obuf, &moves, *post, *dst, xb, 1.0) == 0 {
                    continue;
                }
                let cd = &colors[&(*dst, xb)];
                let cs = &colors[&(*src, xb)];
                for (r1, &d) in cd.iter().enumerate() {
                    for (r2, &s) in cs.iter().enumerate() {
                        if r1 == r2 {
                            continue;
                        }
                        // If the clone starts in xb, colors must agree.
                        let mut b = model.row(g_clonecolor);
                        for &(mv, c) in &obuf {
                            b.term(mv, c);
                        }
                        b.term(d, 1.0).term(s, 1.0).finish_lazy(Cmp::Le, 2.0);
                    }
                }
            }
        }
    }

    // ---- Spill spare-register bookkeeping (§9) ----
    if cfg.allow_spill {
        for (pi, _) in facts.points.iter().enumerate() {
            let p = PointId(pi as u32);
            // Which spill transients pass through S and L here?
            let mut store_moves: Vec<Var> = Vec::new(); // need spare S
            let mut load_moves: Vec<Var> = Vec::new(); // need spare L
            let mut spill_scan: Vec<Temp> = facts.exists_at(p).iter().copied().collect();
            spill_scan.sort();
            for v in &spill_scan {
                if let Some(vars) = moves.get(&(p, *v)) {
                    for (var, from, to) in vars {
                        if *to == IlpBank::M
                            && matches!(from, IlpBank::A | IlpBank::B | IlpBank::L | IlpBank::Ld)
                        {
                            store_moves.push(*var);
                        }
                        if *from == IlpBank::M && !matches!(to, IlpBank::L | IlpBank::M) {
                            load_moves.push(*var);
                        }
                    }
                }
            }
            for (bank, trans) in [(IlpBank::S, &store_moves), (IlpBank::L, &load_moves)] {
                if trans.is_empty() {
                    continue;
                }
                let ns = model.binary(fam_ns, &[Key::Int(p.0), bank_key(bank)]);
                for t in trans {
                    model
                        .row(g_needspill)
                        .term(*t, 1.0)
                        .term(ns, -1.0)
                        .finish_lazy(Cmp::Le, 0.0);
                }
                // Tightening (§9): needsSpill <= sum of spill moves.
                {
                    let mut b = model.row(g_needspill);
                    b.term(ns, 1.0);
                    for t in trans {
                        b.term(*t, -1.0);
                    }
                    b.finish_lazy(Cmp::Le, 0.0);
                }
                // Occupancy: residents of `bank` at p claim their color.
                let mut avail = Vec::new();
                for r in 0..8u32 {
                    let av = model.binary(fam_cav, &[Key::Int(p.0), bank_key(bank), Key::Int(r)]);
                    avail.push(av);
                }
                let mut occupants: Vec<Temp> = facts.exists_at(p).iter().copied().collect();
                occupants.sort();
                for v in &occupants {
                    if !candidates.allows(*v, bank) {
                        continue;
                    }
                    obuf.clear();
                    match push_occupancy(&mut obuf, &moves, &actions, p, *v, bank, false, 1.0) {
                        None | Some(0) => continue,
                        Some(_) => {}
                    }
                    let cv = &colors[&(*v, bank)];
                    for r in 0..8 {
                        let mut b = model.row(g_occupy);
                        for &(mv, c) in &obuf {
                            b.term(mv, c);
                        }
                        b.term(cv[r], 1.0)
                            .term(avail[r], -1.0)
                            .finish_lazy(Cmp::Le, 1.0);
                    }
                }
                let mut b = model.row(g_sparereg);
                for &av in &avail {
                    b.term(av, 1.0);
                }
                b.term(ns, 1.0).finish_lazy(Cmp::Le, 8.0);
            }
        }
    }

    // ---- Objective (§7) with clone-set counting (§10) ----
    let mut counted: HashSet<(PointId, Temp)> = HashSet::new();
    let mut objective = LinExpr::new();
    for key in &move_keys {
        let ((p, v), vars) = (key, &moves[key]);
        if counted.contains(&(*p, *v)) {
            continue;
        }
        let w = freqs.of(block_of(*p)).max(1e-3);
        let members: Vec<Temp> = match groups.get(v) {
            Some(g) => g
                .iter()
                .filter(|m| moves.contains_key(&(*p, **m)))
                .copied()
                .collect(),
            None => vec![*v],
        };
        if members.len() > 1 {
            // Clone set: count one move per (from, to) pair via cloneMove.
            let mut pairs: BTreeSet<(IlpBank, IlpBank)> = BTreeSet::new();
            for m in &members {
                for (_, b1, b2) in &moves[&(*p, *m)] {
                    if b1 != b2 {
                        pairs.insert((*b1, *b2));
                    }
                }
                counted.insert((*p, *m));
            }
            let rep = members[0];
            for (b1, b2) in pairs {
                let cm = model.binary(
                    fam_cm,
                    &[Key::Int(p.0), Key::Int(rep.0), bank_key(b1), bank_key(b2)],
                );
                sbuf.clear();
                for m in &members {
                    for (var, f, t) in &moves[&(*p, *m)] {
                        if *f == b1 && *t == b2 {
                            model
                                .row(g_clonemove)
                                .term(*var, 1.0)
                                .term(cm, -1.0)
                                .finish_lazy(Cmp::Le, 0.0);
                            sbuf.push((*var, 1.0));
                        }
                    }
                }
                let mut b = model.row(g_clonemove);
                b.term(cm, 1.0);
                for &(mv, c) in &sbuf {
                    b.term(mv, -c);
                }
                b.finish_lazy(Cmp::Le, 0.0);
                let cost = move_cost(cfg, b1, b2).unwrap_or(0.0);
                let biased = if b1 == IlpBank::B {
                    cost * cfg.bias
                } else {
                    cost
                };
                objective += LinExpr::from(cm) * (w * biased);
            }
        } else {
            counted.insert((*p, *v));
            for (var, b1, b2) in vars {
                if b1 == b2 {
                    continue;
                }
                let cost = move_cost(cfg, *b1, *b2).unwrap_or(0.0);
                let biased = if *b1 == IlpBank::B {
                    cost * cfg.bias
                } else {
                    cost
                };
                objective += LinExpr::from(*var) * (w * biased);
            }
        }
    }
    // Tiny symmetry-breaking preference for low register numbers: without
    // it the LP spreads a free color fractionally over all eight registers
    // (zero cost either way) and branch-and-bound has to enumerate them.
    // The epsilon is scaled so the whole term cannot perturb even a single
    // cheapest move decision.
    let n_color_vars: usize = colors.values().map(|v| v.len()).sum();
    if n_color_vars > 0 {
        let eps = cfg.mv_cost * 1e-3 / (8.0 * n_color_vars as f64);
        let mut tie = LinExpr::new();
        for vars in colors.values() {
            for (r, var) in vars.iter().enumerate() {
                if r > 0 {
                    tie.add_term(*var, eps * r as f64);
                }
            }
        }
        model.add_objective(tie);
    }
    // Surviving parameter-passing copies cost a move at their block's
    // frequency (coalesced copies cost nothing).
    for (p, pm) in &copy_penalties {
        let w = freqs.of(block_of(*p)).max(1e-3);
        objective += LinExpr::from(*pm) * (w * cfg.mv_cost);
    }
    model.add_objective(objective);

    BankModel {
        model,
        moves,
        colors,
        actions,
        candidates,
        groups,
        block_range,
        fig6,
    }
}

/// The decoded solution of the bank-assignment ILP.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Bank of each temp before the moves at each of its action points.
    pub before: HashMap<(PointId, Temp), IlpBank>,
    /// Bank after the moves at each action point.
    pub after: HashMap<(PointId, Temp), IlpBank>,
    /// Non-identity moves per point, in temp order.
    pub moves: HashMap<PointId, Vec<(Temp, IlpBank, IlpBank)>>,
    /// Transfer-bank register per `(temp, bank)`.
    pub colors: HashMap<(Temp, IlpBank), u8>,
    /// Number of inter-bank moves (Figure 7's "Moves").
    pub n_moves: usize,
    /// Number of spills — transitions into `M` (Figure 7's "Spills").
    pub n_spills: usize,
}

/// Solver+model statistics (Figure 7's row for one program).
#[derive(Debug, Clone, PartialEq)]
pub struct AllocStats {
    /// Model sizes.
    pub model: ModelStats,
    /// Branch-and-bound statistics (root LP time, total time, nodes).
    pub solve: SolveStats,
    /// Figure-6 aggregate statistics.
    pub fig6: Fig6,
    /// Inter-bank moves in the solution.
    pub moves: usize,
    /// Spills in the solution.
    pub spills: usize,
    /// Objective of the accepted integer solution.
    pub objective: f64,
}

/// Solve the model and decode the solution.
///
/// # Errors
///
/// Propagates solver failure ([`MilpError`]); an `Infeasible` outcome on a
/// well-formed program indicates the program genuinely cannot be allocated
/// (e.g. spilling disabled with excessive pressure).
pub fn solve(bm: &mut BankModel, cfg: &AllocConfig) -> Result<(Assignment, AllocStats), MilpError> {
    solve_with(bm, cfg, &nova_obs::Obs::noop())
}

/// [`solve`] with structured telemetry (the underlying MILP search
/// publishes its `ilp.*` events; see [`ilp::solve_milp_with`]).
///
/// # Errors
///
/// Propagates solver failure ([`MilpError`]) as [`solve`] does.
pub fn solve_with(
    bm: &mut BankModel,
    cfg: &AllocConfig,
    obs: &nova_obs::Obs,
) -> Result<(Assignment, AllocStats), MilpError> {
    solve_hinted_with(bm, cfg, None, obs).map(|(asg, stats, _)| (asg, stats))
}

/// [`solve_with`], optionally warm-started from a previous solution's raw
/// variable values (see [`ilp::solve_milp_hinted_with`]; an infeasible or
/// wrong-length hint is ignored). Also returns the accepted solution's raw
/// values, which a session can keep as the hint for the next
/// structurally-identical solve.
///
/// # Errors
///
/// Propagates solver failure ([`MilpError`]) as [`solve`] does.
pub fn solve_hinted_with(
    bm: &mut BankModel,
    cfg: &AllocConfig,
    hint: Option<&[f64]>,
    obs: &nova_obs::Obs,
) -> Result<(Assignment, AllocStats, Vec<f64>), MilpError> {
    let stats_model = bm.model.stats();
    let sol = match hint {
        Some(h) => bm.model.solve_hinted_with(&cfg.solver, h, obs)?,
        None => bm.model.solve_with(&cfg.solver, obs)?,
    };
    let assignment = decode_assignment(bm, &sol.values);
    let stats = AllocStats {
        model: stats_model,
        solve: sol.stats,
        fig6: bm.fig6,
        moves: assignment.n_moves,
        spills: assignment.n_spills,
        objective: sol.objective,
    };
    Ok((assignment, stats, sol.values))
}

/// Decode the 0/1 values of any MILP solution of a [`BankModel`] into an
/// [`Assignment`]. Shared by every stage of the fallback ladder so exact,
/// gap-widened, and LP-rounded solutions are read identically.
pub(crate) fn decode_assignment(bm: &BankModel, values: &[f64]) -> Assignment {
    let mut before = HashMap::new();
    let mut after = HashMap::new();
    let mut moves_out: HashMap<PointId, Vec<(Temp, IlpBank, IlpBank)>> = HashMap::new();
    let mut n_moves = 0;
    let mut n_spills = 0;
    for ((p, v), vars) in &bm.moves {
        for (var, b1, b2) in vars {
            if values[var.index()] > 0.5 {
                before.insert((*p, *v), *b1);
                after.insert((*p, *v), *b2);
                if b1 != b2 {
                    moves_out.entry(*p).or_default().push((*v, *b1, *b2));
                    n_moves += 1;
                    if *b2 == IlpBank::M {
                        n_spills += 1;
                    }
                }
            }
        }
    }
    for v in moves_out.values_mut() {
        v.sort();
    }
    let mut colors = HashMap::new();
    for ((v, xb), vars) in &bm.colors {
        for (r, var) in vars.iter().enumerate() {
            if values[var.index()] > 0.5 {
                colors.insert((*v, *xb), r as u8);
            }
        }
    }
    Assignment {
        before,
        after,
        moves: moves_out,
        colors,
        n_moves,
        n_spills,
    }
}

/// Convenience: the point id of a (block, index) pair.
pub fn point_id(facts: &Facts, block: u32, index: u32) -> PointId {
    facts.point_id[&Point {
        block: ixp_machine::BlockId(block),
        index,
    }]
}

#[cfg(test)]
mod tests {
    use super::*;
    use IlpBank::*;

    #[test]
    fn move_cost_table_matches_paper() {
        let cfg = AllocConfig::default();
        // §7: mvC = 1, ldC = stC = 200.
        assert_eq!(move_cost(&cfg, A, B), Some(1.0));
        assert_eq!(move_cost(&cfg, L, S), Some(1.0), "read side to store side");
        assert_eq!(move_cost(&cfg, A, M), Some(201.0), "A->S move + store");
        assert_eq!(move_cost(&cfg, S, M), Some(200.0), "store only");
        assert_eq!(move_cost(&cfg, M, L), Some(200.0), "reload lands in L");
        assert_eq!(move_cost(&cfg, M, A), Some(201.0), "reload + move");
        // Illegal data paths (§1.1).
        assert_eq!(move_cost(&cfg, S, A), None, "store side is opaque");
        assert_eq!(move_cost(&cfg, Sd, M), None);
        assert_eq!(move_cost(&cfg, A, L), None, "only memory writes L");
        assert_eq!(move_cost(&cfg, A, Ld), None);
        // Identity is free everywhere.
        for b in IlpBank::ALL {
            assert_eq!(move_cost(&cfg, b, b), Some(0.0));
        }
    }

    #[test]
    fn ilp_banks_classify() {
        assert!(IlpBank::L.is_transfer());
        assert!(!IlpBank::M.is_transfer());
        assert!(IlpBank::A.alu_readable() && IlpBank::A.alu_writable());
        assert!(IlpBank::L.alu_readable() && !IlpBank::L.alu_writable());
        assert!(!IlpBank::S.alu_readable() && IlpBank::S.alu_writable());
        assert!(!IlpBank::M.alu_readable() && !IlpBank::M.alu_writable());
    }
}
