//! Deterministic greedy fallback allocator (ladder stage 4).
//!
//! The terminal rung of the staged allocator must *always* produce a
//! runnable allocation, in time linear in the program, with no search at
//! all. The scheme exploits the SSU (static single use) form the
//! frontend guarantees — every temporary has exactly one definition and
//! at most one use per clone — which keeps residency intervals tiny:
//!
//! * the **home** of every temporary is scratch memory (`M`);
//! * a definition lands in the cheapest bank its instruction can write
//!   (`A` for ALU results, the forced `L`/`LD` segment for aggregate
//!   reads, `L` for hash results) and is parked to `M` in the same
//!   move window unless it dies on the spot;
//! * a use reloads from `M` into the bank its instruction demands
//!   (`A`/`B` for ALU operands, `S`/`SD` for aggregate writes) exactly at
//!   its pre-point, and is re-parked immediately if it survives.
//!
//! Every block joins on the invariant "live values are in scratch": the
//! last action before a boundary is a park, or — for branch operands
//! that survive the branch, where a park is illegal — the scratch slot
//! already holds the value from an earlier park, so the register copy is
//! simply abandoned. Either way the allocator cannot run out of
//! registers: at any point the only non-`M` residents are the operands
//! of the two adjacent instructions. Def-use chains at adjacent points
//! short-circuit (the use requirement overrides the park), so
//! `a = op(..); use(a)` still moves register-to-register.
//!
//! Transfer-bank colors are positional: aggregate member *i* takes
//! register *i* of its forced bank, and the hash unit's same-register
//! pair takes index 0. Residency windows in transfer banks are
//! point-local, so positional reuse across instructions never collides.
//!
//! The output is an ordinary [`Assignment`] (plus a variable-free
//! [`BankModel`] shell carrying the bookkeeping extraction needs), so
//! everything downstream — extraction, A/B coloring, validation, the
//! [`super::verify`] checker — treats greedy allocations exactly like
//! MILP allocations.
//!
//! Inputs the exact ILP would reject as infeasible (a temp required in
//! two banks at once, an aggregate wider than a transfer bank, non-SSU
//! programs that keep store-bank residents alive) are reported as
//! [`AllocError::Greedy`]; they cannot arise from the frontend.

use super::candidates::{clone_groups, load_bank, prune, store_bank, IlpBank};
use super::facts::{Fact, Facts, PointId};
use super::model::{
    action_points, block_ranges, move_cost, AllocConfig, AllocStats, Assignment, BankModel, Fig6,
};
use super::AllocError;
use crate::freq::Frequencies;
use ilp::{Model, SolveStats};
use ixp_machine::{Program, Temp};
use std::collections::{BTreeSet, HashMap};

/// Transfer banks hold eight registers; positional coloring cannot
/// exceed that.
const XFER_CAPACITY: usize = 8;

fn err(msg: String) -> AllocError {
    AllocError::Greedy(msg)
}

/// Record a bank requirement, rejecting contradictions (the exact model
/// would be infeasible on the same input).
fn require(
    map: &mut HashMap<(PointId, Temp), IlpBank>,
    p: PointId,
    v: Temp,
    b: IlpBank,
) -> Result<(), AllocError> {
    match map.insert((p, v), b) {
        Some(old) if old != b => Err(err(format!(
            "temp {v} required in both {} and {} at {p}",
            old.name(),
            b.name()
        ))),
        _ => Ok(()),
    }
}

/// Record a positional transfer-bank color, rejecting contradictions.
fn assign_color(
    colors: &mut HashMap<(Temp, IlpBank), u8>,
    v: Temp,
    b: IlpBank,
    r: usize,
) -> Result<(), AllocError> {
    if r >= XFER_CAPACITY {
        return Err(err(format!(
            "aggregate member {v} needs register {r} of bank {} (capacity {XFER_CAPACITY})",
            b.name()
        )));
    }
    match colors.insert((v, b), r as u8) {
        Some(old) if usize::from(old) != r => Err(err(format!(
            "temp {v} needs both register {old} and register {r} of bank {}",
            b.name()
        ))),
        _ => Ok(()),
    }
}

/// Allocate greedily. Always succeeds on frontend-produced (SSU)
/// programs; see the module docs for the scheme.
pub(crate) fn allocate(
    prog: &Program<Temp>,
    facts: &Facts,
    freqs: &Frequencies,
    cfg: &AllocConfig,
) -> Result<(BankModel, Assignment, AllocStats), AllocError> {
    let block_range = block_ranges(prog);
    let mut actions = action_points(prog, facts, &block_range);

    // Pass 1: per-point bank requirements and positional colors.
    let mut def_req: HashMap<(PointId, Temp), IlpBank> = HashMap::new();
    let mut use_req: HashMap<(PointId, Temp), IlpBank> = HashMap::new();
    let mut colors: HashMap<(Temp, IlpBank), u8> = HashMap::new();
    for fact in &facts.facts {
        match fact {
            Fact::AluTwo {
                pre,
                post,
                dst,
                a,
                b,
            } => {
                require(&mut use_req, *pre, *a, IlpBank::A)?;
                require(&mut use_req, *pre, *b, IlpBank::B)?;
                require(&mut def_req, *post, *dst, IlpBank::A)?;
            }
            Fact::AluOne { pre, post, dst, a } => {
                require(&mut use_req, *pre, *a, IlpBank::A)?;
                require(&mut def_req, *post, *dst, IlpBank::A)?;
            }
            Fact::MoveF {
                pre,
                post,
                dst,
                src,
            }
            | Fact::CloneF {
                pre,
                post,
                dst,
                src,
            } => {
                // Clones place src and dst in the same bank so extraction
                // can alias them onto one register.
                require(&mut use_req, *pre, *src, IlpBank::A)?;
                require(&mut def_req, *post, *dst, IlpBank::A)?;
            }
            Fact::Def { post, dsts } => {
                for d in dsts {
                    require(&mut def_req, *post, *d, IlpBank::A)?;
                }
            }
            Fact::GpUse { pre, srcs } => {
                for s in srcs {
                    require(&mut use_req, *pre, *s, IlpBank::A)?;
                }
            }
            Fact::ReadAgg {
                post, space, dsts, ..
            } => {
                let b = load_bank(*space);
                for (i, d) in dsts.iter().enumerate() {
                    require(&mut def_req, *post, *d, b)?;
                    assign_color(&mut colors, *d, b, i)?;
                }
            }
            Fact::WriteAgg { pre, space, srcs } => {
                let b = store_bank(*space);
                for (i, s) in srcs.iter().enumerate() {
                    require(&mut use_req, *pre, *s, b)?;
                    assign_color(&mut colors, *s, b, i)?;
                }
            }
            Fact::SameReg {
                pre,
                post,
                dst,
                src,
            } => {
                // The hash unit reads S[i] and writes L[i]; pin both to
                // index 0 (the pair is point-local, reuse is safe).
                require(&mut use_req, *pre, *src, IlpBank::S)?;
                assign_color(&mut colors, *src, IlpBank::S, 0)?;
                require(&mut def_req, *post, *dst, IlpBank::L)?;
                assign_color(&mut colors, *dst, IlpBank::L, 0)?;
            }
            Fact::BranchUse { pre, a, b } => {
                require(&mut use_req, *pre, *a, IlpBank::A)?;
                if let Some(b) = b {
                    require(&mut use_req, *pre, *b, IlpBank::B)?;
                }
            }
        }
    }

    // Is v live at p? (liveness is keyed by (block, index) points.)
    let live_at = |p: PointId, v: Temp| -> bool {
        facts
            .points
            .get(p.0 as usize)
            .and_then(|pt| facts.liveness.live.get(pt))
            .is_some_and(|s| s.contains(&v))
    };

    // Pass 2: park points. A used temp that survives its use is parked
    // back to M at the following point, unless that point already
    // requires it somewhere (the requirement takes over as the next
    // residency).
    //
    // Branch operands are the exception: moves after the terminator are
    // illegal, so a condition temp that is live across the branch (a
    // loop counter, say) cannot be re-parked. It does not need to be:
    // its scratch slot was written the last time it was parked — a
    // definition of a live temp always parks in place, re-writing the
    // slot — so the value is still in scratch and successors (whose
    // entry residency is M) reload it from there. The register copy the
    // branch read goes stale, which is fine: nothing downstream looks at
    // it. We only have to *check* that a slot write dominates the
    // branch; the one shape with no such write (a definition feeding the
    // branch at the same point, live across it) cannot be expressed.
    let mut parks: HashMap<Temp, BTreeSet<PointId>> = HashMap::new();
    let mut deferred: Vec<(PointId, Temp)> = Vec::new();
    for (&(p, v), &bank) in &use_req {
        let q = PointId(p.0 + 1);
        if !live_at(q, v) || def_req.contains_key(&(q, v)) || use_req.contains_key(&(q, v)) {
            continue;
        }
        if facts.no_moves.contains(&q) {
            deferred.push((p, v));
            continue;
        }
        if move_cost(cfg, bank, IlpBank::M).is_none() {
            return Err(err(format!(
                "temp {v} survives its use in bank {} at {p}, which cannot spill",
                bank.name()
            )));
        }
        parks.entry(v).or_default().insert(q);
    }
    let point_block = |p: PointId| facts.points[p.0 as usize].block;
    for (p, v) in deferred {
        let blk = point_block(p);
        // A definition of a live temp with no adjacent use parks in
        // place, writing the slot.
        let def_parked = |&(&(pd, dv), _): &(&(PointId, Temp), &IlpBank)| {
            dv == v
                && pd < p
                && point_block(pd) == blk
                && live_at(pd, v)
                && !use_req.contains_key(&(pd, v))
        };
        let slot_written = facts
            .liveness
            .live_in
            .get(&blk)
            .is_some_and(|s| s.contains(&v))
            || parks.get(&v).is_some_and(|s| {
                s.range(..p)
                    .next_back()
                    .is_some_and(|q| point_block(*q) == blk)
            })
            || def_req.iter().any(|e| def_parked(&e));
        if !slot_written {
            return Err(err(format!(
                "temp {v} is live across the branch after its use at {p} \
                 but its spill slot is never written"
            )));
        }
    }
    for (v, ps) in &parks {
        actions.entry(*v).or_default().extend(ps.iter().copied());
    }

    // Pass 3: walk each temp's action points in order, threading
    // residency through the block and emitting the implied moves.
    let mut before = HashMap::new();
    let mut after = HashMap::new();
    let mut moves: HashMap<PointId, Vec<(Temp, IlpBank, IlpBank)>> = HashMap::new();
    let mut n_moves = 0usize;
    let mut n_spills = 0usize;
    let mut objective = 0.0f64;

    let mut temps: Vec<Temp> = actions.keys().copied().collect();
    temps.sort();
    for v in temps {
        let pts = &actions[&v];
        let mut cur: Option<IlpBank> = None;
        let mut cur_block = None;
        for &p in pts {
            let blk = point_block(p);
            if cur_block != Some(blk) {
                cur_block = Some(blk);
                // Cross-block residency is always the scratch home.
                cur = facts
                    .liveness
                    .live_in
                    .get(&blk)
                    .is_some_and(|s| s.contains(&v))
                    .then_some(IlpBank::M);
            }
            let b = match def_req.get(&(p, v)) {
                // A definition is a rebirth: any previous residency
                // belongs to the now-dead old value (loop-carried temps
                // are redefined each iteration), so the chain restarts
                // in the writable bank with no connecting move.
                Some(&w) => w,
                None => cur.ok_or_else(|| err(format!("temp {v} has no residency at {p}")))?,
            };
            let a = if let Some(&r) = use_req.get(&(p, v)) {
                r
            } else if parks.get(&v).is_some_and(|s| s.contains(&p))
                || (def_req.contains_key(&(p, v)) && live_at(p, v))
            {
                // Park: survives this point with no adjacent requirement.
                IlpBank::M
            } else {
                // Entry anchor, dying use, or dead definition: stay put.
                b
            };
            if b != a {
                let Some(cost) = move_cost(cfg, b, a) else {
                    return Err(err(format!(
                        "no legal {} -> {} transition for temp {v} at {p}",
                        b.name(),
                        a.name()
                    )));
                };
                objective += freqs.of(blk).max(1e-3) * cost;
                moves.entry(p).or_default().push((v, b, a));
                n_moves += 1;
                if a == IlpBank::M {
                    n_spills += 1;
                }
            }
            before.insert((p, v), b);
            after.insert((p, v), a);
            cur = Some(a);
        }
    }
    for m in moves.values_mut() {
        m.sort();
    }

    let mut fig6 = Fig6::default();
    for fact in &facts.facts {
        match fact {
            Fact::ReadAgg { space, dsts, .. } => match load_bank(*space) {
                IlpBank::L => fig6.def_l += dsts.len(),
                _ => fig6.def_ld += dsts.len(),
            },
            Fact::WriteAgg { space, srcs, .. } => match store_bank(*space) {
                IlpBank::S => fig6.use_s += srcs.len(),
                _ => fig6.use_sd += srcs.len(),
            },
            _ => {}
        }
    }

    let assignment = Assignment {
        before,
        after,
        moves,
        colors,
        n_moves,
        n_spills,
    };
    // A variable-free model shell: extraction only needs the bookkeeping
    // side (action points, block ranges, clone groups).
    let model = Model::minimize();
    let model_stats = model.stats();
    let bm = BankModel {
        model,
        moves: HashMap::new(),
        colors: HashMap::new(),
        actions,
        candidates: prune(facts, true),
        groups: clone_groups(facts),
        block_range,
        fig6,
    };
    let stats = AllocStats {
        model: model_stats,
        solve: SolveStats::default(),
        fig6,
        moves: n_moves,
        spills: n_spills,
        objective,
    };
    Ok((bm, assignment, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{build_facts, extract, verify};
    use crate::color::assign_ab;
    use crate::freq;
    use crate::isel::select;
    use nova_cps::{convert, optimize, to_ssu, OptConfig};
    use nova_frontend::{check, parse};

    fn program(src: &str) -> Program<Temp> {
        let p = parse(src).unwrap_or_else(|d| panic!("parse: {}", d.render(src)));
        let info = check(&p).unwrap_or_else(|d| panic!("check: {}", d.render(src)));
        let mut cps = convert(&p, &info).unwrap();
        optimize(&mut cps, &OptConfig::default());
        to_ssu(&mut cps);
        select(&cps).unwrap()
    }

    /// Greedy output must survive the whole downstream pipeline and the
    /// independent verifier, with every emitted transition legal.
    fn check_greedy(src: &str) {
        let prog = program(src);
        let facts = build_facts(&prog);
        let freqs = freq::estimate(&prog);
        let cfg = AllocConfig::default();
        let (bm, asg, stats) = allocate(&prog, &facts, &freqs, &cfg).expect("greedy allocates");
        for moves in asg.moves.values() {
            for (v, b1, b2) in moves {
                assert!(
                    move_cost(&cfg, *b1, *b2).is_some(),
                    "illegal transition {} -> {} for {v}",
                    b1.name(),
                    b2.name()
                );
            }
        }
        assert_eq!(stats.moves, asg.n_moves);
        let placed = extract(&prog, &facts, &bm, &asg).expect("extraction");
        let (ab, _) = assign_ab(&placed).expect("coloring");
        let violations = verify::verify(&placed, &ab);
        assert!(violations.is_empty(), "verifier: {violations:?}");
    }

    #[test]
    fn greedy_handles_aggregates_and_alu() {
        check_greedy("fun main() { let (x, y) = sram(0); sram(10) <- (x + y); 0 }");
    }

    #[test]
    fn greedy_handles_figure3() {
        check_greedy(
            r#"fun main() {
                let (a, b, c, d) = sram(100);
                let (e, f, g, h, i, j) = sram(200);
                let u = a + c;
                let v = g + h;
                sram(300) <- (b, e, v, u);
                sram(500) <- (f, j, d, i);
                0
            }"#,
        );
    }

    #[test]
    fn greedy_handles_clones_across_stores() {
        check_greedy(
            r#"fun main() {
                let (u, v, x, w) = sram(0);
                sram(100) <- (u, v, x, w);
                sram(200) <- (w, x, u, v);
                sram(300) <- (x);
                0
            }"#,
        );
    }

    #[test]
    fn greedy_handles_loops() {
        check_greedy(
            r#"fun main() {
                let i = 0;
                let acc = 0;
                while (i < 10) { acc = acc + i; i = i + 1; }
                sram(0) <- (acc);
                0
            }"#,
        );
    }
}
