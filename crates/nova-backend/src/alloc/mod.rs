//! The ILP-based register allocator (§5–§10): model data, candidate
//! pruning, model generation, solving, solution extraction, and the
//! staged fallback ladder that makes allocation total.

pub mod candidates;
pub mod extract;
pub mod facts;
pub mod greedy;
pub mod model;
pub mod staged;
pub mod verify;

pub use candidates::{clone_groups, prune, unpruned, Candidates, IlpBank};
pub use extract::{extract, ExtractError, Placed, SPILL_BASE};
pub use facts::{build as build_facts, Fact, Facts, PointId};
pub use model::{
    build_model, move_cost, solve, solve_with, AllocConfig, AllocStats, Assignment, BankModel, Fig6,
};
pub use staged::{AllocQuality, FallbackPolicy, Solved};
pub use verify::verify;

use crate::color::{assign_ab, ColorStats};
use crate::freq;
use ixp_machine::{Instr, PhysReg, Program, Temp};

/// Everything the allocator produces for one program.
pub struct Allocation {
    /// Final machine code (validated).
    pub prog: Program<PhysReg>,
    /// ILP statistics (Figure 6/7 data).
    pub stats: AllocStats,
    /// Coloring statistics.
    pub color_stats: ColorStats,
    /// Which fallback stage produced this allocation and how good it is.
    pub quality: AllocQuality,
}

/// Allocator failure.
#[derive(Debug)]
pub enum AllocError {
    /// The ILP was infeasible or the solver failed.
    Solver(ilp::MilpError),
    /// Solution extraction hit an inconsistency.
    Extract(ExtractError),
    /// A/B coloring failed.
    Color(crate::color::ColorError),
    /// The final code violates machine rules (internal bug).
    Invalid(Vec<ixp_machine::Violation>),
    /// The greedy fallback allocator hit a constraint it cannot satisfy
    /// (only possible on inputs the exact model also rejects).
    Greedy(String),
    /// The allocation verifier found violations (internal bug; debug
    /// builds only).
    Verify(Vec<String>),
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::Solver(e) => write!(f, "ILP solver: {e}"),
            AllocError::Extract(e) => write!(f, "{e}"),
            AllocError::Color(e) => write!(f, "{e}"),
            AllocError::Invalid(vs) => {
                writeln!(f, "generated code violates machine rules:")?;
                for v in vs {
                    writeln!(f, "  {v}")?;
                }
                Ok(())
            }
            AllocError::Greedy(msg) => write!(f, "greedy allocation: {msg}"),
            AllocError::Verify(vs) => {
                writeln!(f, "allocation fails verification:")?;
                for v in vs {
                    writeln!(f, "  {v}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// Run the full allocator on a virtual-register program.
///
/// # Errors
///
/// See [`AllocError`]; `Solver(Infeasible)` on a well-formed program means
/// the configuration cannot allocate it (e.g. spilling disabled under
/// pressure). Under the default [`FallbackPolicy::Ladder`], budget
/// exhaustion is *not* an error: the allocator degrades through
/// relaxations down to the greedy fallback (see [`staged`]).
pub fn allocate(prog: &Program<Temp>, cfg: &AllocConfig) -> Result<Allocation, AllocError> {
    allocate_with(prog, cfg, &nova_obs::Obs::noop())
}

/// [`allocate`] with structured telemetry: fact extraction and frequency
/// estimation run under a `phase.ilp` span (`backend.facts` and
/// `backend.freq` sub-spans); CSR model generation runs under a
/// `phase.ilp.model` span; each solve attempt of the fallback ladder
/// runs under a `phase.ilp.stage` span (with `phase.ilp.presolve` and
/// `phase.ilp.solve` sub-spans from the solver, the solver's own
/// `ilp.*` events, plus `backend.staged.*`
/// counters/samples for attempts, backoff, chosen stage, and gap); the
/// extraction/coloring half of each accepted attempt runs under
/// `phase.codegen` (with `backend.extract` and `backend.color`
/// sub-spans); and the liveness, move, spill, and coalescing outcomes
/// are published as `backend.*` counters.
///
/// # Errors
///
/// See [`AllocError`].
pub fn allocate_with(
    prog: &Program<Temp>,
    cfg: &AllocConfig,
    obs: &nova_obs::Obs,
) -> Result<Allocation, AllocError> {
    allocate_solved_with(prog, cfg, None, obs).map(|(alloc, _)| alloc)
}

/// The reusable solver-side state of a successful allocation: the facts
/// the model was built from plus the accepted rung's [`Solved`] artifacts.
/// A compile session caches this per program *structure* (immediates
/// masked) so a constant-only edit can skip the MILP entirely and just
/// [`refinish_with`] the cached assignment against the edited program,
/// and so the raw solution vector can warm-start the next structurally
/// compatible solve.
pub struct SolvedAllocation {
    /// Liveness/def-use facts of the program the model was built from.
    pub facts: Facts,
    /// The generated bank model.
    pub bm: BankModel,
    /// The decoded assignment.
    pub asg: Assignment,
    /// Model and solver statistics of the accepted rung.
    pub stats: AllocStats,
    /// Stage/gap/spill quality record of the accepted rung.
    pub quality: AllocQuality,
    /// Raw MILP/LP variable values of the accepted solution (`None` for
    /// the greedy rung).
    pub values: Option<Vec<f64>>,
}

/// [`allocate_with`] that also returns the [`SolvedAllocation`] artifacts
/// for session caching, and accepts an optional MILP warm-start `hint`
/// (a raw variable vector from a previous structurally compatible solve;
/// silently ignored if infeasible for this model).
///
/// # Errors
///
/// See [`AllocError`].
pub fn allocate_solved_with(
    prog: &Program<Temp>,
    cfg: &AllocConfig,
    hint: Option<&[f64]>,
    obs: &nova_obs::Obs,
) -> Result<(Allocation, SolvedAllocation), AllocError> {
    let ilp_span = obs.span("phase.ilp");
    let facts = {
        let _span = obs.span("backend.facts");
        build_facts(prog)
    };
    let freqs = {
        let _span = obs.span("backend.freq");
        freq::estimate(prog)
    };
    let mut cfg = cfg.clone();
    let pressure = facts.exists.values().map(|s| s.len()).max().unwrap_or(0);
    obs.counter("backend.liveness.points", facts.exists.len() as u64);
    obs.counter("backend.liveness.max_pressure", pressure as u64);
    if cfg.allow_spill && cfg.spill_auto {
        // If no point can exhaust the general-purpose banks, spilling can
        // never be required (or profitable, at 200x move cost): drop the
        // M machinery and its colorAvail/needsSpill rows.
        if pressure + 4 <= cfg.k_a + cfg.k_b {
            cfg.allow_spill = false;
            obs.counter("backend.spill.machinery_dropped", 1);
        }
    }
    ilp_span.end();
    let (alloc, solved) = staged::run(prog, &facts, &freqs, &cfg, hint, obs)?;
    Ok((
        alloc,
        SolvedAllocation {
            facts,
            bm: solved.bm,
            asg: solved.asg,
            stats: solved.stats,
            quality: solved.quality,
            values: solved.values,
        },
    ))
}

/// Rebuild the deterministic solver-side state for `prog` and finish a
/// previously decoded assignment against it — the disk-cache warm path.
///
/// A persisted allocation entry carries only the *decision* half of a
/// solve (the [`Assignment`], its objective, its quality record, and the
/// raw solution vector); everything else — facts, frequencies, the bank
/// model — is a pure function of the program and configuration, so this
/// recomputes it with exactly the preamble [`allocate_solved_with`] runs
/// (including the automatic spill-machinery drop) and then goes straight
/// to extraction/coloring/validation. The result is bit-identical to the
/// cold allocation that produced the assignment, because none of the
/// recomputed phases depend on the MILP search that was skipped; solver
/// wall-clock statistics are zeroed (they describe a solve that never
/// ran).
///
/// # Errors
///
/// See [`AllocError`]. A stale or mismatched assignment (e.g. a cache
/// key collision) surfaces as `Extract`, `Color`, or `Invalid`; callers
/// should treat that as a cache miss and fall back to a full solve.
pub fn readopt_assignment_with(
    prog: &Program<Temp>,
    cfg: &AllocConfig,
    asg: Assignment,
    quality: AllocQuality,
    objective: f64,
    values: Option<Vec<f64>>,
    obs: &nova_obs::Obs,
) -> Result<(Allocation, SolvedAllocation), AllocError> {
    let ilp_span = obs.span("phase.ilp");
    let facts = {
        let _span = obs.span("backend.facts");
        build_facts(prog)
    };
    let freqs = {
        let _span = obs.span("backend.freq");
        freq::estimate(prog)
    };
    let mut cfg = cfg.clone();
    let pressure = facts.exists.values().map(|s| s.len()).max().unwrap_or(0);
    if cfg.allow_spill && cfg.spill_auto && pressure + 4 <= cfg.k_a + cfg.k_b {
        cfg.allow_spill = false;
    }
    let bm = build_model(prog, &facts, &freqs, &cfg);
    ilp_span.end();
    let stats = AllocStats {
        model: bm.model.stats(),
        solve: ilp::SolveStats::default(),
        fig6: bm.fig6,
        moves: asg.n_moves,
        spills: asg.n_spills,
        objective,
    };
    let alloc = finish(prog, &facts, &bm, &asg, stats.clone(), quality, obs)?;
    Ok((
        alloc,
        SolvedAllocation {
            facts,
            bm,
            asg,
            stats,
            quality,
            values,
        },
    ))
}

/// Re-run only the finishing half of allocation (extraction, coloring,
/// validation) against `prog`, reusing the cached model and assignment
/// from a previous solve of a *structurally identical* program (same
/// blocks, opcodes, and register structure; immediates may differ).
/// This skips fact extraction, frequency estimation, model generation,
/// and the MILP solve — the expensive ~95% of allocation — and is
/// bit-identical to a cold allocation because none of the skipped phases
/// read immediate values.
///
/// # Errors
///
/// See [`AllocError`]. A structural mismatch surfaces as `Extract`,
/// `Color`, or `Invalid`; callers should fall back to a full
/// [`allocate_solved_with`].
pub fn refinish_with(
    prog: &Program<Temp>,
    solved: &SolvedAllocation,
    obs: &nova_obs::Obs,
) -> Result<Allocation, AllocError> {
    finish(
        prog,
        &solved.facts,
        &solved.bm,
        &solved.asg,
        solved.stats.clone(),
        solved.quality,
        obs,
    )
}

/// Turn a solved assignment into validated machine code: extraction,
/// A/B coloring, (in debug builds) verification, register substitution,
/// and the machine-rule check. Shared by every rung of the fallback
/// ladder so degraded solutions face exactly the gates exact ones do.
pub(crate) fn finish(
    prog: &Program<Temp>,
    facts: &Facts,
    bm: &BankModel,
    assignment: &Assignment,
    stats: AllocStats,
    quality: AllocQuality,
    obs: &nova_obs::Obs,
) -> Result<Allocation, AllocError> {
    let codegen_span = obs.span("phase.codegen");
    let placed = {
        let _span = obs.span("backend.extract");
        extract(prog, facts, bm, assignment).map_err(AllocError::Extract)?
    };
    let (ab, color_stats) = {
        let _span = obs.span("backend.color");
        assign_ab(&placed).map_err(AllocError::Color)?
    };
    if cfg!(debug_assertions) {
        let violations = verify(&placed, &ab);
        if !violations.is_empty() {
            return Err(AllocError::Verify(violations));
        }
    }
    let final_prog = apply_registers(&placed, &ab)?;
    let violations = ixp_machine::validate(&final_prog);
    if !violations.is_empty() {
        return Err(AllocError::Invalid(violations));
    }
    codegen_span.end();
    if placed.spill_stride > 0 {
        let distinct: std::collections::HashSet<u32> =
            placed.spill_slots.values().copied().collect();
        obs.counter("backend.extract.spill_slots", distinct.len() as u64);
        obs.counter(
            "backend.extract.spill_stride",
            u64::from(placed.spill_stride),
        );
    }
    obs.counter("backend.moves", stats.moves as u64);
    obs.counter("backend.spills", stats.spills as u64);
    obs.counter("backend.color.coalesced", color_stats.coalesced as u64);
    Ok(Allocation {
        prog: final_prog,
        stats,
        color_stats,
        quality,
    })
}

/// Substitute physical registers for segment temporaries and drop
/// self-moves (successful coalesces).
fn apply_registers(
    placed: &Placed,
    ab: &std::collections::HashMap<Temp, PhysReg>,
) -> Result<Program<PhysReg>, AllocError> {
    let lookup = |t: Temp| -> Result<PhysReg, AllocError> {
        if let Some(r) = placed.fixed.get(&t) {
            return Ok(*r);
        }
        if let Some(r) = ab.get(&t) {
            return Ok(*r);
        }
        Err(AllocError::Extract(ExtractError(format!(
            "segment {t} was never assigned a register"
        ))))
    };
    let mut blocks = Vec::new();
    for b in &placed.prog.blocks {
        let mut instrs = Vec::new();
        for ins in &b.instrs {
            // Map and drop coalesced moves.
            let mut err = None;
            let mapped = ins.clone().map(&mut |t: Temp| match lookup(t) {
                Ok(r) => r,
                Err(e) => {
                    err = Some(e);
                    PhysReg::new(ixp_machine::Bank::A, 0)
                }
            });
            if let Some(e) = err {
                return Err(e);
            }
            if let Instr::Move { dst, src } = &mapped {
                if dst == src {
                    continue; // coalesced
                }
            }
            instrs.push(mapped);
        }
        let mut err = None;
        let term = b.term.clone().map(&mut |t: Temp| match lookup(t) {
            Ok(r) => r,
            Err(e) => {
                err = Some(e);
                PhysReg::new(ixp_machine::Bank::A, 0)
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        blocks.push(ixp_machine::Block { instrs, term });
    }
    Ok(Program {
        blocks,
        entry: placed.prog.entry,
    })
}
