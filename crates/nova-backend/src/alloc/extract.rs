//! Solution extraction: rewrite the flowgraph according to the ILP's bank
//! assignment.
//!
//! Each original temporary is split into *segment temporaries*, one per
//! bank it inhabits (`v@A`, `v@L`, ...). Instructions are rewritten to use
//! the segment dictated by the solution at their program point; the ILP's
//! inter-bank moves become `Move` instructions (or scratch stores/loads
//! for the spill bank `M`); `clone` pseudo-instructions disappear —
//! transfer-bank clones were forced to equal colors by the model, and A/B
//! clones are recorded as mandatory coalesces for the coloring phase.
//!
//! Transfer-bank segments carry their final [`PhysReg`] immediately (the
//! ILP chose the colors); A/B segments are colored afterwards
//! ([`crate::color`]). Spill transients get a free S or L register
//! computed from the solution's occupancy — the model's
//! `needsSpill`/`colorAvail` constraints guarantee one exists.

use super::candidates::IlpBank;
use super::facts::{Facts, PointId};
use super::model::{Assignment, BankModel};
use crate::liveness::Point;
use ixp_machine::{
    Addr, AluOp, AluSrc, Bank, Block, BlockId, Instr, MemSpace, PhysReg, Program, Temp, Terminator,
    CSR_CTX,
};
use std::collections::{BTreeSet, HashMap, HashSet};

/// The rewritten (segmented) program plus the data the coloring and
/// emission phases need.
#[derive(Debug)]
pub struct Placed {
    /// Program over segment temporaries.
    pub prog: Program<Temp>,
    /// Bank of every segment temporary.
    pub seg_bank: HashMap<Temp, Bank>,
    /// Segments with a register already fixed (transfer banks, spill
    /// transients).
    pub fixed: HashMap<Temp, PhysReg>,
    /// Pairs of A/B segments that must share a register (clone sets).
    pub ab_aliases: Vec<(Temp, Temp)>,
    /// Pairs of transfer-bank segments that legitimately share their
    /// fixed register (transfer-bank clone sets; the model forced their
    /// colors equal). Recorded so the allocation verifier can tell
    /// same-value sharing from clobbering.
    pub xfer_aliases: Vec<(Temp, Temp)>,
    /// Per-temporary spill-slot word offsets within one context's spill
    /// region. The runtime scratch address is `offset + ctx * stride`
    /// where `ctx` is the chip-global context number the entry prologue
    /// reads from [`ixp_machine::CSR_CTX`]; context 0 therefore sees the
    /// historical absolute addresses.
    pub spill_slots: HashMap<Temp, u32>,
    /// Words of scratch each context's spill region occupies (0 when the
    /// program spills nothing). A deployment of `n` contexts needs
    /// `SPILL_BASE + n * stride` words of scratch.
    pub spill_stride: u32,
}

/// Extraction failure: the solution is inconsistent with the program (a
/// solver or model bug).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractError(pub String);

impl std::fmt::Display for ExtractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "solution extraction: {}", self.0)
    }
}

impl std::error::Error for ExtractError {}

struct Extract<'a> {
    facts: &'a Facts,
    bm: &'a BankModel,
    asg: &'a Assignment,
    seg: HashMap<(Temp, IlpBank), Temp>,
    seg_bank: HashMap<Temp, Bank>,
    fixed: HashMap<Temp, PhysReg>,
    ab_aliases: Vec<(Temp, Temp)>,
    xfer_aliases: Vec<(Temp, Temp)>,
    spill_slots: HashMap<Temp, u32>,
    next_temp: u32,
    /// Segment holding `ctx * stride`, the per-context spill-region base
    /// (A bank, colored like any other segment). `None` when nothing
    /// spills.
    spill_base_seg: Option<Temp>,
}

/// First scratch word of context 0's spill region. Each further context's
/// region follows at a fixed stride (see [`Placed::spill_stride`]).
/// Programs should keep their own scratch data below this address.
pub const SPILL_BASE: u32 = 0x380;

/// Assign spill-slot offsets with live-range reuse: two spilled
/// temporaries share a slot when their live ranges (over the linear
/// [`PointId`] order, which per-point liveness makes path-sound) never
/// overlap. Keeping the per-context region small is what lets many
/// contexts fit their disjoint regions in scratch.
fn assign_slots(facts: &Facts, asg: &Assignment) -> HashMap<Temp, u32> {
    let mut spilled: BTreeSet<Temp> = BTreeSet::new();
    for moves in asg.moves.values() {
        for &(v, b1, b2) in moves {
            if (b1 == IlpBank::M) != (b2 == IlpBank::M) {
                spilled.insert(v);
            }
        }
    }
    if spilled.is_empty() {
        return HashMap::new();
    }
    // Live interval of each spilled temp over the linear point order.
    let mut range: HashMap<Temp, (u32, u32)> = HashMap::new();
    let mut touch = |v: Temp, p: u32| {
        let e = range.entry(v).or_insert((p, p));
        e.0 = e.0.min(p);
        e.1 = e.1.max(p);
    };
    for (i, pt) in facts.points.iter().enumerate() {
        if let Some(live) = facts.liveness.live.get(pt) {
            for v in live {
                if spilled.contains(v) {
                    touch(*v, i as u32);
                }
            }
        }
    }
    for (p, moves) in &asg.moves {
        for &(v, _, _) in moves {
            if spilled.contains(&v) {
                touch(v, p.0);
            }
        }
    }
    // Linear scan: smallest free slot, deterministic order.
    let mut intervals: Vec<(u32, u32, Temp)> = spilled
        .iter()
        .map(|v| {
            let (s, e) = range[v];
            (s, e, *v)
        })
        .collect();
    intervals.sort_by_key(|&(s, e, v)| (s, e, v));
    let mut slots: HashMap<Temp, u32> = HashMap::new();
    let mut free: BTreeSet<u32> = BTreeSet::new();
    let mut active: Vec<(u32, u32)> = Vec::new(); // (end, slot)
    let mut next = 0u32;
    for (start, end, v) in intervals {
        active.retain(|&(e, s)| {
            if e < start {
                free.insert(s);
                false
            } else {
                true
            }
        });
        let slot = match free.iter().next().copied() {
            Some(s) => {
                free.remove(&s);
                s
            }
            None => {
                next += 1;
                next - 1
            }
        };
        slots.insert(v, slot);
        active.push((end, slot));
    }
    slots
}

/// Round a region size up to the nearest value with at most two set bits,
/// so the entry prologue can scale the context number with two shifts and
/// an add. Returns `(stride, high_shift, low_shift)`.
fn stride_shifts(n_slots: u32) -> (u32, u32, Option<u32>) {
    let mut m = n_slots.max(1);
    while m.count_ones() > 2 {
        m += 1;
    }
    let hi = 31 - m.leading_zeros();
    let lo = m.trailing_zeros();
    (m, hi, (hi != lo).then_some(lo))
}

/// Rewrite the program according to the solved assignment.
///
/// # Errors
///
/// Returns [`ExtractError`] if the solution violates an invariant.
pub fn extract(
    prog: &Program<Temp>,
    facts: &Facts,
    bm: &BankModel,
    asg: &Assignment,
) -> Result<Placed, ExtractError> {
    let next_temp = 1 + prog
        .blocks
        .iter()
        .flat_map(|b| {
            b.instrs
                .iter()
                .flat_map(|i| {
                    i.uses()
                        .into_iter()
                        .chain(i.defs())
                        .map(|t| t.0)
                        .collect::<Vec<_>>()
                })
                .chain(b.term.uses().into_iter().map(|t| t.0))
        })
        .max()
        .unwrap_or(0);
    let slots = assign_slots(facts, asg);
    let n_slots = slots.values().max().map_or(0, |m| m + 1);
    let mut cx = Extract {
        facts,
        bm,
        asg,
        seg: HashMap::new(),
        seg_bank: HashMap::new(),
        fixed: HashMap::new(),
        ab_aliases: Vec::new(),
        xfer_aliases: Vec::new(),
        spill_slots: slots
            .into_iter()
            .map(|(v, s)| (v, SPILL_BASE + s))
            .collect(),
        next_temp,
        spill_base_seg: None,
    };
    // Spill addresses are context-relative: an entry prologue computes
    // `ctx * stride` into a dedicated A segment (colored with everything
    // else), and every slot access indexes off it. Context 0's region
    // starts at SPILL_BASE; further contexts follow at `stride`, so the
    // one program image is reentrant across hardware contexts.
    let mut stride = 0;
    let mut prologue: Vec<Instr<Temp>> = Vec::new();
    if n_slots > 0 {
        let (m, hi, lo) = stride_shifts(n_slots);
        stride = m;
        let base = cx.fresh();
        cx.seg_bank.insert(base, Bank::A);
        cx.spill_base_seg = Some(base);
        prologue.push(Instr::CsrRead {
            dst: base,
            csr: CSR_CTX,
        });
        if let Some(lo) = lo {
            // stride = 2^hi + 2^lo: scale through a B-bank helper.
            let aux = cx.fresh();
            cx.seg_bank.insert(aux, Bank::B);
            prologue.push(Instr::Alu {
                op: AluOp::Shl,
                dst: aux,
                a: base,
                b: AluSrc::Imm(lo),
            });
            prologue.push(Instr::Alu {
                op: AluOp::Shl,
                dst: base,
                a: base,
                b: AluSrc::Imm(hi),
            });
            prologue.push(Instr::Alu {
                op: AluOp::Add,
                dst: base,
                a: base,
                b: AluSrc::Reg(aux),
            });
        } else if hi > 0 {
            prologue.push(Instr::Alu {
                op: AluOp::Shl,
                dst: base,
                a: base,
                b: AluSrc::Imm(hi),
            });
        }
    }
    let mut blocks = Vec::new();
    for (bi, b) in prog.blocks.iter().enumerate() {
        blocks.push(cx.rewrite_block(bi as u32, b)?);
    }
    if !prologue.is_empty() {
        let entry = &mut blocks[prog.entry.index()].instrs;
        entry.splice(0..0, prologue);
    }
    // Clone-group members carry one value, and the solver may hand their
    // segments one register within a bank (that sharing is the point of
    // cloning), so the verifier needs the whole group in one same-value
    // class — chain the members' segments per bank.
    let mut done: HashSet<Temp> = HashSet::new();
    for (rep, group) in &bm.groups {
        if !done.insert(group.first().copied().unwrap_or(*rep)) {
            continue;
        }
        for b in IlpBank::ALL {
            let segs: Vec<Temp> = group
                .iter()
                .filter_map(|m| cx.seg.get(&(*m, b)).copied())
                .collect();
            for w in segs.windows(2) {
                cx.xfer_aliases.push((w[0], w[1]));
            }
        }
    }
    Ok(Placed {
        prog: Program {
            blocks,
            entry: prog.entry,
        },
        seg_bank: cx.seg_bank,
        fixed: cx.fixed,
        ab_aliases: cx.ab_aliases,
        xfer_aliases: cx.xfer_aliases,
        spill_slots: cx.spill_slots,
        spill_stride: stride,
    })
}

impl<'a> Extract<'a> {
    fn fresh(&mut self) -> Temp {
        self.next_temp += 1;
        Temp(self.next_temp - 1)
    }

    fn phys_bank(b: IlpBank) -> Option<Bank> {
        Some(match b {
            IlpBank::A => Bank::A,
            IlpBank::B => Bank::B,
            IlpBank::L => Bank::L,
            IlpBank::S => Bank::S,
            IlpBank::Ld => Bank::Ld,
            IlpBank::Sd => Bank::Sd,
            IlpBank::M => return None,
        })
    }

    /// The segment temporary for `v` in bank `b` (created on first use;
    /// transfer segments get their fixed register from the colors).
    fn segment(&mut self, v: Temp, b: IlpBank) -> Result<Temp, ExtractError> {
        if let Some(s) = self.seg.get(&(v, b)) {
            return Ok(*s);
        }
        let s = self.fresh();
        self.seg.insert((v, b), s);
        if let Some(pb) = Self::phys_bank(b) {
            self.seg_bank.insert(s, pb);
            if b.is_transfer() {
                let color =
                    self.asg.colors.get(&(v, b)).ok_or_else(|| {
                        ExtractError(format!("temp {v} has no color for bank {b}"))
                    })?;
                self.fixed.insert(s, PhysReg::new(pb, *color));
            }
        }
        Ok(s)
    }

    fn point(&self, block: u32, index: u32) -> PointId {
        self.facts.point_id[&Point {
            block: BlockId(block),
            index,
        }]
    }

    /// Residency of `v` at point `p` *after* the moves there (bank of the
    /// latest action point at or before `p` in the same block).
    fn residency(&self, p: PointId, v: Temp) -> Option<IlpBank> {
        let pts = self.bm.actions.get(&v)?;
        let block = self.facts.points[p.0 as usize].block;
        let (lo, _) = self.bm.block_range[block.index()];
        let g = pts.range(lo..=p).next_back().copied()?;
        self.asg.after.get(&(g, v)).copied()
    }

    /// A transfer-bank register of `bank` that is free at point `p` for a
    /// spill transient. Freeness depends on *when* in the move window the
    /// transient lives:
    ///
    /// * spill-store transients (`late = false`) run in phase 0, before
    ///   any drain or arrival — every resident-before value still holds
    ///   its register, and no arrival has landed yet;
    /// * reload transients (`late = true`) run in phase 3, after the
    ///   drains — a resident departing `bank` via a move at `p` has freed
    ///   its register, while values arriving *into* `bank` at `p` share
    ///   the reload phase and hold theirs.
    fn free_reg(&self, p: PointId, bank: IlpBank, late: bool) -> Result<u8, ExtractError> {
        let moves = self.asg.moves.get(&p);
        let departs = |v: Temp| {
            late && moves.is_some_and(|ms| ms.iter().any(|&(w, b1, _)| w == v && b1 == bank))
        };
        let mut used: BTreeSet<u8> = BTreeSet::new();
        let mut holders: Vec<(Temp, u8, &str)> = Vec::new();
        for v in self.facts.exists_at(p) {
            if self.residency_before(p, *v) == Some(bank) && !departs(*v) {
                if let Some(c) = self.asg.colors.get(&(*v, bank)) {
                    used.insert(*c);
                    holders.push((*v, *c, "resident"));
                }
            }
        }
        if late {
            for (v, _, b2) in moves.map_or(&[][..], Vec::as_slice) {
                if *b2 == bank {
                    if let Some(c) = self.asg.colors.get(&(*v, bank)) {
                        used.insert(*c);
                        holders.push((*v, *c, "arriving"));
                    }
                }
            }
        }
        (0..8u8).find(|r| !used.contains(r)).ok_or_else(|| {
            holders.sort();
            let held: Vec<String> = holders
                .iter()
                .map(|(v, c, how)| format!("{v}={c}({how})"))
                .collect();
            ExtractError(format!(
                "no free {bank} register at {p} for spill (held: {})",
                held.join(", ")
            ))
        })
    }

    /// Residency before the moves at `p`.
    fn residency_before(&self, p: PointId, v: Temp) -> Option<IlpBank> {
        if let Some(b) = self.asg.before.get(&(p, v)) {
            return Some(*b);
        }
        // Not an action point of v: residency since its last action.
        self.residency(p, v)
    }

    fn rewrite_block(&mut self, bi: u32, b: &Block<Temp>) -> Result<Block<Temp>, ExtractError> {
        let mut out: Vec<Instr<Temp>> = Vec::new();
        let n = b.instrs.len() as u32;
        for idx in 0..=n {
            let p = self.point(bi, idx);
            self.emit_moves_at(p, &mut out)?;
            if idx < n {
                self.rewrite_instr(
                    &b.instrs[idx as usize],
                    p,
                    self.point(bi, idx + 1),
                    &mut out,
                )?;
            }
        }
        // Terminator operands read at point n (after its moves).
        let p_term = self.point(bi, n);
        let term = match &b.term {
            Terminator::Halt => Terminator::Halt,
            Terminator::Jump(t) => Terminator::Jump(*t),
            Terminator::Branch {
                cond,
                a,
                b: bsrc,
                if_true,
                if_false,
            } => {
                let ra = self.use_reg(*a, p_term)?;
                let rb = match bsrc {
                    AluSrc::Imm(v) => AluSrc::Imm(*v),
                    AluSrc::Reg(r) => AluSrc::Reg(self.use_reg(*r, p_term)?),
                };
                Terminator::Branch {
                    cond: *cond,
                    a: ra,
                    b: rb,
                    if_true: *if_true,
                    if_false: *if_false,
                }
            }
        };
        Ok(Block { instrs: out, term })
    }

    /// Segment for an operand read at point `p` (post-move residency).
    fn use_reg(&mut self, v: Temp, p: PointId) -> Result<Temp, ExtractError> {
        let bank = self
            .asg
            .after
            .get(&(p, v))
            .copied()
            .or_else(|| self.residency(p, v))
            .ok_or_else(|| ExtractError(format!("no residency for {v} at {p}")))?;
        if bank == IlpBank::M {
            return Err(ExtractError(format!("{v} used while spilled at {p}")));
        }
        self.segment(v, bank)
    }

    /// Segment for a result defined at point `p` (pre-move residency).
    fn def_reg(&mut self, v: Temp, p: PointId) -> Result<Temp, ExtractError> {
        let bank = self
            .asg
            .before
            .get(&(p, v))
            .copied()
            .ok_or_else(|| ExtractError(format!("no definition bank for {v} at {p}")))?;
        if bank == IlpBank::M {
            return Err(ExtractError(format!("{v} defined into spill bank at {p}")));
        }
        self.segment(v, bank)
    }

    /// Context-relative address of `v`'s spill slot: the per-context base
    /// register plus the slot's offset within the region.
    fn spill_addr(&self, v: Temp) -> Result<Addr<Temp>, ExtractError> {
        let off = *self
            .spill_slots
            .get(&v)
            .ok_or_else(|| ExtractError(format!("no spill slot assigned for {v}")))?;
        let base = self
            .spill_base_seg
            .ok_or_else(|| ExtractError(format!("spill of {v} but no spill prologue")))?;
        Ok(Addr::Reg(base, off))
    }

    fn emit_moves_at(
        &mut self,
        p: PointId,
        out: &mut Vec<Instr<Temp>>,
    ) -> Result<(), ExtractError> {
        let Some(moves) = self.asg.moves.get(&p).cloned() else {
            return Ok(());
        };
        // Order matters within a point: first drain values out of the
        // transfer banks (spill stores, moves out of L/LD), then ordinary
        // moves, then reloads — so arriving values never clobber departing
        // ones that share a register.
        let phase = |b1: IlpBank, b2: IlpBank| -> u8 {
            if b2 == IlpBank::M {
                0 // spill stores leave first
            } else if b1.is_transfer() {
                1 // drains of transfer banks
            } else if b1 == IlpBank::M {
                3 // reloads arrive last
            } else {
                2
            }
        };
        let mut ordered = moves;
        ordered.sort_by_key(|(v, b1, b2)| (phase(*b1, *b2), v.0));
        // One transient register per bank serves the whole point: each
        // transient lives only across its adjacent (move, memop) pair and
        // the pairs are emitted sequentially, so reuse never overlaps. A
        // wide store reloading eight sources thus costs one L register,
        // not the whole bank.
        let mut transient_s: Option<u8> = None;
        let mut transient_l: Option<u8> = None;
        for (v, b1, b2) in ordered {
            match (b1, b2) {
                (IlpBank::M, IlpBank::M) => {}
                (src, IlpBank::M) => {
                    // Spill store: through an S register unless already in S.
                    let addr = self.spill_addr(v)?;
                    if src == IlpBank::S {
                        let s = self.segment(v, IlpBank::S)?;
                        out.push(Instr::MemWrite {
                            space: MemSpace::Scratch,
                            addr,
                            src: vec![s],
                        });
                    } else {
                        let r = match transient_s {
                            Some(r) => r,
                            None => *transient_s.insert(self.free_reg(p, IlpBank::S, false)?),
                        };
                        let tr = self.fresh();
                        self.seg_bank.insert(tr, Bank::S);
                        self.fixed.insert(tr, PhysReg::new(Bank::S, r));
                        let from = self.segment(v, src)?;
                        out.push(Instr::Move { dst: tr, src: from });
                        out.push(Instr::MemWrite {
                            space: MemSpace::Scratch,
                            addr,
                            src: vec![tr],
                        });
                    }
                }
                (IlpBank::M, dst) => {
                    // Reload: lands in L, then moves on if needed.
                    let addr = self.spill_addr(v)?;
                    if dst == IlpBank::L {
                        let l = self.segment(v, IlpBank::L)?;
                        out.push(Instr::MemRead {
                            space: MemSpace::Scratch,
                            addr,
                            dst: vec![l],
                        });
                    } else {
                        let r = match transient_l {
                            Some(r) => r,
                            None => *transient_l.insert(self.free_reg(p, IlpBank::L, true)?),
                        };
                        let tr = self.fresh();
                        self.seg_bank.insert(tr, Bank::L);
                        self.fixed.insert(tr, PhysReg::new(Bank::L, r));
                        out.push(Instr::MemRead {
                            space: MemSpace::Scratch,
                            addr,
                            dst: vec![tr],
                        });
                        let to = self.segment(v, dst)?;
                        out.push(Instr::Move { dst: to, src: tr });
                    }
                }
                (src, dst) => {
                    let from = self.segment(v, src)?;
                    let to = self.segment(v, dst)?;
                    out.push(Instr::Move { dst: to, src: from });
                }
            }
        }
        Ok(())
    }

    fn rewrite_instr(
        &mut self,
        ins: &Instr<Temp>,
        pre: PointId,
        post: PointId,
        out: &mut Vec<Instr<Temp>>,
    ) -> Result<(), ExtractError> {
        match ins {
            Instr::Alu { op, dst, a, b } => {
                let a = self.use_reg(*a, pre)?;
                let b = match b {
                    AluSrc::Reg(r) => AluSrc::Reg(self.use_reg(*r, pre)?),
                    AluSrc::Imm(v) => AluSrc::Imm(*v),
                };
                let dst = self.def_reg(*dst, post)?;
                out.push(Instr::Alu { op: *op, dst, a, b });
            }
            Instr::Imm { dst, val } => {
                let dst = self.def_reg(*dst, post)?;
                out.push(Instr::Imm { dst, val: *val });
            }
            Instr::Move { dst, src } => {
                let src = self.use_reg(*src, pre)?;
                let dst = self.def_reg(*dst, post)?;
                out.push(Instr::Move { dst, src });
            }
            Instr::Clone { dst, src } => {
                // Destination and source share a register at this point,
                // so the clone is emitted as a self-move-to-be: coloring
                // must (and does) assign both segments one register, and
                // `apply_registers` drops the then-trivial move. Keeping
                // it in the segmented program gives the clone destination
                // a definition, so liveness sees its true range instead
                // of a phantom one reaching back to block entry.
                let sb = self
                    .asg
                    .after
                    .get(&(pre, *src))
                    .copied()
                    .or_else(|| self.residency(pre, *src))
                    .ok_or_else(|| ExtractError(format!("clone source {src} unplaced")))?;
                let db = self
                    .asg
                    .before
                    .get(&(post, *dst))
                    .copied()
                    .ok_or_else(|| ExtractError(format!("clone dest {dst} unplaced")))?;
                if sb != db {
                    return Err(ExtractError(format!(
                        "clone {dst} starts in {db} but source {src} is in {sb}"
                    )));
                }
                let s_seg = self.segment(*src, sb)?;
                let d_seg = self.segment(*dst, db)?;
                match db {
                    IlpBank::A | IlpBank::B => {
                        self.ab_aliases.push((d_seg, s_seg));
                    }
                    xb if xb.is_transfer() => {
                        let cs = self.asg.colors.get(&(*src, xb));
                        let cd = self.asg.colors.get(&(*dst, xb));
                        if cs != cd {
                            return Err(ExtractError(format!(
                                "clone {dst}/{src} colors differ in {xb}: {cd:?} vs {cs:?}"
                            )));
                        }
                        self.xfer_aliases.push((d_seg, s_seg));
                    }
                    _ => {
                        return Err(ExtractError("clone in spill bank".into()));
                    }
                }
                out.push(Instr::Move {
                    dst: d_seg,
                    src: s_seg,
                });
            }
            Instr::MemRead { space, addr, dst } => {
                let addr = self.rewrite_addr(addr, pre)?;
                let dst = dst
                    .iter()
                    .map(|d| self.def_reg(*d, post))
                    .collect::<Result<Vec<_>, _>>()?;
                out.push(Instr::MemRead {
                    space: *space,
                    addr,
                    dst,
                });
            }
            Instr::MemWrite { space, addr, src } => {
                let addr = self.rewrite_addr(addr, pre)?;
                let src = src
                    .iter()
                    .map(|s| self.use_reg(*s, pre))
                    .collect::<Result<Vec<_>, _>>()?;
                out.push(Instr::MemWrite {
                    space: *space,
                    addr,
                    src,
                });
            }
            Instr::Hash { dst, src } => {
                let src = self.use_reg(*src, pre)?;
                let dst = self.def_reg(*dst, post)?;
                out.push(Instr::Hash { dst, src });
            }
            Instr::TestAndSet { dst, src, addr } => {
                let addr = self.rewrite_addr(addr, pre)?;
                let src = self.use_reg(*src, pre)?;
                let dst = self.def_reg(*dst, post)?;
                out.push(Instr::TestAndSet { dst, src, addr });
            }
            Instr::CsrRead { dst, csr } => {
                let dst = self.def_reg(*dst, post)?;
                out.push(Instr::CsrRead { dst, csr: *csr });
            }
            Instr::CsrWrite { src, csr } => {
                let src = self.use_reg(*src, pre)?;
                out.push(Instr::CsrWrite { src, csr: *csr });
            }
            Instr::RxPacket { len_dst, addr_dst } => {
                let len_dst = self.def_reg(*len_dst, post)?;
                let addr_dst = self.def_reg(*addr_dst, post)?;
                out.push(Instr::RxPacket { len_dst, addr_dst });
            }
            Instr::TxPacket { addr, len } => {
                let addr = self.use_reg(*addr, pre)?;
                let len = self.use_reg(*len, pre)?;
                out.push(Instr::TxPacket { addr, len });
            }
            Instr::CtxSwap => out.push(Instr::CtxSwap),
        }
        Ok(())
    }

    fn rewrite_addr(
        &mut self,
        addr: &Addr<Temp>,
        pre: PointId,
    ) -> Result<Addr<Temp>, ExtractError> {
        Ok(match addr {
            Addr::Imm(a) => Addr::Imm(*a),
            Addr::Reg(r, o) => Addr::Reg(self.use_reg(*r, pre)?, *o),
        })
    }
}
