//! Solution extraction: rewrite the flowgraph according to the ILP's bank
//! assignment.
//!
//! Each original temporary is split into *segment temporaries*, one per
//! bank it inhabits (`v@A`, `v@L`, ...). Instructions are rewritten to use
//! the segment dictated by the solution at their program point; the ILP's
//! inter-bank moves become `Move` instructions (or scratch stores/loads
//! for the spill bank `M`); `clone` pseudo-instructions disappear —
//! transfer-bank clones were forced to equal colors by the model, and A/B
//! clones are recorded as mandatory coalesces for the coloring phase.
//!
//! Transfer-bank segments carry their final [`PhysReg`] immediately (the
//! ILP chose the colors); A/B segments are colored afterwards
//! ([`crate::color`]). Spill transients get a free S or L register
//! computed from the solution's occupancy — the model's
//! `needsSpill`/`colorAvail` constraints guarantee one exists.

use super::candidates::IlpBank;
use super::facts::{Facts, PointId};
use super::model::{Assignment, BankModel};
use crate::liveness::Point;
use ixp_machine::{
    Addr, AluSrc, Bank, Block, BlockId, Instr, MemSpace, PhysReg, Program, Temp, Terminator,
};
use std::collections::{BTreeSet, HashMap};

/// The rewritten (segmented) program plus the data the coloring and
/// emission phases need.
#[derive(Debug)]
pub struct Placed {
    /// Program over segment temporaries.
    pub prog: Program<Temp>,
    /// Bank of every segment temporary.
    pub seg_bank: HashMap<Temp, Bank>,
    /// Segments with a register already fixed (transfer banks, spill
    /// transients).
    pub fixed: HashMap<Temp, PhysReg>,
    /// Pairs of A/B segments that must share a register (clone sets).
    pub ab_aliases: Vec<(Temp, Temp)>,
    /// Scratch word addresses of spill slots, per original temporary.
    pub spill_slots: HashMap<Temp, u32>,
}

/// Extraction failure: the solution is inconsistent with the program (a
/// solver or model bug).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractError(pub String);

impl std::fmt::Display for ExtractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "solution extraction: {}", self.0)
    }
}

impl std::error::Error for ExtractError {}

struct Extract<'a> {
    facts: &'a Facts,
    bm: &'a BankModel,
    asg: &'a Assignment,
    seg: HashMap<(Temp, IlpBank), Temp>,
    seg_bank: HashMap<Temp, Bank>,
    fixed: HashMap<Temp, PhysReg>,
    ab_aliases: Vec<(Temp, Temp)>,
    spill_slots: HashMap<Temp, u32>,
    next_temp: u32,
    spill_base: u32,
}

/// First scratch word used for spill slots (above this, slots grow by 1
/// word per spilled temporary). Programs should keep their own scratch
/// data below this address.
pub const SPILL_BASE: u32 = 0x380;

/// Rewrite the program according to the solved assignment.
///
/// # Errors
///
/// Returns [`ExtractError`] if the solution violates an invariant.
pub fn extract(
    prog: &Program<Temp>,
    facts: &Facts,
    bm: &BankModel,
    asg: &Assignment,
) -> Result<Placed, ExtractError> {
    let next_temp = 1 + prog
        .blocks
        .iter()
        .flat_map(|b| {
            b.instrs
                .iter()
                .flat_map(|i| {
                    i.uses()
                        .into_iter()
                        .chain(i.defs())
                        .map(|t| t.0)
                        .collect::<Vec<_>>()
                })
                .chain(b.term.uses().into_iter().map(|t| t.0))
        })
        .max()
        .unwrap_or(0);
    let mut cx = Extract {
        facts,
        bm,
        asg,
        seg: HashMap::new(),
        seg_bank: HashMap::new(),
        fixed: HashMap::new(),
        ab_aliases: Vec::new(),
        spill_slots: HashMap::new(),
        next_temp,
        spill_base: SPILL_BASE,
    };
    let mut blocks = Vec::new();
    for (bi, b) in prog.blocks.iter().enumerate() {
        blocks.push(cx.rewrite_block(bi as u32, b)?);
    }
    Ok(Placed {
        prog: Program {
            blocks,
            entry: prog.entry,
        },
        seg_bank: cx.seg_bank,
        fixed: cx.fixed,
        ab_aliases: cx.ab_aliases,
        spill_slots: cx.spill_slots,
    })
}

impl<'a> Extract<'a> {
    fn fresh(&mut self) -> Temp {
        self.next_temp += 1;
        Temp(self.next_temp - 1)
    }

    fn phys_bank(b: IlpBank) -> Option<Bank> {
        Some(match b {
            IlpBank::A => Bank::A,
            IlpBank::B => Bank::B,
            IlpBank::L => Bank::L,
            IlpBank::S => Bank::S,
            IlpBank::Ld => Bank::Ld,
            IlpBank::Sd => Bank::Sd,
            IlpBank::M => return None,
        })
    }

    /// The segment temporary for `v` in bank `b` (created on first use;
    /// transfer segments get their fixed register from the colors).
    fn segment(&mut self, v: Temp, b: IlpBank) -> Result<Temp, ExtractError> {
        if let Some(s) = self.seg.get(&(v, b)) {
            return Ok(*s);
        }
        let s = self.fresh();
        self.seg.insert((v, b), s);
        if let Some(pb) = Self::phys_bank(b) {
            self.seg_bank.insert(s, pb);
            if b.is_transfer() {
                let color =
                    self.asg.colors.get(&(v, b)).ok_or_else(|| {
                        ExtractError(format!("temp {v} has no color for bank {b}"))
                    })?;
                self.fixed.insert(s, PhysReg::new(pb, *color));
            }
        }
        Ok(s)
    }

    fn point(&self, block: u32, index: u32) -> PointId {
        self.facts.point_id[&Point {
            block: BlockId(block),
            index,
        }]
    }

    /// Residency of `v` at point `p` *after* the moves there (bank of the
    /// latest action point at or before `p` in the same block).
    fn residency(&self, p: PointId, v: Temp) -> Option<IlpBank> {
        let pts = self.bm.actions.get(&v)?;
        let block = self.facts.points[p.0 as usize].block;
        let (lo, _) = self.bm.block_range[block.index()];
        let g = pts.range(lo..=p).next_back().copied()?;
        self.asg.after.get(&(g, v)).copied()
    }

    /// A transfer-bank register of `bank` that is free at point `p`
    /// (before the moves execute), for spill transients.
    fn free_reg(
        &self,
        p: PointId,
        bank: IlpBank,
        taken: &BTreeSet<u8>,
    ) -> Result<u8, ExtractError> {
        let mut used: BTreeSet<u8> = taken.clone();
        for v in self.facts.exists_at(p) {
            if self.residency_before(p, *v) == Some(bank) {
                if let Some(c) = self.asg.colors.get(&(*v, bank)) {
                    used.insert(*c);
                }
            }
        }
        (0..8u8)
            .find(|r| !used.contains(r))
            .ok_or_else(|| ExtractError(format!("no free {bank} register at {p} for spill")))
    }

    /// Residency before the moves at `p`.
    fn residency_before(&self, p: PointId, v: Temp) -> Option<IlpBank> {
        if let Some(b) = self.asg.before.get(&(p, v)) {
            return Some(*b);
        }
        // Not an action point of v: residency since its last action.
        self.residency(p, v)
    }

    fn rewrite_block(&mut self, bi: u32, b: &Block<Temp>) -> Result<Block<Temp>, ExtractError> {
        let mut out: Vec<Instr<Temp>> = Vec::new();
        let n = b.instrs.len() as u32;
        for idx in 0..=n {
            let p = self.point(bi, idx);
            self.emit_moves_at(p, &mut out)?;
            if idx < n {
                self.rewrite_instr(
                    &b.instrs[idx as usize],
                    p,
                    self.point(bi, idx + 1),
                    &mut out,
                )?;
            }
        }
        // Terminator operands read at point n (after its moves).
        let p_term = self.point(bi, n);
        let term = match &b.term {
            Terminator::Halt => Terminator::Halt,
            Terminator::Jump(t) => Terminator::Jump(*t),
            Terminator::Branch {
                cond,
                a,
                b: bsrc,
                if_true,
                if_false,
            } => {
                let ra = self.use_reg(*a, p_term)?;
                let rb = match bsrc {
                    AluSrc::Imm(v) => AluSrc::Imm(*v),
                    AluSrc::Reg(r) => AluSrc::Reg(self.use_reg(*r, p_term)?),
                };
                Terminator::Branch {
                    cond: *cond,
                    a: ra,
                    b: rb,
                    if_true: *if_true,
                    if_false: *if_false,
                }
            }
        };
        Ok(Block { instrs: out, term })
    }

    /// Segment for an operand read at point `p` (post-move residency).
    fn use_reg(&mut self, v: Temp, p: PointId) -> Result<Temp, ExtractError> {
        let bank = self
            .asg
            .after
            .get(&(p, v))
            .copied()
            .or_else(|| self.residency(p, v))
            .ok_or_else(|| ExtractError(format!("no residency for {v} at {p}")))?;
        if bank == IlpBank::M {
            return Err(ExtractError(format!("{v} used while spilled at {p}")));
        }
        self.segment(v, bank)
    }

    /// Segment for a result defined at point `p` (pre-move residency).
    fn def_reg(&mut self, v: Temp, p: PointId) -> Result<Temp, ExtractError> {
        let bank = self
            .asg
            .before
            .get(&(p, v))
            .copied()
            .ok_or_else(|| ExtractError(format!("no definition bank for {v} at {p}")))?;
        if bank == IlpBank::M {
            return Err(ExtractError(format!("{v} defined into spill bank at {p}")));
        }
        self.segment(v, bank)
    }

    fn slot(&mut self, v: Temp) -> u32 {
        if let Some(s) = self.spill_slots.get(&v) {
            return *s;
        }
        let s = self.spill_base + self.spill_slots.len() as u32;
        self.spill_slots.insert(v, s);
        s
    }

    fn emit_moves_at(
        &mut self,
        p: PointId,
        out: &mut Vec<Instr<Temp>>,
    ) -> Result<(), ExtractError> {
        let Some(moves) = self.asg.moves.get(&p).cloned() else {
            return Ok(());
        };
        // Order matters within a point: first drain values out of the
        // transfer banks (spill stores, moves out of L/LD), then ordinary
        // moves, then reloads — so arriving values never clobber departing
        // ones that share a register.
        let phase = |b1: IlpBank, b2: IlpBank| -> u8 {
            if b2 == IlpBank::M {
                0 // spill stores leave first
            } else if b1.is_transfer() {
                1 // drains of transfer banks
            } else if b1 == IlpBank::M {
                3 // reloads arrive last
            } else {
                2
            }
        };
        let mut ordered = moves;
        ordered.sort_by_key(|(v, b1, b2)| (phase(*b1, *b2), v.0));
        let mut transient_s: BTreeSet<u8> = BTreeSet::new();
        let mut transient_l: BTreeSet<u8> = BTreeSet::new();
        for (v, b1, b2) in ordered {
            match (b1, b2) {
                (IlpBank::M, IlpBank::M) => {}
                (src, IlpBank::M) => {
                    // Spill store: through an S register unless already in S.
                    let addr = Addr::Imm(self.slot(v));
                    if src == IlpBank::S {
                        let s = self.segment(v, IlpBank::S)?;
                        out.push(Instr::MemWrite {
                            space: MemSpace::Scratch,
                            addr,
                            src: vec![s],
                        });
                    } else {
                        let r = self.free_reg(p, IlpBank::S, &transient_s)?;
                        transient_s.insert(r);
                        let tr = self.fresh();
                        self.seg_bank.insert(tr, Bank::S);
                        self.fixed.insert(tr, PhysReg::new(Bank::S, r));
                        let from = self.segment(v, src)?;
                        out.push(Instr::Move { dst: tr, src: from });
                        out.push(Instr::MemWrite {
                            space: MemSpace::Scratch,
                            addr,
                            src: vec![tr],
                        });
                    }
                }
                (IlpBank::M, dst) => {
                    // Reload: lands in L, then moves on if needed.
                    let addr = Addr::Imm(self.slot(v));
                    if dst == IlpBank::L {
                        let l = self.segment(v, IlpBank::L)?;
                        out.push(Instr::MemRead {
                            space: MemSpace::Scratch,
                            addr,
                            dst: vec![l],
                        });
                    } else {
                        let r = self.free_reg(p, IlpBank::L, &transient_l)?;
                        transient_l.insert(r);
                        let tr = self.fresh();
                        self.seg_bank.insert(tr, Bank::L);
                        self.fixed.insert(tr, PhysReg::new(Bank::L, r));
                        out.push(Instr::MemRead {
                            space: MemSpace::Scratch,
                            addr,
                            dst: vec![tr],
                        });
                        let to = self.segment(v, dst)?;
                        out.push(Instr::Move { dst: to, src: tr });
                    }
                }
                (src, dst) => {
                    let from = self.segment(v, src)?;
                    let to = self.segment(v, dst)?;
                    out.push(Instr::Move { dst: to, src: from });
                }
            }
        }
        Ok(())
    }

    fn rewrite_instr(
        &mut self,
        ins: &Instr<Temp>,
        pre: PointId,
        post: PointId,
        out: &mut Vec<Instr<Temp>>,
    ) -> Result<(), ExtractError> {
        match ins {
            Instr::Alu { op, dst, a, b } => {
                let a = self.use_reg(*a, pre)?;
                let b = match b {
                    AluSrc::Reg(r) => AluSrc::Reg(self.use_reg(*r, pre)?),
                    AluSrc::Imm(v) => AluSrc::Imm(*v),
                };
                let dst = self.def_reg(*dst, post)?;
                out.push(Instr::Alu { op: *op, dst, a, b });
            }
            Instr::Imm { dst, val } => {
                let dst = self.def_reg(*dst, post)?;
                out.push(Instr::Imm { dst, val: *val });
            }
            Instr::Move { dst, src } => {
                let src = self.use_reg(*src, pre)?;
                let dst = self.def_reg(*dst, post)?;
                out.push(Instr::Move { dst, src });
            }
            Instr::Clone { dst, src } => {
                // The clone itself vanishes: destination and source share
                // a register at this point.
                let sb = self
                    .asg
                    .after
                    .get(&(pre, *src))
                    .copied()
                    .or_else(|| self.residency(pre, *src))
                    .ok_or_else(|| ExtractError(format!("clone source {src} unplaced")))?;
                let db = self
                    .asg
                    .before
                    .get(&(post, *dst))
                    .copied()
                    .ok_or_else(|| ExtractError(format!("clone dest {dst} unplaced")))?;
                if sb != db {
                    return Err(ExtractError(format!(
                        "clone {dst} starts in {db} but source {src} is in {sb}"
                    )));
                }
                let s_seg = self.segment(*src, sb)?;
                let d_seg = self.segment(*dst, db)?;
                match db {
                    IlpBank::A | IlpBank::B => {
                        self.ab_aliases.push((d_seg, s_seg));
                    }
                    xb if xb.is_transfer() => {
                        let cs = self.asg.colors.get(&(*src, xb));
                        let cd = self.asg.colors.get(&(*dst, xb));
                        if cs != cd {
                            return Err(ExtractError(format!(
                                "clone {dst}/{src} colors differ in {xb}: {cd:?} vs {cs:?}"
                            )));
                        }
                    }
                    _ => {
                        return Err(ExtractError("clone in spill bank".into()));
                    }
                }
            }
            Instr::MemRead { space, addr, dst } => {
                let addr = self.rewrite_addr(addr, pre)?;
                let dst = dst
                    .iter()
                    .map(|d| self.def_reg(*d, post))
                    .collect::<Result<Vec<_>, _>>()?;
                out.push(Instr::MemRead {
                    space: *space,
                    addr,
                    dst,
                });
            }
            Instr::MemWrite { space, addr, src } => {
                let addr = self.rewrite_addr(addr, pre)?;
                let src = src
                    .iter()
                    .map(|s| self.use_reg(*s, pre))
                    .collect::<Result<Vec<_>, _>>()?;
                out.push(Instr::MemWrite {
                    space: *space,
                    addr,
                    src,
                });
            }
            Instr::Hash { dst, src } => {
                let src = self.use_reg(*src, pre)?;
                let dst = self.def_reg(*dst, post)?;
                out.push(Instr::Hash { dst, src });
            }
            Instr::TestAndSet { dst, src, addr } => {
                let addr = self.rewrite_addr(addr, pre)?;
                let src = self.use_reg(*src, pre)?;
                let dst = self.def_reg(*dst, post)?;
                out.push(Instr::TestAndSet { dst, src, addr });
            }
            Instr::CsrRead { dst, csr } => {
                let dst = self.def_reg(*dst, post)?;
                out.push(Instr::CsrRead { dst, csr: *csr });
            }
            Instr::CsrWrite { src, csr } => {
                let src = self.use_reg(*src, pre)?;
                out.push(Instr::CsrWrite { src, csr: *csr });
            }
            Instr::RxPacket { len_dst, addr_dst } => {
                let len_dst = self.def_reg(*len_dst, post)?;
                let addr_dst = self.def_reg(*addr_dst, post)?;
                out.push(Instr::RxPacket { len_dst, addr_dst });
            }
            Instr::TxPacket { addr, len } => {
                let addr = self.use_reg(*addr, pre)?;
                let len = self.use_reg(*len, pre)?;
                out.push(Instr::TxPacket { addr, len });
            }
            Instr::CtxSwap => out.push(Instr::CtxSwap),
        }
        Ok(())
    }

    fn rewrite_addr(
        &mut self,
        addr: &Addr<Temp>,
        pre: PointId,
    ) -> Result<Addr<Temp>, ExtractError> {
        Ok(match addr {
            Addr::Imm(a) => Addr::Imm(*a),
            Addr::Reg(r, o) => Addr::Reg(self.use_reg(*r, pre)?, *o),
        })
    }
}
