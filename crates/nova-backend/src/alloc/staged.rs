//! Staged allocation with graceful degradation.
//!
//! The exact MILP is the quality ceiling but also the availability floor:
//! when branch-and-bound exhausts its budget without an incumbent,
//! `allocate` used to surface [`ilp::MilpError::BudgetExhausted`] and the
//! compile died. This module turns allocation into a ladder of
//! progressively cheaper stages so a compile always terminates with
//! runnable code under any deadline:
//!
//! | stage | strategy                                   | quality          |
//! |-------|--------------------------------------------|------------------|
//! | 0     | exact MILP under the configured deadline   | optimal / gap    |
//! | 1     | MILP, optimality gap widened to ≥ 5 %      | bounded gap      |
//! | 2     | MILP without §9 redundant cuts, gap 20 %   | bounded gap      |
//! | 3     | root-LP relaxation + rounding              | gap vs. LP bound |
//! | 4     | greedy park-in-scratch ([`super::greedy`]) | spills, no bound |
//!
//! Stages 1–3 retry with exponential *budget* backoff (the wall-clock
//! allowance doubles per rung, floored at 50 ms) rather than sleeping —
//! locally there is nothing to wait for, the point is to give each
//! relaxation a progressively longer look. A stage is accepted only if
//! its solution survives extraction, coloring, machine validation, and
//! (in debug builds) the [`super::verify`] checker; a solution that fails
//! downstream falls through to the next rung instead of aborting.
//!
//! Every attempt runs under a `phase.ilp.stage` span and the outcome is
//! published as `backend.staged.*` telemetry plus an [`AllocQuality`]
//! record on the final [`Allocation`].

use super::facts::Facts;
use super::greedy;
use super::model::{
    build_model, decode_assignment, solve_hinted_with, AllocConfig, AllocStats, Assignment,
    BankModel,
};
use super::{finish, AllocError, Allocation};
use crate::freq::Frequencies;
use ilp::MilpError;
use ixp_machine::{Program, Temp};
use std::time::Duration;

/// What the allocator does when the MILP budget expires without a usable
/// solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FallbackPolicy {
    /// Strict: only a *proven-optimal* (within the configured gap) stage-0
    /// solution is accepted; anything else is an error. The all-or-nothing
    /// compiler model.
    Fail,
    /// Accept any stage-0 incumbent the search found before the budget
    /// expired (recording the proven gap); error only when there is no
    /// incumbent at all. This is the historical behavior.
    Incumbent,
    /// Walk the full relaxation ladder down to the greedy allocator, so
    /// allocation cannot fail on budget exhaustion (the default).
    #[default]
    Ladder,
    /// Skip the MILP entirely and use the greedy allocator (stage 4).
    Greedy,
}

/// How good the accepted allocation is, and where it came from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocQuality {
    /// Ladder stage that produced the allocation (0 = exact MILP,
    /// 1 = widened gap, 2 = no redundant cuts, 3 = LP rounding,
    /// 4 = greedy).
    pub stage: u8,
    /// The solver proved optimality within its configured gap.
    pub proven_optimal: bool,
    /// Proven relative optimality gap. `1.0` when no bound is available
    /// (the greedy stage).
    pub gap: f64,
    /// Spills (transitions into scratch) in the accepted allocation.
    pub spills: usize,
}

/// Minimum per-stage wall-clock budget for ladder retries.
const BACKOFF_FLOOR: Duration = Duration::from_millis(50);

/// The solver-side artifacts of the rung that produced an accepted
/// allocation: the model, the decoded assignment, and (for MILP/LP rungs)
/// the raw solution values. A session caches these to re-finish a
/// structurally identical program, or to warm-start the next solve.
pub struct Solved {
    /// The generated bank model the accepted solution indexes into.
    pub bm: BankModel,
    /// The decoded assignment.
    pub asg: Assignment,
    /// Model and solver statistics of the accepted rung.
    pub stats: AllocStats,
    /// Stage/gap/spill quality record of the accepted rung.
    pub quality: AllocQuality,
    /// Raw MILP/LP variable values of the accepted solution (`None` for
    /// the greedy rung, which never builds a solution vector).
    pub values: Option<Vec<f64>>,
}

/// Run the staged allocator: solve (with fallback per `cfg.fallback`),
/// then extract, color, and validate. Returns the finished allocation
/// together with the accepted rung's solver artifacts. `hint` warm-starts
/// the stage-0 exact solve (ignored when infeasible for the model).
pub(crate) fn run(
    prog: &Program<Temp>,
    facts: &Facts,
    freqs: &Frequencies,
    cfg: &AllocConfig,
    hint: Option<&[f64]>,
    obs: &nova_obs::Obs,
) -> Result<(Allocation, Solved), AllocError> {
    match cfg.fallback {
        FallbackPolicy::Greedy => greedy_stage(prog, facts, freqs, cfg, obs),
        FallbackPolicy::Fail | FallbackPolicy::Incumbent => {
            let mut bm = build_model_timed(prog, facts, freqs, cfg, obs);
            let (asg, stats, values) =
                attempt(&mut bm, cfg, hint, obs).map_err(AllocError::Solver)?;
            if cfg.fallback == FallbackPolicy::Fail && !stats.solve.proven_optimal {
                return Err(AllocError::Solver(MilpError::BudgetExhausted(Box::new(
                    stats.solve,
                ))));
            }
            let quality = AllocQuality {
                stage: 0,
                proven_optimal: stats.solve.proven_optimal,
                gap: stats.solve.gap,
                spills: asg.n_spills,
            };
            emit_outcome(obs, &quality);
            let alloc = finish(prog, facts, &bm, &asg, stats.clone(), quality, obs)?;
            Ok((
                alloc,
                Solved {
                    bm,
                    asg,
                    stats,
                    quality,
                    values: Some(values),
                },
            ))
        }
        FallbackPolicy::Ladder => ladder(prog, facts, freqs, cfg, hint, obs),
    }
}

/// CSR model generation under a `phase.ilp.model` span, so the report
/// harness can see the build's wall time and heap traffic separately
/// from the solve.
fn build_model_timed(
    prog: &Program<Temp>,
    facts: &Facts,
    freqs: &Frequencies,
    cfg: &AllocConfig,
    obs: &nova_obs::Obs,
) -> BankModel {
    let span = obs.span("phase.ilp.model");
    let bm = build_model(prog, facts, freqs, cfg);
    span.end();
    bm
}

/// One MILP attempt under a `phase.ilp.stage` span.
fn attempt(
    bm: &mut BankModel,
    cfg: &AllocConfig,
    hint: Option<&[f64]>,
    obs: &nova_obs::Obs,
) -> Result<(Assignment, AllocStats, Vec<f64>), MilpError> {
    let span = obs.span("phase.ilp.stage");
    obs.counter("backend.staged.attempts", 1);
    let out = solve_hinted_with(bm, cfg, hint, obs);
    span.end();
    out
}

fn emit_outcome(obs: &nova_obs::Obs, q: &AllocQuality) {
    obs.counter("backend.staged.stage", u64::from(q.stage));
    obs.sample("backend.staged.gap", q.gap);
}

/// Try to finish a solved rung; `Ok(None)` means the solution failed a
/// downstream phase and the ladder should fall to the next rung.
fn try_finish(
    prog: &Program<Temp>,
    facts: &Facts,
    bm: &BankModel,
    asg: &Assignment,
    stats: &AllocStats,
    quality: AllocQuality,
    obs: &nova_obs::Obs,
) -> Result<Option<Allocation>, AllocError> {
    emit_outcome(obs, &quality);
    match finish(prog, facts, bm, asg, stats.clone(), quality, obs) {
        Ok(alloc) => Ok(Some(alloc)),
        // Downstream rejection of this stage's solution: fall through.
        Err(
            AllocError::Extract(_)
            | AllocError::Color(_)
            | AllocError::Invalid(_)
            | AllocError::Verify(_),
        ) => {
            obs.counter("backend.staged.finish_failed", 1);
            Ok(None)
        }
        Err(e) => Err(e),
    }
}

fn ladder(
    prog: &Program<Temp>,
    facts: &Facts,
    freqs: &Frequencies,
    cfg: &AllocConfig,
    hint: Option<&[f64]>,
    obs: &nova_obs::Obs,
) -> Result<(Allocation, Solved), AllocError> {
    // ---- stage 0: exact MILP under the configured deadline ----
    let mut bm = build_model_timed(prog, facts, freqs, cfg, obs);
    match attempt(&mut bm, cfg, hint, obs) {
        Ok((asg, stats, values)) => {
            let quality = AllocQuality {
                stage: 0,
                proven_optimal: stats.solve.proven_optimal,
                gap: stats.solve.gap,
                spills: asg.n_spills,
            };
            if let Some(alloc) = try_finish(prog, facts, &bm, &asg, &stats, quality, obs)? {
                return Ok((
                    alloc,
                    Solved {
                        bm,
                        asg,
                        stats,
                        quality,
                        values: Some(values),
                    },
                ));
            }
        }
        Err(MilpError::BudgetExhausted(_)) => {}
        // Infeasible/Unbounded/Numerical are facts about the model, not
        // the budget: no relaxation rung below changes them.
        Err(e) => return Err(AllocError::Solver(e)),
    }

    // Exponential budget backoff: each rung gets twice the allowance of
    // the previous one, floored at 50 ms.
    let base = cfg
        .solver
        .time_limit
        .unwrap_or(BACKOFF_FLOOR)
        .max(BACKOFF_FLOOR);

    // ---- stage 1: widen the optimality gap on the same model ----
    {
        let mut c1 = cfg.clone();
        c1.solver.relative_gap = cfg.solver.relative_gap.max(0.05);
        c1.solver.time_limit = Some(base);
        obs.sample("backend.staged.backoff_ms", base.as_secs_f64() * 1e3);
        match attempt(&mut bm, &c1, None, obs) {
            Ok((asg, stats, values)) => {
                let quality = AllocQuality {
                    stage: 1,
                    proven_optimal: stats.solve.proven_optimal,
                    gap: stats.solve.gap,
                    spills: asg.n_spills,
                };
                if let Some(alloc) = try_finish(prog, facts, &bm, &asg, &stats, quality, obs)? {
                    return Ok((
                        alloc,
                        Solved {
                            bm,
                            asg,
                            stats,
                            quality,
                            values: Some(values),
                        },
                    ));
                }
            }
            Err(MilpError::BudgetExhausted(_)) => {}
            Err(e) => return Err(AllocError::Solver(e)),
        }
    }

    // ---- stage 2: drop the redundant aggregate cuts, gap 20 % ----
    let mut c2 = cfg.clone();
    c2.redundant_cuts = false;
    c2.solver.relative_gap = cfg.solver.relative_gap.max(0.20);
    c2.solver.time_limit = Some(base * 2);
    let mut bm2 = build_model_timed(prog, facts, freqs, &c2, obs);
    obs.sample("backend.staged.backoff_ms", (base * 2).as_secs_f64() * 1e3);
    match attempt(&mut bm2, &c2, None, obs) {
        Ok((asg, stats, values)) => {
            let quality = AllocQuality {
                stage: 2,
                proven_optimal: stats.solve.proven_optimal,
                gap: stats.solve.gap,
                spills: asg.n_spills,
            };
            if let Some(alloc) = try_finish(prog, facts, &bm2, &asg, &stats, quality, obs)? {
                return Ok((
                    alloc,
                    Solved {
                        bm: bm2,
                        asg,
                        stats,
                        quality,
                        values: Some(values),
                    },
                ));
            }
        }
        Err(MilpError::BudgetExhausted(_)) => {}
        Err(e) => return Err(AllocError::Solver(e)),
    }

    // ---- stage 3: root-LP relaxation + rounding on the cut-free model ----
    {
        let mut c3 = c2.solver.clone();
        c3.time_limit = Some(base * 4);
        obs.sample("backend.staged.backoff_ms", (base * 4).as_secs_f64() * 1e3);
        let span = obs.span("phase.ilp.stage");
        obs.counter("backend.staged.attempts", 1);
        let rounded = bm2.model.solve_rounded_with(&c3, obs);
        span.end();
        match rounded {
            Ok(sol) => {
                let asg = decode_assignment(&bm2, &sol.values);
                let quality = AllocQuality {
                    stage: 3,
                    proven_optimal: sol.stats.proven_optimal,
                    gap: sol.stats.gap,
                    spills: asg.n_spills,
                };
                let stats = AllocStats {
                    model: bm2.model.stats(),
                    solve: sol.stats,
                    fig6: bm2.fig6,
                    moves: asg.n_moves,
                    spills: asg.n_spills,
                    objective: sol.objective,
                };
                if let Some(alloc) = try_finish(prog, facts, &bm2, &asg, &stats, quality, obs)? {
                    return Ok((
                        alloc,
                        Solved {
                            bm: bm2,
                            asg,
                            stats,
                            quality,
                            values: Some(sol.values),
                        },
                    ));
                }
            }
            Err(MilpError::BudgetExhausted(_)) => {}
            Err(e) => return Err(AllocError::Solver(e)),
        }
    }

    // ---- stage 4: greedy park-in-scratch, always succeeds ----
    greedy_stage(prog, facts, freqs, cfg, obs)
}

/// The terminal rung: deterministic greedy allocation. Failures here (or
/// downstream of here) are genuine errors — there is nothing left to try.
fn greedy_stage(
    prog: &Program<Temp>,
    facts: &Facts,
    freqs: &Frequencies,
    cfg: &AllocConfig,
    obs: &nova_obs::Obs,
) -> Result<(Allocation, Solved), AllocError> {
    let span = obs.span("phase.ilp.stage");
    obs.counter("backend.staged.attempts", 1);
    let out = greedy::allocate(prog, facts, freqs, cfg);
    span.end();
    let (bm, asg, stats) = out?;
    let quality = AllocQuality {
        stage: 4,
        proven_optimal: false,
        gap: 1.0,
        spills: asg.n_spills,
    };
    emit_outcome(obs, &quality);
    let alloc = finish(prog, facts, &bm, &asg, stats.clone(), quality, obs)?;
    Ok((
        alloc,
        Solved {
            bm,
            asg,
            stats,
            quality,
            values: None,
        },
    ))
}
