//! Independent allocation verifier.
//!
//! Re-derives liveness on the segmented program and checks the combined
//! register assignment (fixed transfer/transient registers plus the A/B
//! coloring) against it, with no knowledge of *how* the allocation was
//! produced. Every rung of the fallback ladder — exact MILP, relaxed
//! MILP, LP rounding, greedy — passes through the same checks, so a
//! degraded allocation is held to the same soundness bar as an optimal
//! one:
//!
//! 1. **Completeness** — every segment temporary referenced by the
//!    program has a register, and the register's bank matches the bank
//!    the segment was split for.
//! 2. **Interference** — two simultaneously-live segments never share a
//!    register unless they provably carry the same value (clone sets,
//!    which extraction records in `ab_aliases`/`xfer_aliases`).
//! 3. **Clobbering** — a definition never writes the register of an
//!    unrelated value that is live across it (with the classic move
//!    exception: `Move dst, src` onto a shared register rewrites the
//!    value with itself).
//!
//! Violations are returned as human-readable strings; an empty vector
//! means the allocation is sound. [`super::finish`] runs the verifier in
//! debug builds (so every test exercises it) and the degradation tests
//! call it explicitly per stage.

use super::extract::Placed;
use crate::liveness::{analyze, Point};
use ixp_machine::{BlockId, Instr, PhysReg, Temp};
use std::collections::{BTreeSet, HashMap};

/// Path-compressing union-find over same-value (clone) sets.
struct SameValue {
    parent: HashMap<Temp, Temp>,
}

impl SameValue {
    fn find(&mut self, t: Temp) -> Temp {
        let p = *self.parent.get(&t).unwrap_or(&t);
        if p == t {
            t
        } else {
            let r = self.find(p);
            self.parent.insert(t, r);
            r
        }
    }

    fn union(&mut self, a: Temp, b: Temp) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }
}

/// Check a register assignment for the segmented program. Returns one
/// message per violation; empty means sound. `ab` is the A/B coloring
/// ([`crate::color::assign_ab`]); fixed registers come from `placed`.
pub fn verify(placed: &Placed, ab: &HashMap<Temp, PhysReg>) -> Vec<String> {
    let mut out = Vec::new();
    let reg_of = |t: Temp| placed.fixed.get(&t).or_else(|| ab.get(&t)).copied();

    // 1. Completeness and bank agreement.
    let mut referenced: BTreeSet<Temp> = BTreeSet::new();
    for b in &placed.prog.blocks {
        for ins in &b.instrs {
            referenced.extend(ins.uses().into_iter().copied());
            referenced.extend(ins.defs().into_iter().copied());
        }
        referenced.extend(b.term.uses().into_iter().copied());
    }
    for t in &referenced {
        match reg_of(*t) {
            None => out.push(format!("segment {t} was never assigned a register")),
            Some(r) => match placed.seg_bank.get(t) {
                None => out.push(format!("segment {t} has a register but no bank record")),
                Some(b) if r.bank != *b => {
                    out.push(format!("segment {t} assigned {r} outside its bank {b}"));
                }
                _ => {}
            },
        }
    }

    // Same-value sets: clones share a register by construction.
    let mut same = SameValue {
        parent: HashMap::new(),
    };
    for (a, b) in placed.ab_aliases.iter().chain(&placed.xfer_aliases) {
        same.union(*a, *b);
    }

    // 2. Live ranges sharing a register must carry the same value.
    let liveness = analyze(&placed.prog);
    let mut points: Vec<&Point> = liveness.live.keys().collect();
    points.sort_by_key(|p| (p.block.0, p.index));
    for point in points {
        let mut live: Vec<Temp> = liveness.live[point].iter().copied().collect();
        live.sort();
        let mut by_reg: HashMap<PhysReg, Temp> = HashMap::new();
        for t in live {
            let Some(r) = reg_of(t) else { continue };
            if let Some(prev) = by_reg.insert(r, t) {
                if same.find(prev) != same.find(t) {
                    out.push(format!(
                        "{prev} and {t} are both live at {point} but share {r}"
                    ));
                }
            }
        }
    }

    // 3. Definitions must not clobber unrelated live values.
    for (bi, b) in placed.prog.blocks.iter().enumerate() {
        for (ii, ins) in b.instrs.iter().enumerate() {
            let post = Point {
                block: BlockId(bi as u32),
                index: ii as u32 + 1,
            };
            let Some(live_post) = liveness.live.get(&post) else {
                continue;
            };
            let move_src = match ins {
                Instr::Move { src, .. } => Some(*src),
                _ => None,
            };
            let mut live: Vec<Temp> = live_post.iter().copied().collect();
            live.sort();
            for d in ins.defs() {
                let Some(rd) = reg_of(*d) else { continue };
                for l in &live {
                    if l == d || Some(*l) == move_src || reg_of(*l) != Some(rd) {
                        continue;
                    }
                    if same.find(*l) != same.find(*d) {
                        out.push(format!(
                            "definition of {d} at {post} clobbers live {l} in {rd}"
                        ));
                    }
                }
            }
        }
    }

    out
}
