//! The ILP model's data: program points, `Exists`, `Copy`, and the
//! per-instruction operand facts (§5.2, Figure 3).
//!
//! Every instruction sits between two points; a block's terminator is
//! followed by a single *after-branch* point connected to the entry points
//! of all successors. Moves may be inserted at any point except
//! after-branch points (the paper's "situations where it would be illegal
//! to insert move instructions").

use crate::liveness::{analyze, Liveness, Point};
use ixp_machine::{Addr, AluSrc, Instr, MemSpace, Program, Temp, Terminator};
use std::collections::{HashMap, HashSet};

/// Dense id for an interned [`Point`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PointId(pub u32);

impl std::fmt::Display for PointId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// What an instruction requires of the banks of its operands and results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fact {
    /// Two-register ALU operation: operands obey the `Arith` rules,
    /// result goes to `{A, B, S, SD}`.
    AluTwo {
        /// Point before.
        pre: PointId,
        /// Point after.
        post: PointId,
        /// Result.
        dst: Temp,
        /// Left operand.
        a: Temp,
        /// Right operand.
        b: Temp,
    },
    /// One-register ALU operation (shift-immediate or move source):
    /// operand from `{A, B, L, LD}`, result to `{A, B, S, SD}`.
    AluOne {
        /// Point before.
        pre: PointId,
        /// Point after.
        post: PointId,
        /// Result.
        dst: Temp,
        /// Operand.
        a: Temp,
    },
    /// Pure definition into `{A, B, S, SD}` (`immed`, `csr_rd`, packet
    /// receive).
    Def {
        /// Point after.
        post: PointId,
        /// Results.
        dsts: Vec<Temp>,
    },
    /// Register operand read from `{A, B}` (addresses, csr/tx operands).
    GpUse {
        /// Point before.
        pre: PointId,
        /// Operands.
        srcs: Vec<Temp>,
    },
    /// Aggregate definition by a memory read: members land consecutively
    /// in the load transfer bank (`DefLi`/`DefLDj`).
    ReadAgg {
        /// Point before (address operand read here, if any).
        pre: PointId,
        /// Point after (members exist here).
        post: PointId,
        /// The memory space (selects `L` vs `LD`).
        space: MemSpace,
        /// Aggregate members in ascending order.
        dsts: Vec<Temp>,
    },
    /// Aggregate use by a memory write (`UseSi`/`UseSDj`).
    WriteAgg {
        /// Point before (members and address read here).
        pre: PointId,
        /// The memory space (selects `S` vs `SD`).
        space: MemSpace,
        /// Aggregate members in ascending order.
        srcs: Vec<Temp>,
    },
    /// Same-register unit operation (`hash`, `test-and-set`): source in
    /// `S`, result in `L`, equal register numbers.
    SameReg {
        /// Point before.
        pre: PointId,
        /// Point after.
        post: PointId,
        /// Result (lands in `L`).
        dst: Temp,
        /// Operand (read from `S`).
        src: Temp,
    },
    /// A pre-existing register copy (parameter passing at jumps). Operand
    /// and result rules are `AluOne`'s, but the objective additionally
    /// charges a move cost when source and destination end up in
    /// different banks — when they share a bank the coloring phase
    /// coalesces the copy away entirely.
    MoveF {
        /// Point before.
        pre: PointId,
        /// Point after.
        post: PointId,
        /// Destination.
        dst: Temp,
        /// Source.
        src: Temp,
    },
    /// SSU clone: destination occupies the same bank (and transfer
    /// register) as the source at this point; no code is generated.
    CloneF {
        /// Point before.
        pre: PointId,
        /// Point after.
        post: PointId,
        /// Clone.
        dst: Temp,
        /// Original.
        src: Temp,
    },
    /// Conditional branch operands (like `AluTwo`/`AluOne` but no result).
    BranchUse {
        /// Point before the terminator.
        pre: PointId,
        /// Left operand.
        a: Temp,
        /// Right operand if it is a register.
        b: Option<Temp>,
    },
}

/// The assembled model data for one program.
#[derive(Debug)]
pub struct Facts {
    /// Point interner: dense id per (block, index).
    pub points: Vec<Point>,
    /// Reverse lookup.
    pub point_id: HashMap<Point, PointId>,
    /// `Exists`: temporaries that exist at each point (live, plus results
    /// that are immediately dead).
    pub exists: HashMap<PointId, HashSet<Temp>>,
    /// `Copy`: `(p1, p2, v)` — v carried unchanged from p1 to p2.
    pub copy: Vec<(PointId, PointId, Temp)>,
    /// Per-instruction operand facts.
    pub facts: Vec<Fact>,
    /// Points where move insertion is illegal (after-branch points).
    pub no_moves: HashSet<PointId>,
    /// The liveness analysis (kept for downstream phases).
    pub liveness: Liveness,
    /// Clone pairs `(dst, src)` in program order.
    pub clones: Vec<(Temp, Temp)>,
    /// Aggregates (for the redundant-cut generation and statistics):
    /// `(space, read?, members)`.
    pub aggregates: Vec<(MemSpace, bool, Vec<Temp>)>,
}

impl Facts {
    /// Temps that exist at a point.
    pub fn exists_at(&self, p: PointId) -> &HashSet<Temp> {
        &self.exists[&p]
    }

    /// All `(PointId, Temp)` pairs of the `Exists` relation.
    pub fn exists_pairs(&self) -> impl Iterator<Item = (PointId, Temp)> + '_ {
        self.exists
            .iter()
            .flat_map(|(p, ts)| ts.iter().map(move |t| (*p, *t)))
    }
}

/// Build the model data from a virtual-register program.
pub fn build(prog: &Program<Temp>) -> Facts {
    let liveness = analyze(prog);
    let mut points = Vec::new();
    let mut point_id = HashMap::new();
    for (bi, b) in prog.blocks.iter().enumerate() {
        for idx in 0..(b.instrs.len() as u32 + 2) {
            let p = Point {
                block: ixp_machine::BlockId(bi as u32),
                index: idx,
            };
            point_id.insert(p, PointId(points.len() as u32));
            points.push(p);
        }
    }
    let pid = |block: usize, index: u32| -> PointId {
        point_id[&Point {
            block: ixp_machine::BlockId(block as u32),
            index,
        }]
    };

    let mut exists: HashMap<PointId, HashSet<Temp>> = HashMap::new();
    let mut copy = Vec::new();
    let mut facts = Vec::new();
    let mut no_moves = HashSet::new();
    let mut clones = Vec::new();
    let mut aggregates = Vec::new();

    for (bi, b) in prog.blocks.iter().enumerate() {
        let n = b.instrs.len() as u32;
        // Exists = live at each point; dead results added below.
        for idx in 0..(n + 2) {
            let p = Point {
                block: ixp_machine::BlockId(bi as u32),
                index: idx,
            };
            let set = liveness.live[&p].clone();
            exists.insert(point_id[&p], set);
        }
        for (j, ins) in b.instrs.iter().enumerate() {
            let pre = pid(bi, j as u32);
            let post = pid(bi, j as u32 + 1);
            // Dead results still exist at the post point (§5.2).
            for d in ins.defs() {
                exists.get_mut(&post).unwrap().insert(*d);
            }
            // Copy: everything live at both ends and not defined here.
            let defs: HashSet<Temp> = ins.defs().into_iter().copied().collect();
            let live_pre = &liveness.live[&points[pre.0 as usize]];
            let live_post = &liveness.live[&points[post.0 as usize]];
            for v in live_pre {
                if live_post.contains(v) && !defs.contains(v) {
                    copy.push((pre, post, *v));
                }
            }
            facts.extend(instr_facts(ins, pre, post, &mut clones, &mut aggregates));
        }
        // Terminator between points n and n+1.
        let pre = pid(bi, n);
        let post = pid(bi, n + 1);
        no_moves.insert(post);
        if let Terminator::Branch { a, b: bsrc, .. } = &b.term {
            facts.push(Fact::BranchUse {
                pre,
                a: *a,
                b: match bsrc {
                    AluSrc::Reg(r) => Some(*r),
                    AluSrc::Imm(_) => None,
                },
            });
        }
        let live_pre = &liveness.live[&points[pre.0 as usize]];
        let live_post = &liveness.live[&points[post.0 as usize]];
        for v in live_pre {
            if live_post.contains(v) {
                copy.push((pre, post, *v));
            }
        }
        // CFG edges: after-branch point to successor entry points.
        for succ in b.term.successors() {
            let target = point_id[&Point {
                block: succ,
                index: 0,
            }];
            for v in &liveness.live_in[&succ] {
                if live_post.contains(v) {
                    copy.push((post, target, *v));
                }
            }
        }
    }

    Facts {
        points,
        point_id,
        exists,
        copy,
        facts,
        no_moves,
        liveness,
        clones,
        aggregates,
    }
}

fn addr_use(addr: &Addr<Temp>) -> Option<Temp> {
    addr.base().copied()
}

fn instr_facts(
    ins: &Instr<Temp>,
    pre: PointId,
    post: PointId,
    clones: &mut Vec<(Temp, Temp)>,
    aggregates: &mut Vec<(MemSpace, bool, Vec<Temp>)>,
) -> Vec<Fact> {
    let mut out = Vec::new();
    match ins {
        Instr::Alu { dst, a, b, .. } => match b {
            AluSrc::Reg(rb) => out.push(Fact::AluTwo {
                pre,
                post,
                dst: *dst,
                a: *a,
                b: *rb,
            }),
            AluSrc::Imm(_) => out.push(Fact::AluOne {
                pre,
                post,
                dst: *dst,
                a: *a,
            }),
        },
        Instr::Imm { dst, .. } => out.push(Fact::Def {
            post,
            dsts: vec![*dst],
        }),
        Instr::Move { dst, src } => out.push(Fact::MoveF {
            pre,
            post,
            dst: *dst,
            src: *src,
        }),
        Instr::Clone { dst, src } => {
            clones.push((*dst, *src));
            out.push(Fact::CloneF {
                pre,
                post,
                dst: *dst,
                src: *src,
            });
        }
        Instr::MemRead { space, addr, dst } => {
            if let Some(base) = addr_use(addr) {
                out.push(Fact::GpUse {
                    pre,
                    srcs: vec![base],
                });
            }
            aggregates.push((*space, true, dst.clone()));
            out.push(Fact::ReadAgg {
                pre,
                post,
                space: *space,
                dsts: dst.clone(),
            });
        }
        Instr::MemWrite { space, addr, src } => {
            if let Some(base) = addr_use(addr) {
                out.push(Fact::GpUse {
                    pre,
                    srcs: vec![base],
                });
            }
            aggregates.push((*space, false, src.clone()));
            out.push(Fact::WriteAgg {
                pre,
                space: *space,
                srcs: src.clone(),
            });
        }
        Instr::Hash { dst, src } => out.push(Fact::SameReg {
            pre,
            post,
            dst: *dst,
            src: *src,
        }),
        Instr::TestAndSet { dst, src, addr } => {
            if let Some(base) = addr_use(addr) {
                out.push(Fact::GpUse {
                    pre,
                    srcs: vec![base],
                });
            }
            out.push(Fact::SameReg {
                pre,
                post,
                dst: *dst,
                src: *src,
            });
        }
        Instr::CsrRead { dst, .. } => out.push(Fact::Def {
            post,
            dsts: vec![*dst],
        }),
        Instr::CsrWrite { src, .. } => out.push(Fact::GpUse {
            pre,
            srcs: vec![*src],
        }),
        Instr::RxPacket { len_dst, addr_dst } => out.push(Fact::Def {
            post,
            dsts: vec![*len_dst, *addr_dst],
        }),
        Instr::TxPacket { addr, len } => out.push(Fact::GpUse {
            pre,
            srcs: vec![*addr, *len],
        }),
        Instr::CtxSwap => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixp_machine::{Block, BlockId, Cond};

    fn t(i: u32) -> Temp {
        Temp(i)
    }

    #[test]
    fn figure3_style_program_facts() {
        // Mimic Figure 3: two reads, arithmetic, two writes.
        let prog = Program {
            blocks: vec![Block {
                instrs: vec![
                    Instr::MemRead {
                        space: MemSpace::Sram,
                        addr: Addr::Imm(100),
                        dst: vec![t(0), t(1), t(2), t(3)],
                    },
                    Instr::Alu {
                        op: ixp_machine::AluOp::Add,
                        dst: t(4),
                        a: t(0),
                        b: AluSrc::Reg(t(2)),
                    },
                    Instr::MemWrite {
                        space: MemSpace::Sram,
                        addr: Addr::Imm(300),
                        src: vec![t(1), t(4), t(3), t(0)],
                    },
                ],
                term: Terminator::Halt,
            }],
            entry: BlockId(0),
        };
        let f = build(&prog);
        // 3 instructions -> 5 points.
        assert_eq!(f.points.len(), 5);
        let read = f
            .facts
            .iter()
            .find(|x| matches!(x, Fact::ReadAgg { .. }))
            .unwrap();
        match read {
            Fact::ReadAgg { dsts, .. } => assert_eq!(dsts.len(), 4),
            _ => unreachable!(),
        }
        assert!(f.facts.iter().any(|x| matches!(x, Fact::AluTwo { .. })));
        assert!(f.facts.iter().any(|x| matches!(x, Fact::WriteAgg { .. })));
        assert_eq!(f.aggregates.len(), 2);
    }

    #[test]
    fn dead_results_exist_at_post_point() {
        let prog = Program {
            blocks: vec![Block {
                instrs: vec![Instr::Imm { dst: t(0), val: 7 }],
                term: Terminator::Halt,
            }],
            entry: BlockId(0),
        };
        let f = build(&prog);
        // t0 never used: not live anywhere, but exists at the post point.
        let post = f.point_id[&Point {
            block: BlockId(0),
            index: 1,
        }];
        assert!(f.exists_at(post).contains(&t(0)));
        let pre = f.point_id[&Point {
            block: BlockId(0),
            index: 0,
        }];
        assert!(!f.exists_at(pre).contains(&t(0)));
    }

    #[test]
    fn after_branch_points_forbid_moves() {
        let prog = Program {
            blocks: vec![
                Block {
                    instrs: vec![Instr::Imm { dst: t(0), val: 0 }],
                    term: Terminator::Branch {
                        cond: Cond::Eq,
                        a: t(0),
                        b: AluSrc::Imm(0),
                        if_true: BlockId(1),
                        if_false: BlockId(1),
                    },
                },
                Block {
                    instrs: vec![],
                    term: Terminator::Halt,
                },
            ],
            entry: BlockId(0),
        };
        let f = build(&prog);
        let after_branch = f.point_id[&Point {
            block: BlockId(0),
            index: 2,
        }];
        assert!(f.no_moves.contains(&after_branch));
        // Branch operand fact exists.
        assert!(f.facts.iter().any(|x| matches!(x, Fact::BranchUse { .. })));
    }

    #[test]
    fn copy_crosses_cfg_edges() {
        // t0 defined in block 0, used in block 1: Copy entries must link
        // the after-branch point to the target entry.
        let prog = Program {
            blocks: vec![
                Block {
                    instrs: vec![Instr::Imm { dst: t(0), val: 1 }],
                    term: Terminator::Jump(BlockId(1)),
                },
                Block {
                    instrs: vec![Instr::MemWrite {
                        space: MemSpace::Sram,
                        addr: Addr::Imm(0),
                        src: vec![t(0)],
                    }],
                    term: Terminator::Halt,
                },
            ],
            entry: BlockId(0),
        };
        let f = build(&prog);
        let after = f.point_id[&Point {
            block: BlockId(0),
            index: 2,
        }];
        let entry1 = f.point_id[&Point {
            block: BlockId(1),
            index: 0,
        }];
        assert!(f.copy.contains(&(after, entry1, t(0))));
    }
}
