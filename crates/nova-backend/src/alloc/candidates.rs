//! §8 "A million variables": static pruning of bank candidates.
//!
//! Without pruning, every temporary gets `Move` variables over all 7×7
//! bank pairs at every point — the paper's back-of-the-envelope million
//! variables. The fix is a static analysis of how each temporary is
//! defined and used:
//!
//! * a load transfer bank (`L`, `LD`) is only reachable through a memory
//!   read, so only read results can ever be there;
//! * a store transfer bank (`S`, `SD`) is only useful for values that some
//!   store (or hash/test-and-set) consumes from it;
//! * the scratch spill "bank" `M` is a candidate only when spilling is
//!   enabled;
//! * `A` and `B` are always candidates.
//!
//! Clone-set members share their candidates (a clone starts wherever its
//! original is).

use super::facts::{Fact, Facts};
use ixp_machine::{MemSpace, Temp};
use std::collections::{HashMap, HashSet};

/// The seven locations of the ILP model: the six physical banks plus the
/// scratch spill space `M` (§5.2's `GBank = {A, B, M}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IlpBank {
    /// General-purpose bank A.
    A,
    /// General-purpose bank B.
    B,
    /// SRAM/scratch load transfer bank.
    L,
    /// SRAM/scratch store transfer bank.
    S,
    /// SDRAM load transfer bank.
    Ld,
    /// SDRAM store transfer bank.
    Sd,
    /// Spill memory (on-chip scratch), unlimited capacity.
    M,
}

impl IlpBank {
    /// All seven locations.
    pub const ALL: [IlpBank; 7] = [
        IlpBank::A,
        IlpBank::B,
        IlpBank::L,
        IlpBank::S,
        IlpBank::Ld,
        IlpBank::Sd,
        IlpBank::M,
    ];

    /// The four transfer banks (`XBank`).
    pub const TRANSFER: [IlpBank; 4] = [IlpBank::L, IlpBank::S, IlpBank::Ld, IlpBank::Sd];

    /// Is this a transfer bank?
    pub fn is_transfer(self) -> bool {
        matches!(self, IlpBank::L | IlpBank::S | IlpBank::Ld | IlpBank::Sd)
    }

    /// ALU-readable locations.
    pub fn alu_readable(self) -> bool {
        matches!(self, IlpBank::A | IlpBank::B | IlpBank::L | IlpBank::Ld)
    }

    /// ALU-writable locations.
    pub fn alu_writable(self) -> bool {
        matches!(self, IlpBank::A | IlpBank::B | IlpBank::S | IlpBank::Sd)
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            IlpBank::A => "A",
            IlpBank::B => "B",
            IlpBank::L => "L",
            IlpBank::S => "S",
            IlpBank::Ld => "LD",
            IlpBank::Sd => "SD",
            IlpBank::M => "M",
        }
    }
}

impl std::fmt::Display for IlpBank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Candidate banks per temporary.
#[derive(Debug, Default)]
pub struct Candidates {
    map: HashMap<Temp, HashSet<IlpBank>>,
}

impl Candidates {
    /// The candidate set of a temporary (empty for unknown temps).
    pub fn of(&self, t: Temp) -> HashSet<IlpBank> {
        self.map.get(&t).cloned().unwrap_or_default()
    }

    /// Is `b` a candidate for `t`?
    pub fn allows(&self, t: Temp, b: IlpBank) -> bool {
        self.map.get(&t).is_some_and(|s| s.contains(&b))
    }

    /// Total candidate-set size (model-size statistic for E8).
    pub fn total(&self) -> usize {
        self.map.values().map(|s| s.len()).sum()
    }
}

/// Compute candidates with §8 pruning.
pub fn prune(facts: &Facts, allow_spill: bool) -> Candidates {
    let mut map: HashMap<Temp, HashSet<IlpBank>> = HashMap::new();
    let add = |t: Temp, b: IlpBank, map: &mut HashMap<Temp, HashSet<IlpBank>>| {
        map.entry(t).or_default().insert(b);
    };
    // Everything that exists gets A and B (and M when spilling).
    for (_, t) in facts.exists_pairs() {
        add(t, IlpBank::A, &mut map);
        add(t, IlpBank::B, &mut map);
        if allow_spill {
            add(t, IlpBank::M, &mut map);
        }
    }
    for fact in &facts.facts {
        match fact {
            Fact::ReadAgg { space, dsts, .. } => {
                let b = load_bank(*space);
                for d in dsts {
                    add(*d, b, &mut map);
                    // Even never-used members exist at the post point.
                    add(*d, IlpBank::A, &mut map);
                    add(*d, IlpBank::B, &mut map);
                    if allow_spill {
                        add(*d, IlpBank::M, &mut map);
                    }
                }
            }
            Fact::WriteAgg { space, srcs, .. } => {
                let b = store_bank(*space);
                for s in srcs {
                    add(*s, b, &mut map);
                }
            }
            Fact::SameReg { dst, src, .. } => {
                add(*dst, IlpBank::L, &mut map);
                add(*src, IlpBank::S, &mut map);
            }
            _ => {}
        }
    }
    // Clone groups share candidates.
    let groups = clone_groups(facts);
    for group in groups.values() {
        let mut union: HashSet<IlpBank> = HashSet::new();
        for m in group {
            if let Some(s) = map.get(m) {
                union.extend(s.iter().copied());
            }
        }
        for m in group {
            map.insert(*m, union.clone());
        }
    }
    Candidates { map }
}

/// Compute candidates without §8 pruning: every temporary may inhabit any
/// location. Used by the E8 ablation to measure the model-size blowup.
pub fn unpruned(facts: &Facts, allow_spill: bool) -> Candidates {
    let mut map: HashMap<Temp, HashSet<IlpBank>> = HashMap::new();
    for (_, t) in facts.exists_pairs() {
        let mut s: HashSet<IlpBank> = IlpBank::ALL.into_iter().collect();
        if !allow_spill {
            s.remove(&IlpBank::M);
        }
        map.insert(t, s);
    }
    Candidates { map }
}

/// Union-find style clone groups: maps each member to its full group.
pub fn clone_groups(facts: &Facts) -> HashMap<Temp, Vec<Temp>> {
    let mut parent: HashMap<Temp, Temp> = HashMap::new();
    fn find(parent: &mut HashMap<Temp, Temp>, t: Temp) -> Temp {
        let p = *parent.get(&t).unwrap_or(&t);
        if p == t {
            t
        } else {
            let r = find(parent, p);
            parent.insert(t, r);
            r
        }
    }
    for (d, s) in &facts.clones {
        let rd = find(&mut parent, *d);
        let rs = find(&mut parent, *s);
        if rd != rs {
            parent.insert(rd, rs);
        }
    }
    let mut groups: HashMap<Temp, Vec<Temp>> = HashMap::new();
    let members: HashSet<Temp> = facts.clones.iter().flat_map(|(d, s)| [*d, *s]).collect();
    let mut by_root: HashMap<Temp, Vec<Temp>> = HashMap::new();
    for m in members {
        let r = find(&mut parent, m);
        by_root.entry(r).or_default().push(m);
    }
    for (_, mut v) in by_root {
        v.sort();
        for m in &v {
            groups.insert(*m, v.clone());
        }
    }
    groups
}

/// Load-side ILP bank of a space.
pub fn load_bank(space: MemSpace) -> IlpBank {
    match space {
        MemSpace::Sram | MemSpace::Scratch => IlpBank::L,
        MemSpace::Sdram => IlpBank::Ld,
    }
}

/// Store-side ILP bank of a space.
pub fn store_bank(space: MemSpace) -> IlpBank {
    match space {
        MemSpace::Sram | MemSpace::Scratch => IlpBank::S,
        MemSpace::Sdram => IlpBank::Sd,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::facts::build;
    use ixp_machine::{Addr, Block, BlockId, Instr, Program, Terminator};

    fn t(i: u32) -> Temp {
        Temp(i)
    }

    #[test]
    fn section8_example() {
        // "if a temporary is loaded from SRAM and never stored back
        // anywhere, there is no reason for it to ever be in S, SD, or LD."
        let prog = Program {
            blocks: vec![Block {
                instrs: vec![
                    Instr::MemRead {
                        space: MemSpace::Sram,
                        addr: Addr::Imm(0),
                        dst: vec![t(0)],
                    },
                    Instr::Alu {
                        op: ixp_machine::AluOp::Add,
                        dst: t(1),
                        a: t(0),
                        b: ixp_machine::AluSrc::Imm(1),
                    },
                    Instr::MemWrite {
                        space: MemSpace::Sdram,
                        addr: Addr::Imm(0),
                        src: vec![t(1), t(1)],
                    },
                ],
                term: Terminator::Halt,
            }],
            entry: BlockId(0),
        };
        let f = build(&prog);
        let c = prune(&f, true);
        let c0 = c.of(t(0));
        assert!(c0.contains(&IlpBank::L));
        assert!(c0.contains(&IlpBank::A) && c0.contains(&IlpBank::B));
        assert!(c0.contains(&IlpBank::M));
        assert!(!c0.contains(&IlpBank::S), "never stored to sram");
        assert!(!c0.contains(&IlpBank::Sd), "never stored to sdram");
        assert!(!c0.contains(&IlpBank::Ld), "not an sdram read result");
        let c1 = c.of(t(1));
        assert!(c1.contains(&IlpBank::Sd), "stored to sdram");
        assert!(!c1.contains(&IlpBank::L), "not a read result");
    }

    #[test]
    fn pruning_shrinks_versus_unpruned() {
        let prog = Program {
            blocks: vec![Block {
                instrs: vec![
                    Instr::MemRead {
                        space: MemSpace::Sram,
                        addr: Addr::Imm(0),
                        dst: vec![t(0), t(1)],
                    },
                    Instr::MemWrite {
                        space: MemSpace::Sram,
                        addr: Addr::Imm(8),
                        src: vec![t(0), t(1)],
                    },
                ],
                term: Terminator::Halt,
            }],
            entry: BlockId(0),
        };
        let f = build(&prog);
        let pruned = prune(&f, true);
        let full = unpruned(&f, true);
        assert!(pruned.total() < full.total());
    }

    #[test]
    fn no_spill_drops_m() {
        let prog = Program {
            blocks: vec![Block {
                instrs: vec![Instr::Imm { dst: t(0), val: 1 }],
                term: Terminator::Halt,
            }],
            entry: BlockId(0),
        };
        let f = build(&prog);
        let c = prune(&f, false);
        assert!(!c.of(t(0)).contains(&IlpBank::M));
    }

    #[test]
    fn clone_groups_share_candidates() {
        let prog = Program {
            blocks: vec![Block {
                instrs: vec![
                    Instr::MemRead {
                        space: MemSpace::Sram,
                        addr: Addr::Imm(0),
                        dst: vec![t(0)],
                    },
                    Instr::Clone {
                        dst: t(1),
                        src: t(0),
                    },
                    Instr::MemWrite {
                        space: MemSpace::Sram,
                        addr: Addr::Imm(8),
                        src: vec![t(1)],
                    },
                    Instr::MemWrite {
                        space: MemSpace::Sdram,
                        addr: Addr::Imm(0),
                        src: vec![t(0), t(0)],
                    },
                ],
                term: Terminator::Halt,
            }],
            entry: BlockId(0),
        };
        let f = build(&prog);
        let c = prune(&f, false);
        // t1 inherits t0's L and Sd; t0 inherits t1's S.
        assert!(c.of(t(1)).contains(&IlpBank::L));
        assert!(c.of(t(0)).contains(&IlpBank::S));
        let groups = clone_groups(&f);
        assert_eq!(groups[&t(0)], vec![t(0), t(1)]);
    }
}
