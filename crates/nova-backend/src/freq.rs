//! Static execution-frequency estimation (§7).
//!
//! "For each point we compute a static frequency estimation based on loop
//! nesting and branch probabilities using the Dempster-Shafer theory to
//! combine probabilities. (Our own variation of the Wu-Larus frequency
//! estimation can cope with irreducible flowgraphs.)"
//!
//! We apply Wu-Larus-style branch heuristics (loop-branch, guard, and
//! opcode heuristics), combine the applicable ones with Dempster-Shafer
//! evidence combination, and then propagate block frequencies with a
//! damped fixpoint iteration instead of the structural interval analysis —
//! iteration converges on irreducible graphs too, which is the property
//! the paper's variation needed.

use ixp_machine::{BlockId, Cond, Program, Temp, Terminator};
use std::collections::{HashMap, HashSet};

/// Per-block execution frequencies (entry block = 1.0).
#[derive(Debug, Clone)]
pub struct Frequencies {
    /// Estimated executions per entry of the program.
    pub block: HashMap<BlockId, f64>,
}

impl Frequencies {
    /// Frequency of a block (0 if unreachable).
    pub fn of(&self, b: BlockId) -> f64 {
        *self.block.get(&b).unwrap_or(&0.0)
    }
}

/// Probability that a branch is taken according to the Wu-Larus
/// loop-branch heuristic.
const LOOP_BRANCH_TAKEN: f64 = 0.88;
/// Opcode heuristic: equality comparisons usually fail.
const EQ_TAKEN: f64 = 0.40;
/// Cap on loop-multiplied frequencies to keep the ILP weights bounded.
const FREQ_CAP: f64 = 1.0e6;

/// Dempster-Shafer combination of two probability estimates for the same
/// binary event (taken/not-taken), as used by Wu-Larus.
pub fn dempster_shafer(p1: f64, p2: f64) -> f64 {
    let num = p1 * p2;
    let denom = p1 * p2 + (1.0 - p1) * (1.0 - p2);
    if denom <= f64::EPSILON {
        0.5
    } else {
        num / denom
    }
}

/// Estimate branch-taken probabilities and block frequencies.
pub fn estimate(prog: &Program<Temp>) -> Frequencies {
    let n = prog.blocks.len();
    let back_edges = find_back_edges(prog);
    // Taken-probability per block with a Branch terminator.
    let mut taken: HashMap<BlockId, f64> = HashMap::new();
    for (i, b) in prog.blocks.iter().enumerate() {
        let bid = BlockId(i as u32);
        if let Terminator::Branch {
            cond,
            if_true,
            if_false,
            ..
        } = &b.term
        {
            let mut evidence: Vec<f64> = Vec::new();
            // Loop-branch heuristic: prefer the edge that stays in the loop.
            let t_back = back_edges.contains(&(bid, *if_true));
            let f_back = back_edges.contains(&(bid, *if_false));
            if t_back && !f_back {
                evidence.push(LOOP_BRANCH_TAKEN);
            } else if f_back && !t_back {
                evidence.push(1.0 - LOOP_BRANCH_TAKEN);
            }
            // Opcode heuristic: `==` rarely true, `!=` usually true.
            match cond {
                Cond::Eq => evidence.push(EQ_TAKEN),
                Cond::Ne => evidence.push(1.0 - EQ_TAKEN),
                _ => {}
            }
            // Return/exit heuristic: an arm that halts immediately is cold.
            let halts = |t: &BlockId| {
                matches!(prog.blocks[t.index()].term, Terminator::Halt)
                    && prog.blocks[t.index()].instrs.is_empty()
            };
            if halts(if_true) && !halts(if_false) {
                evidence.push(0.3);
            } else if halts(if_false) && !halts(if_true) {
                evidence.push(0.7);
            }
            let p = match evidence.as_slice() {
                [] => 0.5,
                [e] => *e,
                es => es[1..]
                    .iter()
                    .fold(es[0], |acc, &e| dempster_shafer(acc, e)),
            };
            taken.insert(bid, p);
        }
    }
    // Damped power iteration over the flow equations; converges on
    // irreducible graphs (probabilities on back edges are < 1).
    let mut freq = vec![0.0f64; n];
    freq[prog.entry.index()] = 1.0;
    for _ in 0..200 {
        let mut next = vec![0.0f64; n];
        next[prog.entry.index()] = 1.0;
        for (i, b) in prog.blocks.iter().enumerate() {
            let f = freq[i];
            if f == 0.0 {
                continue;
            }
            match &b.term {
                Terminator::Jump(t) => next[t.index()] += f,
                Terminator::Branch {
                    if_true, if_false, ..
                } => {
                    let p = taken[&BlockId(i as u32)];
                    next[if_true.index()] += f * p;
                    next[if_false.index()] += f * (1.0 - p);
                }
                Terminator::Halt => {}
            }
        }
        let mut done = true;
        for i in 0..n {
            let v = next[i].min(FREQ_CAP);
            if (v - freq[i]).abs() > 1e-9 * (1.0 + v.abs()) {
                done = false;
            }
            freq[i] = v;
        }
        if done {
            break;
        }
    }
    Frequencies {
        block: (0..n)
            .map(|i| (BlockId(i as u32), freq[i].max(0.0)))
            .collect(),
    }
}

/// Back edges found by depth-first search from the entry.
fn find_back_edges(prog: &Program<Temp>) -> HashSet<(BlockId, BlockId)> {
    let mut out = HashSet::new();
    let mut state = vec![0u8; prog.blocks.len()]; // 0=unseen 1=active 2=done
    let mut stack: Vec<(BlockId, usize)> = vec![(prog.entry, 0)];
    state[prog.entry.index()] = 1;
    while let Some((b, next)) = stack.pop() {
        let succs = prog.blocks[b.index()].term.successors();
        if next < succs.len() {
            stack.push((b, next + 1));
            let s = succs[next];
            match state[s.index()] {
                0 => {
                    state[s.index()] = 1;
                    stack.push((s, 0));
                }
                1 => {
                    out.insert((b, s));
                }
                _ => {}
            }
        } else {
            state[b.index()] = 2;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixp_machine::{AluSrc, Block, Instr, Temp};

    #[test]
    fn dempster_shafer_properties() {
        // Agreeing evidence strengthens; neutral evidence is identity.
        assert!((dempster_shafer(0.5, 0.7) - 0.7).abs() < 1e-9);
        assert!(dempster_shafer(0.8, 0.8) > 0.8);
        assert!(dempster_shafer(0.2, 0.2) < 0.2);
        // Symmetric.
        assert!((dempster_shafer(0.3, 0.9) - dempster_shafer(0.9, 0.3)).abs() < 1e-12);
    }

    fn t(i: u32) -> Temp {
        Temp(i)
    }

    #[test]
    fn loop_bodies_run_hotter() {
        // L0 -> L1 (loop: ~1/(1-0.88) iterations) -> L2
        let p = Program {
            blocks: vec![
                Block {
                    instrs: vec![],
                    term: Terminator::Jump(BlockId(1)),
                },
                Block {
                    instrs: vec![Instr::Imm { dst: t(0), val: 0 }],
                    term: Terminator::Branch {
                        cond: Cond::Lt,
                        a: t(0),
                        b: AluSrc::Imm(10),
                        if_true: BlockId(1),
                        if_false: BlockId(2),
                    },
                },
                Block {
                    instrs: vec![],
                    term: Terminator::Halt,
                },
            ],
            entry: BlockId(0),
        };
        let f = estimate(&p);
        assert!(f.of(BlockId(1)) > 4.0, "loop head: {}", f.of(BlockId(1)));
        assert!((f.of(BlockId(0)) - 1.0).abs() < 1e-6);
        // Everything that enters the loop eventually leaves it.
        assert!(
            (f.of(BlockId(2)) - 1.0).abs() < 0.05,
            "exit: {}",
            f.of(BlockId(2))
        );
    }

    #[test]
    fn irreducible_graph_converges() {
        // Two blocks jumping into each other's "middle": entry branches to
        // both, each can continue to the other or exit (classic
        // irreducible loop).
        let p = Program {
            blocks: vec![
                Block {
                    instrs: vec![Instr::Imm { dst: t(0), val: 0 }],
                    term: Terminator::Branch {
                        cond: Cond::Lt,
                        a: t(0),
                        b: AluSrc::Imm(1),
                        if_true: BlockId(1),
                        if_false: BlockId(2),
                    },
                },
                Block {
                    instrs: vec![],
                    term: Terminator::Branch {
                        cond: Cond::Gt,
                        a: t(0),
                        b: AluSrc::Imm(5),
                        if_true: BlockId(2),
                        if_false: BlockId(3),
                    },
                },
                Block {
                    instrs: vec![],
                    term: Terminator::Branch {
                        cond: Cond::Gt,
                        a: t(0),
                        b: AluSrc::Imm(7),
                        if_true: BlockId(1),
                        if_false: BlockId(3),
                    },
                },
                Block {
                    instrs: vec![],
                    term: Terminator::Halt,
                },
            ],
            entry: BlockId(0),
        };
        let f = estimate(&p);
        for i in 0..4 {
            let v = f.of(BlockId(i));
            assert!(v.is_finite() && v >= 0.0, "block {i}: {v}");
        }
    }

    #[test]
    fn unreachable_blocks_have_zero_frequency() {
        let p = Program {
            blocks: vec![
                Block {
                    instrs: vec![],
                    term: Terminator::Halt,
                },
                Block {
                    instrs: vec![],
                    term: Terminator::Halt,
                }, // unreachable
            ],
            entry: BlockId(0),
        };
        let f = estimate(&p);
        assert_eq!(f.of(BlockId(1)), 0.0);
    }
}
