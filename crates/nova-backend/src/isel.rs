//! Instruction selection: CPS → IXP flowgraph over virtual registers.
//!
//! After optimization and SSU, every `App` target is a static label and
//! the surviving CPS functions are exactly the join points, loop headers,
//! and handlers of the program — i.e. its basic blocks. Selection maps:
//!
//! * each CPS function (and each `If` arm) to a [`Block`];
//! * each `App` to a *parallel move* of the arguments into the callee's
//!   parameter temporaries followed by a jump (cycles are broken with a
//!   fresh temporary);
//! * constants to `immed` loads into fresh temporaries (shift amounts and
//!   branch comparands stay immediate);
//! * `clone` pseudo-ops to [`Instr::Clone`], which the ILP allocator
//!   erases or materializes.
//!
//! CPS variables map to machine [`Temp`]s by id, preserving the SSA/SSU
//! properties the ILP model depends on (§9).

use ixp_machine::{Addr, AluOp, AluSrc, Block, BlockId, Instr, Program, Temp, Terminator};
use nova_cps::{Cps, CpsFun, FnId, PrimOp, Term, Value, VarId};
use std::collections::HashMap;

/// Instruction-selection failure (an invariant the middle end should have
/// established was violated).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IselError(pub String);

impl std::fmt::Display for IselError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "instruction selection: {}", self.0)
    }
}

impl std::error::Error for IselError {}

/// Select instructions for a whole CPS program.
///
/// # Errors
///
/// Fails if a dynamic call target survives (the optimizer's label
/// specialization should have removed them all) or a label is used as data.
pub fn select(cps: &Cps) -> Result<Program<Temp>, IselError> {
    let mut funs: HashMap<FnId, CpsFun> = HashMap::new();
    collect(&cps.body, &mut funs);
    let mut cx = Isel {
        blocks: Vec::new(),
        fn_entry: HashMap::new(),
        params: HashMap::new(),
        next_temp: cps.next_var,
    };
    let mut fun_order: Vec<&FnId> = funs.keys().collect();
    fun_order.sort();
    let fun_order: Vec<FnId> = fun_order.into_iter().copied().collect();
    for id in &fun_order {
        let f = &funs[id];
        let b = cx.alloc_block();
        cx.fn_entry.insert(*id, b);
        cx.params
            .insert(*id, f.params.iter().map(|p| Temp(p.0)).collect());
    }
    // The top-level body is the entry block.
    let entry = cx.alloc_block();
    let (instrs, term) = cx.lower(&cps.body)?;
    cx.blocks[entry.index()] = Some(Block { instrs, term });
    // Lower every function body into its entry block (deterministic order).
    for id in &fun_order {
        let f = &funs[id];
        let b = cx.fn_entry[id];
        let (instrs, term) = cx.lower(&f.body)?;
        cx.blocks[b.index()] = Some(Block { instrs, term });
    }
    let blocks: Vec<Block<Temp>> = cx
        .blocks
        .into_iter()
        .enumerate()
        .map(|(i, b)| b.ok_or_else(|| IselError(format!("block {i} was never lowered"))))
        .collect::<Result<_, _>>()?;
    Ok(Program { blocks, entry })
}

fn collect(t: &Term, out: &mut HashMap<FnId, CpsFun>) {
    match t {
        Term::Fix { funs, body } => {
            for f in funs {
                out.insert(f.id, f.clone());
                collect(&f.body, out);
            }
            collect(body, out);
        }
        Term::Let { body, .. } | Term::MemRead { body, .. } | Term::MemWrite { body, .. } => {
            collect(body, out)
        }
        Term::If { t, f, .. } => {
            collect(t, out);
            collect(f, out);
        }
        Term::App { .. } | Term::Halt => {}
    }
}

struct Isel {
    blocks: Vec<Option<Block<Temp>>>,
    fn_entry: HashMap<FnId, BlockId>,
    params: HashMap<FnId, Vec<Temp>>,
    next_temp: u32,
}

impl Isel {
    fn alloc_block(&mut self) -> BlockId {
        self.blocks.push(None);
        BlockId((self.blocks.len() - 1) as u32)
    }

    fn fresh(&mut self) -> Temp {
        self.next_temp += 1;
        Temp(self.next_temp - 1)
    }

    /// Get a register for a value, materializing constants with `immed`.
    fn reg(&mut self, v: Value, instrs: &mut Vec<Instr<Temp>>) -> Result<Temp, IselError> {
        match v {
            Value::Var(x) => Ok(Temp(x.0)),
            Value::Const(c) => {
                let t = self.fresh();
                instrs.push(Instr::Imm { dst: t, val: c });
                Ok(t)
            }
            Value::Label(l) => Err(IselError(format!(
                "label {l} used as data (dynamic control flow is not supported by the IXP back end)"
            ))),
        }
    }

    fn addr(&mut self, v: Value, instrs: &mut Vec<Instr<Temp>>) -> Result<Addr<Temp>, IselError> {
        match v {
            Value::Const(c) => Ok(Addr::Imm(c)),
            Value::Var(x) => Ok(Addr::Reg(Temp(x.0), 0)),
            Value::Label(_) => {
                let _ = instrs;
                Err(IselError("label used as address".into()))
            }
        }
    }

    fn lower(&mut self, t: &Term) -> Result<(Vec<Instr<Temp>>, Terminator<Temp>), IselError> {
        let mut instrs = Vec::new();
        let term = self.lower_into(t, &mut instrs)?;
        Ok((instrs, term))
    }

    fn lower_into(
        &mut self,
        t: &Term,
        instrs: &mut Vec<Instr<Temp>>,
    ) -> Result<Terminator<Temp>, IselError> {
        match t {
            Term::Halt => Ok(Terminator::Halt),
            Term::Fix { body, .. } => self.lower_into(body, instrs),
            Term::Let {
                op,
                args,
                dsts,
                body,
            } => {
                self.lower_prim(*op, args, dsts, instrs)?;
                self.lower_into(body, instrs)
            }
            Term::MemRead {
                space,
                addr,
                dsts,
                body,
            } => {
                let addr = self.addr(*addr, instrs)?;
                instrs.push(Instr::MemRead {
                    space: *space,
                    addr,
                    dst: dsts.iter().map(|d| Temp(d.0)).collect(),
                });
                self.lower_into(body, instrs)
            }
            Term::MemWrite {
                space,
                addr,
                srcs,
                body,
            } => {
                let addr = self.addr(*addr, instrs)?;
                let mut regs = Vec::new();
                for s in srcs {
                    regs.push(self.reg(*s, instrs)?);
                }
                instrs.push(Instr::MemWrite {
                    space: *space,
                    addr,
                    src: regs,
                });
                self.lower_into(body, instrs)
            }
            Term::If { cmp, a, b, t, f } => {
                // Identical comparands are decided by reflexivity (the
                // hardware cannot read one register into both ports).
                if a == b {
                    let taken = cmp.eval(0, 0);
                    return self.lower_into(if taken { t } else { f }, instrs);
                }
                // Ensure the left comparand is a register.
                let (cmp, a, b) = match (a, b) {
                    (Value::Const(_), Value::Var(_)) => (cmp.swap(), *b, *a),
                    _ => (*cmp, *a, *b),
                };
                let ra = self.reg(a, instrs)?;
                let rb = match b {
                    Value::Const(c) => AluSrc::Imm(c),
                    other => AluSrc::Reg(self.reg(other, instrs)?),
                };
                let (ti, tt) = self.lower(t)?;
                let tb = self.alloc_block();
                self.blocks[tb.index()] = Some(Block {
                    instrs: ti,
                    term: tt,
                });
                let (fi, ft) = self.lower(f)?;
                let fb = self.alloc_block();
                self.blocks[fb.index()] = Some(Block {
                    instrs: fi,
                    term: ft,
                });
                Ok(Terminator::Branch {
                    cond: cmp,
                    a: ra,
                    b: rb,
                    if_true: tb,
                    if_false: fb,
                })
            }
            Term::App { f, args } => {
                let Value::Label(target) = f else {
                    return Err(IselError(
                        "dynamic call target survived optimization".into(),
                    ));
                };
                let Some(params) = self.params.get(target).cloned() else {
                    return Err(IselError(format!("call to unknown function {target}")));
                };
                if params.len() != args.len() {
                    return Err(IselError(format!(
                        "arity mismatch calling {target}: {} vs {}",
                        params.len(),
                        args.len()
                    )));
                }
                self.parallel_move(&params, args, instrs)?;
                Ok(Terminator::Jump(self.fn_entry[target]))
            }
        }
    }

    fn lower_prim(
        &mut self,
        op: PrimOp,
        args: &[Value],
        dsts: &[VarId],
        instrs: &mut Vec<Instr<Temp>>,
    ) -> Result<(), IselError> {
        let d = |i: usize| Temp(dsts[i].0);
        match op {
            PrimOp::Alu(mut alu) => {
                // Same-variable operands cannot feed both ALU ports
                // (§1.1); rewrite them. The optimizer normally folds these
                // away, but instruction selection stays safe without it.
                let mut args = [args[0], args[1]];
                if args[0] == args[1] && matches!(args[0], Value::Var(_)) {
                    match alu {
                        AluOp::Add => {
                            alu = AluOp::Shl;
                            args[1] = Value::Const(1);
                        }
                        AluOp::And | AluOp::Or | AluOp::B => {
                            let s = self.reg(args[0], instrs)?;
                            instrs.push(Instr::Move { dst: d(0), src: s });
                            return Ok(());
                        }
                        AluOp::Xor | AluOp::Sub | AluOp::AndNot => {
                            instrs.push(Instr::Imm { dst: d(0), val: 0 });
                            return Ok(());
                        }
                        AluOp::Shl | AluOp::Shr => {}
                    }
                }
                // Shift amounts may stay immediate (`alu_shf`); all other
                // constant operands are materialized.
                let a = self.reg(args[0], instrs)?;
                let b = match (alu, args[1]) {
                    (AluOp::Shl | AluOp::Shr, Value::Const(c)) if c < 32 => AluSrc::Imm(c),
                    (_, v) => AluSrc::Reg(self.reg(v, instrs)?),
                };
                instrs.push(Instr::Alu {
                    op: alu,
                    dst: d(0),
                    a,
                    b,
                });
            }
            PrimOp::Move => match args[0] {
                Value::Const(c) => instrs.push(Instr::Imm { dst: d(0), val: c }),
                v => {
                    let s = self.reg(v, instrs)?;
                    instrs.push(Instr::Move { dst: d(0), src: s });
                }
            },
            PrimOp::Clone => {
                let s = self.reg(args[0], instrs)?;
                instrs.push(Instr::Clone { dst: d(0), src: s });
            }
            PrimOp::Hash => {
                let s = self.reg(args[0], instrs)?;
                instrs.push(Instr::Hash { dst: d(0), src: s });
            }
            PrimOp::BitTestSet => {
                let addr = self.addr(args[0], instrs)?;
                let s = self.reg(args[1], instrs)?;
                instrs.push(Instr::TestAndSet {
                    dst: d(0),
                    src: s,
                    addr,
                });
            }
            PrimOp::CsrRead => {
                let Value::Const(csr) = args[0] else {
                    return Err(IselError("csr number must be constant".into()));
                };
                instrs.push(Instr::CsrRead { dst: d(0), csr });
            }
            PrimOp::CsrWrite => {
                let Value::Const(csr) = args[0] else {
                    return Err(IselError("csr number must be constant".into()));
                };
                let s = self.reg(args[1], instrs)?;
                instrs.push(Instr::CsrWrite { src: s, csr });
            }
            PrimOp::RxPacket => {
                instrs.push(Instr::RxPacket {
                    len_dst: d(0),
                    addr_dst: d(1),
                });
            }
            PrimOp::TxPacket => {
                let a = self.reg(args[0], instrs)?;
                let l = self.reg(args[1], instrs)?;
                instrs.push(Instr::TxPacket { addr: a, len: l });
            }
            PrimOp::CtxSwap => instrs.push(Instr::CtxSwap),
        }
        Ok(())
    }

    /// Emit a parallel move of `args` into `params`, breaking cycles with a
    /// fresh temporary and loading constants after all register moves.
    fn parallel_move(
        &mut self,
        params: &[Temp],
        args: &[Value],
        instrs: &mut Vec<Instr<Temp>>,
    ) -> Result<(), IselError> {
        // Pending register-to-register transfers dst <- src.
        let mut moves: Vec<(Temp, Temp)> = Vec::new();
        let mut consts: Vec<(Temp, u32)> = Vec::new();
        for (p, a) in params.iter().zip(args) {
            match a {
                Value::Var(x) if Temp(x.0) != *p => moves.push((*p, Temp(x.0))),
                Value::Var(_) => {} // self-carry
                Value::Const(c) => consts.push((*p, *c)),
                Value::Label(l) => {
                    return Err(IselError(format!(
                        "label {l} passed as runtime argument (specialization failed)"
                    )))
                }
            }
        }
        // Emit moves whose destination is not a pending source; break
        // cycles through a scratch temporary.
        while !moves.is_empty() {
            let ready = moves
                .iter()
                .position(|(d, _)| !moves.iter().any(|(_, s)| s == d));
            match ready {
                Some(i) => {
                    let (d, s) = moves.remove(i);
                    instrs.push(Instr::Move { dst: d, src: s });
                }
                None => {
                    // Cycle: rotate through a fresh temporary.
                    let (d, s) = moves.remove(0);
                    let tmp = self.fresh();
                    instrs.push(Instr::Move { dst: tmp, src: d });
                    instrs.push(Instr::Move { dst: d, src: s });
                    for m in &mut moves {
                        if m.1 == d {
                            m.1 = tmp;
                        }
                    }
                }
            }
        }
        for (p, c) in consts {
            instrs.push(Instr::Imm { dst: p, val: c });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_cps::{convert, optimize, to_ssu, OptConfig};
    use nova_frontend::{check, parse};

    pub(crate) fn compile_to_temps(src: &str) -> Program<Temp> {
        let p = parse(src).unwrap_or_else(|d| panic!("parse: {}", d.render(src)));
        let info = check(&p).unwrap_or_else(|d| panic!("check: {}", d.render(src)));
        let mut cps = convert(&p, &info).unwrap();
        optimize(&mut cps, &OptConfig::default());
        to_ssu(&mut cps);
        select(&cps).unwrap_or_else(|e| panic!("{e}"))
    }

    #[test]
    fn straight_line_selects() {
        let p = compile_to_temps("fun main() { let (a, b) = sram(0); sram(10) <- (a + b); 0 }");
        let s = format!("{p}");
        assert!(s.contains("sram.read"), "{s}");
        assert!(s.contains("add"), "{s}");
        assert!(s.contains("sram.write"), "{s}");
        assert!(s.contains("halt"), "{s}");
    }

    #[test]
    fn branches_create_blocks() {
        let p = compile_to_temps(
            "fun main() { let (x) = sram(0); if (x > 3) { sram(1) <- (x); } else { sram(2) <- (x); }; 0 }",
        );
        assert!(p.blocks.len() >= 3, "{p}");
        let s = format!("{p}");
        assert!(s.contains("br.gt") || s.contains("br.le"), "{s}");
    }

    #[test]
    fn loops_jump_backwards() {
        let p = compile_to_temps(
            "fun main() { let i = 0; while (i < 5) { i = i + 1; } sram(0) <- (i); 0 }",
        );
        let s = format!("{p}");
        assert!(s.contains("br "), "{s}");
    }

    #[test]
    fn constants_materialize_via_immed() {
        let p = compile_to_temps("fun main() { let (a) = sram(0); sram(1) <- (a + 1000000); 0 }");
        let s = format!("{p}");
        assert!(s.contains("immed"), "{s}");
    }

    #[test]
    fn shift_amounts_stay_immediate() {
        let p = compile_to_temps("fun main() { let (a) = sram(0); sram(1) <- (a >> 7); 0 }");
        let s = format!("{p}");
        assert!(s.contains("shr") && s.contains("#7"), "{s}");
    }

    #[test]
    fn clone_pseudo_ops_survive_to_flowgraph() {
        let p = compile_to_temps(
            r#"fun main() {
                let (x) = sram(0);
                sram(10) <- (x);
                sram(20) <- (x);
                sram(30) <- (x + 1);
                0
            }"#,
        );
        let s = format!("{p}");
        assert!(s.contains("clone"), "{s}");
    }

    #[test]
    fn parallel_move_handles_swap() {
        // A loop that swaps two variables each iteration forces a cycle in
        // the parameter-passing parallel move.
        let p = compile_to_temps(
            r#"
            fun main() { go(1, 2, 0) }
            fun go(a, b, n) {
                if (n == 4) { sram(0) <- (a, b); 0 }
                else go(b, a, n + 1)
            }
            "#,
        );
        let s = format!("{p}");
        assert!(s.contains("mov"), "{s}");
    }

    #[test]
    fn packet_intrinsics_select() {
        let p = compile_to_temps(
            "fun main() { let (l, a) = rx_packet(); tx_packet(a, l); ctx_swap(); main() }",
        );
        let s = format!("{p}");
        assert!(s.contains("rx_packet"), "{s}");
        assert!(s.contains("tx_packet"), "{s}");
        assert!(s.contains("ctx_arb"), "{s}");
    }
}
