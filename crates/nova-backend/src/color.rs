//! Post-ILP register assignment for the A and B banks (§9).
//!
//! "In the work of Appel and George the program generated from the results
//! of integer-linear programming satisfied the K constraints, and
//! subsequent coloring phases were used to assign registers using a
//! variation of the Park and Moon optimistic coalescing. We use the same
//! approach for the A and B bank..."
//!
//! The ILP bounded simultaneous A-residents by 15 (one spare for
//! parallel-copy cycles), so the interference graphs here are colorable
//! with the full 16 registers in practice. The implementation is
//! Chaitin-Briggs simplify/select with an optimistic-coalescing ladder:
//! first coalesce aggressively (Park-Moon style), and if select fails,
//! retry with conservative (Briggs) coalescing, then with none.
//! Clone-set members are *mandatorily* unioned — they carry the same
//! value, so sharing a register is always sound and realizes the paper's
//! "clones do not interfere".

use crate::alloc::extract::Placed;
use crate::liveness::analyze;
use ixp_machine::{Bank, Instr, PhysReg, Temp};
use std::collections::{HashMap, HashSet};

/// Coloring failure: the interference graph needed more registers than
/// the bank provides (would indicate an ILP model bug, since the K
/// constraints bound simultaneous residency).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColorError(pub String);

impl std::fmt::Display for ColorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "A/B coloring: {}", self.0)
    }
}

impl std::error::Error for ColorError {}

/// Statistics of the coloring phase.
#[derive(Debug, Clone, Default)]
pub struct ColorStats {
    /// Move-related pairs successfully coalesced (same register).
    pub coalesced: usize,
    /// Nodes colored in bank A / bank B.
    pub a_nodes: usize,
    /// Nodes colored in bank B.
    pub b_nodes: usize,
}

struct Uf {
    parent: HashMap<Temp, Temp>,
}

impl Uf {
    fn new() -> Self {
        Uf {
            parent: HashMap::new(),
        }
    }

    fn find(&mut self, t: Temp) -> Temp {
        let p = *self.parent.get(&t).unwrap_or(&t);
        if p == t {
            t
        } else {
            let r = self.find(p);
            self.parent.insert(t, r);
            r
        }
    }

    fn union(&mut self, a: Temp, b: Temp) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }
}

/// Assign A/B registers to the segmented program.
///
/// # Errors
///
/// Returns [`ColorError`] when a bank's interference graph cannot be
/// colored even without coalescing.
pub fn assign_ab(placed: &Placed) -> Result<(HashMap<Temp, PhysReg>, ColorStats), ColorError> {
    let mut stats = ColorStats::default();
    let mut out: HashMap<Temp, PhysReg> = HashMap::new();
    for bank in [Bank::A, Bank::B] {
        let nodes: HashSet<Temp> = placed
            .seg_bank
            .iter()
            .filter(|(t, b)| **b == bank && !placed.fixed.contains_key(t))
            .map(|(t, _)| *t)
            .collect();
        if nodes.is_empty() {
            continue;
        }
        // Mandatory clone unions.
        let mut uf = Uf::new();
        for (a, b) in &placed.ab_aliases {
            if nodes.contains(a) && nodes.contains(b) {
                uf.union(*a, *b);
            }
        }
        // Interference: pairs simultaneously live (per-point), skipping
        // same-root pairs (clones share their value).
        let liveness = analyze(&placed.prog);
        let mut edges: HashMap<Temp, HashSet<Temp>> = HashMap::new();
        let add_edge = |uf: &mut Uf, edges: &mut HashMap<Temp, HashSet<Temp>>, x: Temp, y: Temp| {
            let rx = uf.find(x);
            let ry = uf.find(y);
            if rx != ry {
                edges.entry(rx).or_default().insert(ry);
                edges.entry(ry).or_default().insert(rx);
            }
        };
        for set in liveness.live.values() {
            let in_bank: Vec<Temp> = set.iter().filter(|t| nodes.contains(t)).copied().collect();
            for i in 0..in_bank.len() {
                for j in (i + 1)..in_bank.len() {
                    add_edge(&mut uf, &mut edges, in_bank[i], in_bank[j]);
                }
            }
        }
        // Definitions interfere with everything live after them.
        for (bi, b) in placed.prog.blocks.iter().enumerate() {
            for (ii, ins) in b.instrs.iter().enumerate() {
                let post = crate::liveness::Point {
                    block: ixp_machine::BlockId(bi as u32),
                    index: ii as u32 + 1,
                };
                let Some(live_post) = liveness.live.get(&post) else {
                    return Err(ColorError(format!(
                        "no liveness information at {post} (analysis out of sync)"
                    )));
                };
                for d in ins.defs() {
                    if !nodes.contains(d) {
                        continue;
                    }
                    // Move sources do not interfere with their destination
                    // (classic coalescing exception).
                    let move_src = match ins {
                        Instr::Move { src, .. } => Some(*src),
                        _ => None,
                    };
                    for l in live_post {
                        if nodes.contains(l) && Some(*l) != move_src && l != d {
                            add_edge(&mut uf, &mut edges, *d, *l);
                        }
                    }
                }
            }
        }
        // Move-related pairs (coalescing candidates) within this bank.
        let mut pairs: Vec<(Temp, Temp)> = Vec::new();
        for b in &placed.prog.blocks {
            for ins in &b.instrs {
                if let Instr::Move { dst, src } = ins {
                    if nodes.contains(dst) && nodes.contains(src) {
                        pairs.push((*dst, *src));
                    }
                }
            }
        }
        let k = bank.capacity();
        // Coalescing ladder: aggressive, conservative, none.
        let colors = try_ladder(&nodes, &edges, &pairs, &mut uf, k, &mut stats.coalesced)
            .ok_or_else(|| {
                ColorError(format!(
                    "bank {bank} needs more than {k} registers (graph uncolorable)"
                ))
            })?;
        for t in &nodes {
            let root = uf.find(*t);
            let c = colors
                .get(&root)
                .copied()
                .ok_or_else(|| ColorError(format!("no color for {t} (root {root})")))?;
            out.insert(*t, PhysReg::new(bank, c));
        }
        match bank {
            Bank::A => stats.a_nodes = nodes.len(),
            _ => stats.b_nodes = nodes.len(),
        }
    }
    Ok((out, stats))
}

/// Try coalescing levels from most to least aggressive; return colors for
/// the union-find roots on success.
fn try_ladder(
    nodes: &HashSet<Temp>,
    base_edges: &HashMap<Temp, HashSet<Temp>>,
    pairs: &[(Temp, Temp)],
    uf: &mut Uf,
    k: usize,
    coalesced: &mut usize,
) -> Option<HashMap<Temp, u8>> {
    for level in [2, 1, 0] {
        // Re-derive roots from the mandatory unions only, then apply
        // optional coalescing at this level.
        let mut trial = Uf {
            parent: uf.parent.clone(),
        };
        let mut edges = root_edges(nodes, base_edges, &mut trial);
        let mut did = 0usize;
        if level > 0 {
            for (d, s) in pairs {
                let rd = trial.find(*d);
                let rs = trial.find(*s);
                if rd == rs {
                    continue;
                }
                let interferes = edges.get(&rd).is_some_and(|e| e.contains(&rs));
                if interferes {
                    continue;
                }
                if level == 1 {
                    // Briggs: the merged node must have fewer than k
                    // neighbors of significant degree.
                    let mut nb: HashSet<Temp> = HashSet::new();
                    nb.extend(edges.get(&rd).into_iter().flatten().copied());
                    nb.extend(edges.get(&rs).into_iter().flatten().copied());
                    let heavy = nb
                        .iter()
                        .filter(|n| edges.get(n).map_or(0, |e| e.len()) >= k)
                        .count();
                    if heavy >= k {
                        continue;
                    }
                }
                // Merge rs into rd.
                trial.union(rs, rd);
                let root = trial.find(rd);
                let merged: HashSet<Temp> = edges
                    .get(&rd)
                    .into_iter()
                    .flatten()
                    .chain(edges.get(&rs).into_iter().flatten())
                    .copied()
                    .filter(|n| *n != rd && *n != rs)
                    .collect();
                for n in &merged {
                    let e = edges.entry(*n).or_default();
                    e.remove(&rd);
                    e.remove(&rs);
                    e.insert(root);
                }
                edges.remove(&rd);
                edges.remove(&rs);
                edges.insert(root, merged);
                did += 1;
            }
        }
        if let Some(colors) = color_graph(&edges, k) {
            uf.parent = trial.parent;
            *coalesced += did;
            return Some(colors);
        }
    }
    None
}

fn root_edges(
    nodes: &HashSet<Temp>,
    base: &HashMap<Temp, HashSet<Temp>>,
    uf: &mut Uf,
) -> HashMap<Temp, HashSet<Temp>> {
    let mut out: HashMap<Temp, HashSet<Temp>> = HashMap::new();
    for n in nodes {
        let r = uf.find(*n);
        out.entry(r).or_default();
    }
    for (a, es) in base {
        let ra = uf.find(*a);
        for b in es {
            let rb = uf.find(*b);
            if ra != rb {
                out.entry(ra).or_default().insert(rb);
                out.entry(rb).or_default().insert(ra);
            }
        }
    }
    out
}

/// Chaitin-Briggs simplify/select. Degree ties break on the lower temp
/// id so the assignment is a pure function of the interference graph:
/// identical compiles (and a session-cache re-finish against a cold
/// build) must produce bit-identical registers, which hash-map
/// iteration order would otherwise scramble.
fn color_graph(edges: &HashMap<Temp, HashSet<Temp>>, k: usize) -> Option<HashMap<Temp, u8>> {
    let mut degree: HashMap<Temp, usize> = edges.iter().map(|(t, e)| (*t, e.len())).collect();
    let mut removed: HashSet<Temp> = HashSet::new();
    let mut stack: Vec<Temp> = Vec::new();
    let n = edges.len();
    while stack.len() < n {
        // Pick a node with degree < k among the remaining; otherwise pick
        // the max-degree node optimistically (Briggs).
        let mut pick: Option<(Temp, usize)> = None;
        let mut optimistic: Option<(Temp, usize)> = None;
        for (t, d) in &degree {
            if removed.contains(t) {
                continue;
            }
            if *d < k {
                if pick.is_none_or(|(pt, pd)| *d > pd || (*d == pd && t.0 < pt.0)) {
                    pick = Some((*t, *d));
                }
            } else if optimistic.is_none_or(|(ot, od)| *d < od || (*d == od && t.0 < ot.0)) {
                optimistic = Some((*t, *d));
            }
        }
        let (t, _) = pick.or(optimistic)?;
        removed.insert(t);
        stack.push(t);
        for nb in edges.get(&t).into_iter().flatten() {
            if let Some(d) = degree.get_mut(nb) {
                *d = d.saturating_sub(1);
            }
        }
    }
    let mut colors: HashMap<Temp, u8> = HashMap::new();
    while let Some(t) = stack.pop() {
        let used: HashSet<u8> = edges
            .get(&t)
            .into_iter()
            .flatten()
            .filter_map(|n| colors.get(n).copied())
            .collect();
        let c = (0..k as u8).find(|c| !used.contains(c))?;
        colors.insert(t, c);
    }
    Some(colors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(edges: &[(u32, u32)], nodes: &[u32]) -> HashMap<Temp, HashSet<Temp>> {
        let mut out: HashMap<Temp, HashSet<Temp>> = HashMap::new();
        for n in nodes {
            out.entry(Temp(*n)).or_default();
        }
        for (a, b) in edges {
            out.entry(Temp(*a)).or_default().insert(Temp(*b));
            out.entry(Temp(*b)).or_default().insert(Temp(*a));
        }
        out
    }

    #[test]
    fn colors_triangle_with_three() {
        let edges = g(&[(0, 1), (1, 2), (0, 2)], &[0, 1, 2]);
        let c = color_graph(&edges, 3).unwrap();
        assert_ne!(c[&Temp(0)], c[&Temp(1)]);
        assert_ne!(c[&Temp(1)], c[&Temp(2)]);
        assert_ne!(c[&Temp(0)], c[&Temp(2)]);
        assert!(color_graph(&edges, 2).is_none());
    }

    #[test]
    fn colors_independent_nodes_anyhow() {
        let edges = g(&[], &[0, 1, 2, 3]);
        let c = color_graph(&edges, 1).unwrap();
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn optimistic_beats_pessimistic() {
        // A 4-cycle is 2-colorable even though every node has degree 2.
        let edges = g(&[(0, 1), (1, 2), (2, 3), (3, 0)], &[0, 1, 2, 3]);
        let c = color_graph(&edges, 2).unwrap();
        assert_ne!(c[&Temp(0)], c[&Temp(1)]);
        assert_ne!(c[&Temp(2)], c[&Temp(3)]);
    }
}
