//! Corpus-level differential tests for the ILP-phase hot path: the
//! CSR/`RowBuilder` model generator must produce exactly the model the
//! old `LinExpr` expression-tree path would have, and presolve (with or
//! without cutting planes) must never change the reported optimum on
//! the real allocation models.
//!
//! The small NAT model is solved for real at 1, 2, and 4 worker
//! threads in every build; the benchmark-sized AES/Kasumi solves run
//! only in release builds (`cargo test --release -p bench`) and are
//! `#[ignore]`d in debug, following the tier-1 convention for
//! solver-heavy tests. Structural equality — which is what the CSR
//! rewrite could plausibly break — is checked for all three programs in
//! every build.

use bench::Benchmark;
use ilp::{solve_milp, BranchConfig, LinExpr, Problem, Sense, VarKind};
use nova::CompileConfig;
use nova_backend::alloc::build_model;

/// Build the allocation MILP for one benchmark program exactly the way
/// the staged allocator does: the fully optimized pipeline CPS, pruned
/// candidates, and the automatic spill-machinery drop when register
/// pressure provably fits the general-purpose banks.
fn corpus_problem(b: Benchmark) -> Problem {
    let out = bench::compile(b, &CompileConfig::default());
    let prog = nova_backend::select(&out.cps).unwrap();
    let facts = nova_backend::alloc::build_facts(&prog);
    let freqs = nova_backend::freq::estimate(&prog);
    let mut cfg = CompileConfig::default().alloc;
    let pressure = facts.exists.values().map(|s| s.len()).max().unwrap_or(0);
    if cfg.allow_spill && cfg.spill_auto && pressure + 4 <= cfg.k_a + cfg.k_b {
        cfg.allow_spill = false;
    }
    let mut bm = build_model(&prog, &facts, &freqs, &cfg);
    bm.model.problem().clone()
}

/// Reconstruct `p` through the `LinExpr` compatibility path
/// (`add_constraint`/`add_lazy_constraint`), term by term, from the CSR
/// row views. If the streaming `RowBuilder` path dropped, merged, or
/// reordered anything, the rebuilt problem diverges and the structural
/// and solve comparisons below catch it.
fn rebuild_via_linexpr(p: &Problem) -> Problem {
    let mut q = match p.sense() {
        Sense::Minimize => Problem::minimize(),
        Sense::Maximize => Problem::maximize(),
    };
    let vars: Vec<_> = p
        .var_datas()
        .iter()
        .map(|d| match d.kind {
            VarKind::Integer if d.lower == 0.0 && d.upper == 1.0 => q.add_binary(d.name.clone()),
            VarKind::Integer => q.add_int_var(d.name.clone(), d.lower, d.upper),
            VarKind::Continuous => q.add_var(d.name.clone(), d.lower, d.upper),
        })
        .collect();
    for i in 0..p.num_constraints() {
        let r = p.row_view(i);
        let mut e = LinExpr::new();
        for (&c, &v) in r.cols.iter().zip(r.vals) {
            e.add_term(vars[c as usize], v);
        }
        if r.lazy {
            q.add_lazy_constraint(format!("r{i}"), e, r.cmp, r.rhs);
        } else {
            q.add_constraint(format!("r{i}"), e, r.cmp, r.rhs);
        }
    }
    q.set_objective(p.objective().clone());
    q
}

/// Row-for-row, coefficient-for-coefficient equality.
fn assert_structurally_equal(p: &Problem, q: &Problem, what: &str) {
    assert_eq!(p.num_vars(), q.num_vars(), "{what}: variable count");
    assert_eq!(
        p.num_constraints(),
        q.num_constraints(),
        "{what}: row count"
    );
    assert_eq!(p.num_nonzeros(), q.num_nonzeros(), "{what}: nonzeros");
    for i in 0..p.num_constraints() {
        let (a, b) = (p.row_view(i), q.row_view(i));
        assert_eq!(a.cols, b.cols, "{what}: row {i} columns");
        assert_eq!(a.vals, b.vals, "{what}: row {i} coefficients");
        assert_eq!(a.cmp, b.cmp, "{what}: row {i} comparison");
        assert_eq!(a.rhs, b.rhs, "{what}: row {i} rhs");
        assert_eq!(a.lazy, b.lazy, "{what}: row {i} lazy flag");
    }
}

fn exact(threads: usize) -> BranchConfig {
    let mut cfg = BranchConfig::default().with_threads(threads);
    cfg.relative_gap = 0.0;
    cfg
}

/// Solve both problems at 1/2/4 threads and demand the same objective
/// (exact gap ⇒ the optimum is unique) and mutually feasible solutions.
fn assert_same_solve(p: &Problem, q: &Problem, what: &str) {
    for threads in [1usize, 2, 4] {
        let a = solve_milp(p, &exact(threads))
            .unwrap_or_else(|e| panic!("{what}: CSR model at {threads} threads: {e}"));
        let b = solve_milp(q, &exact(threads))
            .unwrap_or_else(|e| panic!("{what}: rebuilt model at {threads} threads: {e}"));
        assert!(
            (a.objective - b.objective).abs() < 1e-6,
            "{what} at {threads} threads: CSR {} vs expr-tree {}",
            a.objective,
            b.objective
        );
        assert!(p.is_feasible(&b.values, 1e-6), "{what}: cross-feasibility");
        assert!(q.is_feasible(&a.values, 1e-6), "{what}: cross-feasibility");
    }
}

/// Presolve on, presolve off, and cuts off must agree on the optimum,
/// and every reported solution must satisfy the *original* model (the
/// postsolve contract: columns are never renumbered).
fn assert_presolve_transparent(p: &Problem, what: &str) {
    for threads in [1usize, 2, 4] {
        let on = solve_milp(p, &exact(threads))
            .unwrap_or_else(|e| panic!("{what}: presolve on at {threads} threads: {e}"));
        let off = solve_milp(p, &exact(threads).with_presolve(false))
            .unwrap_or_else(|e| panic!("{what}: presolve off at {threads} threads: {e}"));
        let no_cuts = solve_milp(p, &exact(threads).with_cuts(false))
            .unwrap_or_else(|e| panic!("{what}: cuts off at {threads} threads: {e}"));
        for (label, got) in [("presolve off", &off), ("cuts off", &no_cuts)] {
            assert!(
                (on.objective - got.objective).abs() < 1e-6,
                "{what} at {threads} threads: {label} gave {} vs {}",
                got.objective,
                on.objective
            );
        }
        for (label, got) in [("presolve on", &on), ("presolve off", &off)] {
            assert!(
                p.is_feasible(&got.values, 1e-6),
                "{what} at {threads} threads: {label} solution violates the original model"
            );
        }
    }
}

#[test]
fn csr_build_matches_expr_tree_structurally_across_corpus() {
    for b in Benchmark::ALL {
        let p = corpus_problem(b);
        let q = rebuild_via_linexpr(&p);
        assert_structurally_equal(&p, &q, b.name());
    }
}

#[test]
fn nat_csr_and_expr_tree_models_solve_identically() {
    let p = corpus_problem(Benchmark::Nat);
    let q = rebuild_via_linexpr(&p);
    assert_same_solve(&p, &q, "NAT");
}

#[test]
fn nat_presolve_and_cuts_are_transparent() {
    let p = corpus_problem(Benchmark::Nat);
    assert_presolve_transparent(&p, "NAT");
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "benchmark-sized solves; run with --release"
)]
fn aes_kasumi_csr_and_expr_tree_models_solve_identically() {
    for b in [Benchmark::Aes, Benchmark::Kasumi] {
        let p = corpus_problem(b);
        let q = rebuild_via_linexpr(&p);
        assert_same_solve(&p, &q, b.name());
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "benchmark-sized solves; run with --release"
)]
fn aes_kasumi_presolve_and_cuts_are_transparent() {
    for b in [Benchmark::Aes, Benchmark::Kasumi] {
        let p = corpus_problem(b);
        assert_presolve_transparent(&p, b.name());
    }
}
