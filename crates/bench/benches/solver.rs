//! ILP solver benchmarks: root relaxation and full branch-and-bound on
//! the allocator's NAT model (the Figure-7 measurements' engine), plus a
//! pure-solver assignment instance.

use criterion::{criterion_group, criterion_main, Criterion};
use ilp::{BranchConfig, Cmp, LinExpr, Problem};
use std::time::Duration;

fn nat_model(c: &mut Criterion) {
    // Build the NAT model once.
    let src = bench::Benchmark::Nat.source();
    let p = nova_frontend::parse(src).unwrap();
    let info = nova_frontend::check(&p).unwrap();
    let mut cps = nova_cps::convert(&p, &info).unwrap();
    nova_cps::optimize(&mut cps, &Default::default());
    nova_cps::to_ssu(&mut cps);
    let prog = nova_backend::select(&cps).unwrap();
    let facts = nova_backend::alloc::build_facts(&prog);
    let freqs = nova_backend::freq::estimate(&prog);
    let cfg = nova_backend::alloc::AllocConfig {
        allow_spill: false,
        ..Default::default()
    };

    let mut g = c.benchmark_group("nat-model");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(15));
    g.bench_function("build", |b| {
        b.iter(|| {
            let bm = nova_backend::alloc::build_model(&prog, &facts, &freqs, &cfg);
            std::hint::black_box(bm.moves.len())
        })
    });
    g.bench_function("solve-milp", |b| {
        b.iter(|| {
            let mut bm = nova_backend::alloc::build_model(&prog, &facts, &freqs, &cfg);
            let (a, _) = nova_backend::alloc::solve(&mut bm, &cfg).unwrap();
            std::hint::black_box(a.n_moves)
        })
    });
    g.finish();
}

fn assignment_instance(c: &mut Criterion) {
    c.bench_function("milp-assignment-8x8", |b| {
        b.iter(|| {
            let n = 8;
            let mut p = Problem::minimize();
            let mut vars = Vec::new();
            for i in 0..n {
                for j in 0..n {
                    vars.push(p.add_binary(format!("x{i}{j}")));
                }
            }
            for i in 0..n {
                let e = LinExpr::sum((0..n).map(|j| vars[i * n + j]));
                p.add_constraint(format!("r{i}"), e, Cmp::Eq, 1.0);
                let e = LinExpr::sum((0..n).map(|j| vars[j * n + i]));
                p.add_constraint(format!("c{i}"), e, Cmp::Le, 1.0);
            }
            let mut obj = LinExpr::new();
            for (k, v) in vars.iter().enumerate() {
                obj += LinExpr::from(*v) * (((k * 7 + 3) % 13) as f64);
            }
            p.set_objective(obj);
            let s = ilp::solve_milp(&p, &BranchConfig::default()).unwrap();
            std::hint::black_box(s.objective)
        })
    });
}

criterion_group!(benches, nat_model, assignment_instance);
criterion_main!(benches);
