//! Simulator benchmarks: packets per wall-clock second when executing the
//! compiled NAT fast path (the substrate behind the E4 throughput sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use nova::CompileConfig;
use std::time::Duration;

fn packet_rate(c: &mut Criterion) {
    let out = bench::compile(bench::Benchmark::Nat, &CompileConfig::default());
    let mut g = c.benchmark_group("simulator");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(10));
    g.bench_function("nat-64pkt-64B", |b| {
        b.iter(|| {
            let res = bench::run_throughput(bench::Benchmark::Nat, &out, 64, 64, 4);
            std::hint::black_box(res.cycles)
        })
    });
    g.finish();
}

criterion_group!(benches, packet_rate);
criterion_main!(benches);
