//! Compile-time benchmarks: the paper's practicality claim is "compile
//! times short enough to accommodate an edit-compile-debug cycle" (§1.2).
//! These measure the front end alone and the full pipeline (dominated by
//! the ILP solve, the paper's Figure-7 cost).

use criterion::{criterion_group, criterion_main, Criterion};
use nova::CompileConfig;
use std::time::Duration;

fn frontend_only(c: &mut Criterion) {
    let mut g = c.benchmark_group("frontend");
    for b in bench::Benchmark::ALL {
        g.bench_function(b.name(), |bench_| {
            bench_.iter(|| {
                let p = nova_frontend::parse(b.source()).unwrap();
                let info = nova_frontend::check(&p).unwrap();
                let mut cps = nova_cps::convert(&p, &info).unwrap();
                nova_cps::optimize(&mut cps, &Default::default());
                nova_cps::to_ssu(&mut cps);
                std::hint::black_box(cps.size())
            })
        });
    }
    g.finish();
}

fn full_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("full-compile");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(20));
    for b in [bench::Benchmark::Nat, bench::Benchmark::Kasumi] {
        g.bench_function(b.name(), |bench_| {
            bench_.iter(|| {
                let out = bench::compile(b, &CompileConfig::default());
                std::hint::black_box(out.code_size)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, frontend_only, full_pipeline);
criterion_main!(benches);
