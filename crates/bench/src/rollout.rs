//! Staged-rollout benchmark harness (E17).
//!
//! Measures what the health-gated rollout controller
//! ([`ixp_sim::staged_rollout`]) buys over a naive rack-wide update:
//!
//! * **Healthy path** — a classifier rule update (variant 0 → variant 1,
//!   compiled in one warm session) rolled across a sharded rack under
//!   the canonical paced traffic, one chip at a time. Every modeled
//!   number — swap cycles, update latency, packets aborted in flight,
//!   disrupted flows, the `min_healthy_chips` floor — is
//!   bit-deterministic and gated exactly.
//! * **Fault injection** — a wedged image (applies, never transmits;
//!   caught by the no-transmit watchdog) and a corrupt image (rejected
//!   by checksum validation at the barrier), each halting the rollout
//!   at its stage with a measured rollback latency.
//! * **Staged vs big-bang** — on a synchronized trace (identical
//!   arrival schedules per shard) the disruption windows of a big-bang
//!   update genuinely overlap on the simulation clock and take the
//!   whole rack through the outage (`min_healthy_chips` = 0), while the
//!   staged controller keeps `chips - 1` serving throughout. The gap is
//!   gated as an absolute floor. A microburst variant reports the same
//!   comparison under bursty arrivals, where trace skew staggers the
//!   windows.
//! * **Determinism self-check** — key scenarios re-run at a different
//!   host thread count must produce bit-identical rollout reports;
//!   the mismatch count is gated against zero regardless of baseline.

use crate::json::Json;
use crate::reload::{reload_config, RELOAD_SEED};
use crate::{microburst_spec, traffic_spec, traffic_topology, write_nat_packet};
use ixp_sim::{
    big_bang_rollout, shard_of, staged_rollout, FlowPacket, HealthSlo, RollbackReason,
    RolloutConfig, RolloutFaults, RolloutOutcome, RolloutReport, SimMode, StageOutcome,
    StageReport,
};
use nova::{CompileOutput, Compiler};
use std::time::{Duration, Instant};
use workloads::{classifier_rules, classifier_source, CLASSIFIER_RULES};

/// Chips in the rack under rollout.
pub const ROLLOUT_CHIPS: usize = 3;
/// Packets in the paced and microburst traces.
pub const ROLLOUT_PACKETS: usize = 30_000;
/// Per-shard transmitted-packet threshold arming each stage's swap.
pub const SWAP_AFTER: u64 = 2_000;
/// Observation window (transmitted packets) before a rollback swaps back.
pub const OBSERVE_PACKETS: u64 = 2_000;
/// No-transmit watchdog window armed on every swap.
pub const WATCHDOG_CYCLES: u64 = 1 << 16;

/// The canonical rollout configuration of the bench and smoke binaries:
/// the traffic topology's chips in fast-path mode, checksum validation
/// on, the watchdog armed, default health SLOs.
pub fn rollout_config(chips: usize) -> RolloutConfig {
    RolloutConfig {
        topology: traffic_topology(chips, SimMode::FastPath),
        swap_after: SWAP_AFTER,
        observe_packets: OBSERVE_PACKETS,
        watchdog: WATCHDOG_CYCLES,
        ..RolloutConfig::default()
    }
}

/// Compile the old and new classifier images (variants 0 and 1 of the
/// reload rule stream) in one session — the update is a warm,
/// solve-free recompile, exactly the live-update story of E16.
///
/// # Panics
///
/// Panics on compile errors: the generated classifiers are known-good.
pub fn classifier_images() -> (CompileOutput, CompileOutput, Duration, Duration) {
    let session = Compiler::new(reload_config());
    let compile = |variant: u64| -> (CompileOutput, Duration) {
        let rules = classifier_rules(RELOAD_SEED, variant, CLASSIFIER_RULES);
        let start = Instant::now();
        let out = session
            .compile_output(&classifier_source(&rules))
            .unwrap_or_else(|e| panic!("classifier variant {variant}: {e}"));
        (out, start.elapsed())
    };
    let (old, old_wall) = compile(0);
    let (new, new_wall) = compile(1);
    (old, new, old_wall, new_wall)
}

/// A synchronized trace: one flow pinned to each shard, identical
/// arrival schedules, so every shard reaches its swap threshold at the
/// same wire time. Generated traffic staggers the thresholds by tens of
/// thousands of cycles (Zipf/burst skew), which would measure trace
/// skew instead of the update policy — this trace isolates the policy.
pub fn synchronized_trace(chips: usize, per_shard: usize, gap: u64) -> Vec<FlowPacket> {
    let flows: Vec<u64> = (0..chips)
        .map(|s| (0..).find(|&f| shard_of(f, chips) == s).unwrap())
        .collect();
    let mut trace = Vec::with_capacity(chips * per_shard);
    for i in 0..per_shard as u64 {
        for &f in &flows {
            trace.push(FlowPacket {
                flow: f,
                arrival: i * gap,
                bytes: 64,
            });
        }
    }
    trace
}

/// One named rollout run of the bench.
#[derive(Debug)]
pub struct Scenario {
    /// Stable id the gate matches on (`healthy`, `wedge0`, ...).
    pub id: &'static str,
    /// The full deterministic rollout record.
    pub report: RolloutReport,
}

/// Everything the rollout bench measured.
#[derive(Debug)]
pub struct RolloutBench {
    /// Chips in the rack.
    pub chips: usize,
    /// Packets in the paced/microburst traces.
    pub packets: usize,
    /// Host wall of the cold (old image) compile.
    pub old_compile_wall: Duration,
    /// Host wall of the warm (new image) recompile.
    pub new_compile_wall: Duration,
    /// All scenario runs, in report order.
    pub scenarios: Vec<Scenario>,
    /// Scenario reports that changed when re-run at a different host
    /// thread count (must be zero — rollouts are bit-deterministic).
    pub determinism_mismatches: usize,
    /// Host wall time of all simulation runs.
    pub sim_wall: Duration,
}

impl RolloutBench {
    /// Look up a scenario by id.
    ///
    /// # Panics
    ///
    /// Panics if the id was never run — harness breakage, not a result.
    pub fn scenario(&self, id: &str) -> &RolloutReport {
        &self
            .scenarios
            .iter()
            .find(|s| s.id == id)
            .unwrap_or_else(|| panic!("scenario {id} not run"))
            .report
    }
}

/// Run the full rollout measurement. Every scenario is deterministic;
/// the only host-noisy outputs are the compile and simulation walls.
///
/// # Panics
///
/// Panics if a compile or simulation fails — the images and traces are
/// known-good, so either is harness breakage rather than a measurement.
pub fn run_rollout_bench() -> RolloutBench {
    let (old, new, old_compile_wall, new_compile_wall) = classifier_images();
    let paced = traffic_spec(ROLLOUT_PACKETS).generate();
    let burst = microburst_spec(ROLLOUT_PACKETS).generate();
    let synced = synchronized_trace(ROLLOUT_CHIPS, 200, 200);

    let start = Instant::now();
    let staged = |cfg: &RolloutConfig, trace: &[FlowPacket]| -> RolloutReport {
        staged_rollout(&old.prog, &new.prog, cfg, trace, write_nat_packet)
            .expect("rollout simulation runs")
    };

    let mut scenarios = Vec::new();

    // Healthy staged rollout under paced traffic.
    let base_cfg = rollout_config(ROLLOUT_CHIPS);
    scenarios.push(Scenario {
        id: "healthy",
        report: staged(&base_cfg, &paced),
    });

    // A wedged image on stage 0: watchdog rollback, measured recovery.
    let mut wedge_cfg = rollout_config(ROLLOUT_CHIPS);
    wedge_cfg.faults = RolloutFaults {
        wedge_stages: vec![0],
        ..RolloutFaults::default()
    };
    scenarios.push(Scenario {
        id: "wedge0",
        report: staged(&wedge_cfg, &paced),
    });

    // A corrupt image on stage 1: rejected at the barrier, stage 0
    // already committed, stage 2 never starts.
    let mut corrupt_cfg = rollout_config(ROLLOUT_CHIPS);
    corrupt_cfg.faults = RolloutFaults {
        corrupt_stages: vec![1],
        ..RolloutFaults::default()
    };
    scenarios.push(Scenario {
        id: "corrupt1",
        report: staged(&corrupt_cfg, &paced),
    });

    // Microburst traffic: line-rate bursts slam one shard's shallow
    // buffer at a time; the SLO gates are opened so drop-rate deltas
    // from burst phasing don't roll the comparison back.
    let mut burst_cfg = rollout_config(ROLLOUT_CHIPS);
    burst_cfg.slo = HealthSlo {
        max_drop_delta: 0.25,
        max_p99_factor: 8.0,
    };
    scenarios.push(Scenario {
        id: "burst_staged",
        report: staged(&burst_cfg, &burst),
    });
    scenarios.push(Scenario {
        id: "burst_bang",
        report: big_bang_rollout(&old.prog, &new.prog, &burst_cfg, &burst, write_nat_packet)
            .expect("rollout simulation runs"),
    });

    // Synchronized trace: the staged-vs-big-bang availability story,
    // with a long store rewrite widening the outage windows and the
    // gates opened (the tiny trace makes rate deltas meaningless).
    let mut sync_cfg = rollout_config(ROLLOUT_CHIPS);
    sync_cfg.swap_after = 40;
    sync_cfg.observe_packets = 60;
    sync_cfg.stall = 8_192;
    sync_cfg.slo = HealthSlo {
        max_drop_delta: 1.0,
        max_p99_factor: 1_000.0,
    };
    scenarios.push(Scenario {
        id: "sync_staged",
        report: staged(&sync_cfg, &synced),
    });
    scenarios.push(Scenario {
        id: "sync_bang",
        report: big_bang_rollout(&old.prog, &new.prog, &sync_cfg, &synced, write_nat_packet)
            .expect("rollout simulation runs"),
    });

    // Determinism self-check: the host thread count must not leak into
    // any rollout report.
    let mut determinism_mismatches = 0;
    for (id, cfg, trace) in [
        ("healthy", &base_cfg, &paced),
        ("wedge0", &wedge_cfg, &paced),
    ] {
        let mut threaded = cfg.clone();
        threaded.topology.chip.host_threads = 2;
        let rerun = staged_rollout(&old.prog, &new.prog, &threaded, trace, write_nat_packet)
            .expect("rollout simulation runs");
        let original = scenarios
            .iter()
            .find(|s| s.id == id)
            .expect("scenario ran")
            .report
            .clone();
        if rerun != original {
            eprintln!("DETERMINISM MISMATCH: scenario {id} differs at 2 host threads");
            determinism_mismatches += 1;
        }
    }
    let sim_wall = start.elapsed();

    RolloutBench {
        chips: ROLLOUT_CHIPS,
        packets: ROLLOUT_PACKETS,
        old_compile_wall,
        new_compile_wall,
        scenarios,
        determinism_mismatches,
        sim_wall,
    }
}

/// Numeric code for a rollback reason (0 = no rollback) — the gate
/// compares outcomes as exact numbers.
pub fn reason_code(outcome: &RolloutOutcome) -> i64 {
    match outcome {
        RolloutOutcome::Committed => 0,
        RolloutOutcome::RolledBack { reason, .. } => match reason {
            RollbackReason::ChecksumRejected => 1,
            RollbackReason::WatchdogFired => 2,
            RollbackReason::DropSlo => 3,
            RollbackReason::LatencySlo => 4,
        },
    }
}

/// The stage a rollout halted at, `-1` when it committed.
pub fn rolled_back_stage(outcome: &RolloutOutcome) -> i64 {
    match outcome {
        RolloutOutcome::Committed => -1,
        RolloutOutcome::RolledBack { stage, .. } => *stage as i64,
    }
}

fn opt_cycle(v: Option<u64>) -> Json {
    match v {
        Some(c) => Json::int(c as usize),
        None => Json::Num(-1.0),
    }
}

fn stage_json(s: &StageReport) -> Json {
    let outcome = match s.outcome {
        StageOutcome::Committed => "committed",
        StageOutcome::RolledBack(RollbackReason::ChecksumRejected) => "checksum-rejected",
        StageOutcome::RolledBack(RollbackReason::WatchdogFired) => "watchdog-fired",
        StageOutcome::RolledBack(RollbackReason::DropSlo) => "drop-slo",
        StageOutcome::RolledBack(RollbackReason::LatencySlo) => "latency-slo",
    };
    let d = &s.disruption;
    Json::obj([
        ("chip", Json::int(s.chip)),
        ("outcome", Json::str(outcome)),
        ("swap_cycle", opt_cycle(s.swap.swap_cycle)),
        ("first_tx_cycle", opt_cycle(s.swap.first_tx_cycle)),
        ("update_cycles", opt_cycle(d.update_cycles)),
        ("rollback_cycles", opt_cycle(s.rollback_cycles)),
        ("offered", Json::int(d.offered as usize)),
        ("delivered", Json::int(d.delivered as usize)),
        ("dropped", Json::int(d.dropped as usize)),
        ("aborted_in_flight", Json::int(d.aborted_in_flight as usize)),
        ("disrupted_flows", Json::int(d.disrupted_flows as usize)),
        ("pre_delivered", Json::int(d.pre.delivered as usize)),
        ("during_delivered", Json::int(d.during.delivered as usize)),
        ("post_delivered", Json::int(d.post.delivered as usize)),
        ("post_p99", Json::int(d.post.latency.p99 as usize)),
        ("baseline_p99", Json::int(s.baseline_p99 as usize)),
        ("candidate_p99", Json::int(s.candidate_p99 as usize)),
    ])
}

fn scenario_json(s: &Scenario) -> Json {
    let r = &s.report;
    let sum = |f: &dyn Fn(&StageReport) -> u64| -> usize {
        r.stages.iter().map(|st| f(st) as usize).sum()
    };
    // Post-revert recovery of the halting stage: packets delivered after
    // service resumed on the rolled-back chip (`-1` when no stage rolled
    // back, `0` would mean a rollback that never came back — gated).
    let recovered = match r.outcome {
        RolloutOutcome::Committed => Json::Num(-1.0),
        RolloutOutcome::RolledBack { stage, .. } => {
            let st = r.stages.iter().find(|st| st.chip == stage);
            Json::int(st.map_or(0, |st| st.disruption.post.delivered as usize))
        }
    };
    Json::obj([
        ("id", Json::str(s.id)),
        ("chips", Json::int(r.chips)),
        ("stages_run", Json::int(r.stages.len())),
        ("outcome_code", Json::Num(reason_code(&r.outcome) as f64)),
        (
            "rolled_back_stage",
            Json::Num(rolled_back_stage(&r.outcome) as f64),
        ),
        ("min_healthy_chips", Json::int(r.min_healthy_chips)),
        ("offered", Json::int(sum(&|st| st.disruption.offered))),
        ("delivered", Json::int(sum(&|st| st.disruption.delivered))),
        ("dropped", Json::int(sum(&|st| st.disruption.dropped))),
        (
            "aborted_in_flight",
            Json::int(r.aborted_in_flight() as usize),
        ),
        ("disrupted_flows", Json::int(r.disrupted_flows() as usize)),
        (
            "max_update_cycles",
            Json::int(r.max_update_cycles() as usize),
        ),
        ("rollback_recovered", recovered),
        (
            "stages",
            Json::Arr(r.stages.iter().map(stage_json).collect()),
        ),
    ])
}

/// Render the whole bench as the `BENCH_rollout.json` document.
pub fn rollout_json(b: &RolloutBench) -> Json {
    let staged = b.scenario("sync_staged").min_healthy_chips;
    let bang = b.scenario("sync_bang").min_healthy_chips;
    Json::obj([
        ("bench", Json::str("rollout")),
        (
            "config",
            Json::obj([
                ("chips", Json::int(b.chips)),
                ("packets", Json::int(b.packets)),
                ("swap_after", Json::int(SWAP_AFTER as usize)),
                ("observe_packets", Json::int(OBSERVE_PACKETS as usize)),
                ("watchdog", Json::int(WATCHDOG_CYCLES as usize)),
            ]),
        ),
        (
            "scenarios",
            Json::Arr(b.scenarios.iter().map(scenario_json).collect()),
        ),
        (
            "comparison",
            Json::obj([
                ("staged_min_healthy", Json::int(staged)),
                ("bang_min_healthy", Json::int(bang)),
                ("staging_gain", Json::Num(staged as f64 - bang as f64)),
            ]),
        ),
        (
            "determinism_mismatches",
            Json::int(b.determinism_mismatches),
        ),
        (
            "old_compile_ms",
            Json::Num(b.old_compile_wall.as_secs_f64() * 1e3),
        ),
        (
            "new_compile_ms",
            Json::Num(b.new_compile_wall.as_secs_f64() * 1e3),
        ),
        ("sim_wall_ms", Json::Num(b.sim_wall.as_secs_f64() * 1e3)),
    ])
}
