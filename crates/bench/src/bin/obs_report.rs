//! E11 — per-phase time/allocation report for the whole pipeline.
//!
//! Compiles AES and NAT through [`nova::compile`] with a recording
//! observer, runs the result on the chip-level simulator through
//! [`nova::simulate_chip_with`] against the same observer, and renders
//! where the wall time and heap traffic went for each of the five
//! pipeline stages (`frontend`, `cps`, `ilp`, `codegen`, `sim`). The
//! `ilp` stage is additionally broken down into `ilp.model` (CSR model
//! generation), `ilp.presolve` (reductions + cutting planes), and
//! `ilp.solve` (root relaxation + tree search) sub-rows; the `ilp`
//! total sums its disjoint spans (`phase.ilp` facts/freq,
//! `phase.ilp.model`, and the `phase.ilp.stage` attempts, inside which
//! presolve/solve nest).
//! Results land in `BENCH_phases.json` (pass a path to override); CI
//! regenerates the file as `BENCH_phases.ci.json` and `bench_gate`
//! diffs the deterministic counters against the checked-in baseline.
//!
//! Wall times come from the observability spans. Heap traffic comes
//! from a counting global allocator snapshotted by a tee'd recorder
//! each time a `phase.*` span closes, attributing the bytes allocated
//! since the previous phase boundary; phases run sequentially, so the
//! attribution is exact up to the recorder's own bookkeeping.
//!
//! The compile is pinned to one solver thread and an exact gap so the
//! gated counters (pivots, simulated cycles/packets) are bit-identical
//! across hosts and reruns.

use bench::json::Json;
use bench::{setup_memory, table, Benchmark};
use nova::{
    simulate_chip, simulate_chip_with, ChipConfig, CompileConfig, Event, EventKind, MemoryRecorder,
    Obs, Recorder, SimMode, TeeRecorder,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

/// System allocator wrapped with relaxed byte/call counters.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_BYTES.fetch_add(
            new_size.saturating_sub(layout.size()) as u64,
            Ordering::Relaxed,
        );
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Attributes allocator traffic to pipeline stages: every time a
/// `phase.*` span closes, the bytes/calls since the previous phase
/// boundary belong to that phase. Same-name phases (codegen closes once
/// for selection, once for the backend) accumulate.
#[derive(Default)]
struct PhaseAllocRecorder {
    state: Mutex<PhaseAllocState>,
}

#[derive(Default)]
struct PhaseAllocState {
    last_bytes: u64,
    last_count: u64,
    rows: Vec<(String, u64, u64)>,
}

impl PhaseAllocRecorder {
    /// Start attribution at the allocator's current position.
    fn rebase(&self) {
        let mut st = self.state.lock().unwrap();
        st.last_bytes = ALLOC_BYTES.load(Ordering::Relaxed);
        st.last_count = ALLOC_COUNT.load(Ordering::Relaxed);
    }

    /// (phase name, bytes, allocation calls), summed by phase.
    fn totals(&self) -> Vec<(String, u64, u64)> {
        let st = self.state.lock().unwrap();
        let mut out: Vec<(String, u64, u64)> = Vec::new();
        for (name, bytes, count) in &st.rows {
            match out.iter_mut().find(|(n, _, _)| n == name) {
                Some((_, b, c)) => {
                    *b += bytes;
                    *c += count;
                }
                None => out.push((name.clone(), *bytes, *count)),
            }
        }
        out
    }
}

impl Recorder for PhaseAllocRecorder {
    fn record(&self, event: Event) {
        if !matches!(event.kind, EventKind::Span { .. }) {
            return;
        }
        let Some(phase) = event.name.strip_prefix("phase.") else {
            return;
        };
        let bytes = ALLOC_BYTES.load(Ordering::Relaxed);
        let count = ALLOC_COUNT.load(Ordering::Relaxed);
        let mut st = self.state.lock().unwrap();
        let (db, dc) = (bytes - st.last_bytes, count - st.last_count);
        st.last_bytes = bytes;
        st.last_count = count;
        let phase = phase.to_string();
        st.rows.push((phase, db, dc));
    }
}

const PACKETS: usize = 64;
const PHASES: [&str; 5] = ["frontend", "cps", "ilp", "codegen", "sim"];

/// Shape of the `sim.host_rate` measurement: the compiled program over a
/// paced arrival schedule — one packet every [`RATE_GAP`] cycles, so the
/// chip is mostly idle and the event-driven fast path has dead epochs to
/// skip, which is exactly the workload shape of the traffic harness.
const RATE_PACKETS: usize = 1024;
const RATE_GAP: u64 = 2048;

/// The modeled outcome of a host-rate run — everything that must be
/// bit-identical across scheduler modes.
type ModeStory = (u64, u64, Vec<(u32, u32, u64)>);

/// Host wall time and simulation rate of one scheduler mode over the
/// paced schedule. Returns the JSON row plus the modeled outcome for the
/// cross-mode equality check.
fn host_rate_row(
    b: Benchmark,
    prog: &ixp_machine::Program<ixp_machine::PhysReg>,
    payload: u32,
    chip: &ChipConfig,
    mode: SimMode,
    name: &str,
) -> (Json, ModeStory, f64, f64) {
    let mut mem = setup_memory(b, RATE_PACKETS, payload);
    let mut arrival = 0u64;
    while let Some((len, addr)) = mem.rx_queue.pop_front() {
        arrival += RATE_GAP;
        mem.rx_arrivals.push_back((arrival, len, addr));
    }
    let chip = ChipConfig { mode, ..*chip };
    let start = std::time::Instant::now();
    let res = simulate_chip(prog, &mut mem, &chip).expect("host-rate run");
    let wall_s = start.elapsed().as_secs_f64().max(1e-9);
    let rate = res.cycles as f64 / wall_s;
    let row = Json::obj([
        ("mode", Json::str(name)),
        ("wall_ms", Json::Num(wall_s * 1e3)),
        ("sim_cycles_per_sec", Json::Num(rate)),
    ]);
    (
        row,
        (res.cycles, res.packets, mem.tx_log),
        wall_s * 1e3,
        rate,
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_phases.json".into());
    println!("Per-phase wall time and heap traffic (64 packets, full 6-engine chip)\n");
    let mut programs = Vec::new();
    for (b, payload) in [(Benchmark::Aes, 16u32), (Benchmark::Nat, 64)] {
        let rec = MemoryRecorder::new();
        let phase_alloc = Arc::new(PhaseAllocRecorder::default());
        phase_alloc.rebase();
        let obs = Obs::new(TeeRecorder::new(vec![
            Arc::new(rec.clone()) as Arc<dyn Recorder>,
            phase_alloc.clone() as Arc<dyn Recorder>,
        ]));
        let cfg = CompileConfig::builder()
            .solver_threads(1)
            .solver_gap(0.0)
            .observer_handle(obs.clone())
            .build();
        let report =
            nova::compile(b.source(), &cfg).unwrap_or_else(|e| panic!("{}: {e}", b.name()));
        let mut mem = setup_memory(b, PACKETS, payload);
        let res = simulate_chip_with(
            &report.artifact.prog,
            &mut mem,
            &cfg.sim.chip_config(),
            &obs,
        )
        .expect("chip simulation runs");
        let summary = rec.summary();
        let allocs = phase_alloc.totals();

        let span_ms = |name: &str| summary.span(name).map_or(0.0, |s| s.total_ns as f64 / 1e6);
        let alloc_of = |name: &str| {
            allocs
                .iter()
                .find(|(n, _, _)| n == name)
                .map_or((0, 0), |(_, bt, c)| (*bt, *c))
        };
        let mut rows = Vec::new();
        let mut phase_json = Vec::new();
        let mut push_row = |name: &str, wall_ms: f64, bytes: u64, count: u64| {
            let alloc_mb = bytes as f64 / (1024.0 * 1024.0);
            rows.push(vec![
                name.to_string(),
                format!("{wall_ms:.2}"),
                format!("{alloc_mb:.2}"),
                format!("{count}"),
            ]);
            phase_json.push(Json::obj([
                ("name", Json::str(name)),
                ("wall_ms", Json::Num(wall_ms)),
                ("alloc_mb", Json::Num(alloc_mb)),
                ("allocs", Json::int(count as usize)),
            ]));
        };
        for phase in PHASES {
            let top_ms = summary
                .span(&format!("phase.{phase}"))
                .map(|s| s.total_ns as f64 / 1e6)
                .unwrap_or_else(|| panic!("{}: phase.{phase} never closed", b.name()));
            if phase == "ilp" {
                // The ilp phase is split across disjoint spans: liveness
                // facts and frequencies under `phase.ilp`, CSR model
                // generation under `phase.ilp.model`, and each ladder
                // attempt under `phase.ilp.stage`. The solver's
                // presolve/solve sub-spans nest *inside* the stage span,
                // so they are reported below but not added again here.
                let wall_ms = top_ms + span_ms("phase.ilp.model") + span_ms("phase.ilp.stage");
                let (bytes, count) = allocs
                    .iter()
                    .filter(|(n, _, _)| n == "ilp" || n.starts_with("ilp."))
                    .fold((0u64, 0u64), |(bt, ct), (_, db, dc)| (bt + db, ct + dc));
                push_row(phase, wall_ms, bytes, count);
                for sub in ["ilp.model", "ilp.presolve", "ilp.solve"] {
                    let (bytes, count) = alloc_of(sub);
                    push_row(sub, span_ms(&format!("phase.{sub}")), bytes, count);
                }
            } else {
                let (bytes, count) = alloc_of(phase);
                push_row(phase, top_ms, bytes, count);
            }
        }
        println!("{}:", b.name());
        println!(
            "{}",
            table(&["phase", "wall ms", "alloc MB", "allocs"], &rows)
        );

        // sim.host_rate: how fast the host simulates each scheduler mode
        // on a paced (mostly idle) schedule. The modeled outcome must be
        // identical; only the host time may differ.
        let mut host_rate = Vec::new();
        let mut stories = Vec::new();
        for (mode, name) in [
            (SimMode::FastPath, "fast_path"),
            (SimMode::CycleSlice, "cycle_slice"),
        ] {
            let (row, story, wall_ms, rate) = host_rate_row(
                b,
                &report.artifact.prog,
                payload,
                &cfg.sim.chip_config(),
                mode,
                name,
            );
            println!(
                "  sim.host_rate {name}: {wall_ms:.1} ms host, \
                 {:.1}M sim-cycles/s ({RATE_PACKETS} paced packets)",
                rate / 1e6
            );
            host_rate.push(row);
            stories.push(story);
        }
        println!();
        assert_eq!(
            stories[0],
            stories[1],
            "{}: fast path diverged from the cycle-slice oracle on the host-rate run",
            b.name()
        );

        let counter = |name: &str| Json::int(summary.counter_total(name).unwrap_or(0) as usize);
        programs.push(Json::obj([
            ("name", Json::str(b.name())),
            ("payload_bytes", Json::int(payload as usize)),
            ("phases", Json::Arr(phase_json)),
            (
                "counters",
                Json::obj([
                    ("ilp.pivots", counter("ilp.pivots")),
                    ("ilp.nodes", counter("ilp.nodes")),
                    ("backend.spills", counter("backend.spills")),
                    ("backend.moves", counter("backend.moves")),
                    ("sim.cycles", counter("sim.cycles")),
                    ("sim.packets", counter("sim.packets")),
                    ("sim.instructions", counter("sim.instructions")),
                ]),
            ),
            (
                "sim",
                Json::obj([
                    ("cycles", Json::int(res.cycles as usize)),
                    ("packets", Json::int(res.packets as usize)),
                    ("mbps", Json::Num(res.mbps)),
                ]),
            ),
            ("host_rate", Json::Arr(host_rate)),
        ]));
    }
    let doc = Json::obj([
        ("bench", Json::str("phases")),
        (
            "config",
            Json::obj([
                ("packets", Json::int(PACKETS)),
                ("solver_threads", Json::int(1)),
                ("relative_gap", Json::Num(0.0)),
            ]),
        ),
        ("programs", Json::Arr(programs)),
    ]);
    std::fs::write(&out_path, doc.pretty()).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");
}
