//! Persistence smoke: the tier-1 teeth behind the on-disk artifact
//! cache's contracts, with hard assertions instead of a baseline diff:
//!
//! * **Cold** — a session with a `persist_dir` compiles a five-request
//!   stream over three program structures; exactly one disk store per
//!   structure, constant-only variants never touch the disk.
//! * **Warm restart** — the session is dropped and a fresh one opens the
//!   same directory: every MILP solve is replaced by a disk load
//!   (`disk_hits` exact) and every artifact is bit-identical to cold.
//! * **Corruption** — every cache file is truncated; a third session
//!   classifies each load as a reject, falls back to a clean full
//!   solve, and still produces bit-identical artifacts. Corruption may
//!   cost time, never correctness.
//!
//! Exits non-zero on any violation.

use bench::reload::{ScratchDir, RELOAD_SEED};
use nova::{CompileConfig, CompileOutput, Compiler};
use workloads::{classifier_rules, classifier_source};

/// The smoke stream: three structures (rule counts 2, 3, 4), then two
/// constant-only variants of the third — `(rule count, variant)`.
const STREAM: [(usize, u64); 5] = [(2, 0), (3, 0), (4, 0), (4, 1), (4, 2)];
/// Distinct structures in the stream (= expected disk entries).
const STRUCTURES: u64 = 3;

fn compile_stream(cfg: &CompileConfig) -> (Vec<CompileOutput>, nova::CacheStats) {
    let session = Compiler::new(cfg.clone());
    let outs = STREAM
        .iter()
        .map(|&(n, variant)| {
            let src = classifier_source(&classifier_rules(RELOAD_SEED, variant, n));
            session
                .compile_output(&src)
                .unwrap_or_else(|e| panic!("classifier {n} rules variant {variant}: {e}"))
        })
        .collect();
    (outs, session.cache_stats())
}

fn main() {
    let dir = ScratchDir::new("persist-smoke");
    let cfg = CompileConfig::builder()
        .solver_threads(1)
        .persist_dir(dir.path())
        .build();
    println!(
        "Persistence smoke: {} requests over {STRUCTURES} structures in {}",
        STREAM.len(),
        dir.path().display()
    );

    let mut failures = Vec::new();
    let mut check = |name: &str, ok: bool| {
        println!("  {} {name}", if ok { "ok  " } else { "FAIL" });
        if !ok {
            failures.push(name.to_string());
        }
    };

    // Cold: populate the disk cache.
    let (cold, s) = compile_stream(&cfg);
    check(
        "cold: one solve per structure",
        s.alloc_misses == STRUCTURES,
    );
    check(
        "cold: constant-only variants hit in memory",
        s.alloc_hits == STREAM.len() as u64 - STRUCTURES,
    );
    check(
        "cold: one disk miss per structure",
        s.disk_misses == STRUCTURES,
    );
    check(
        "cold: no disk hits or rejects",
        s.disk_hits == 0 && s.disk_rejects == 0,
    );
    let entries = std::fs::read_dir(dir.path())
        .map(|d| d.filter_map(Result::ok).count())
        .unwrap_or(0);
    check(
        "cold: one cache file per structure",
        entries == STRUCTURES as usize,
    );

    // Warm restart: a fresh session over the same directory.
    let (warm, s) = compile_stream(&cfg);
    check(
        "warm: every solve replaced by a disk load",
        s.disk_hits == STRUCTURES,
    );
    check("warm: no solves ran", s.alloc_misses == 0);
    check(
        "warm: every allocation a cache hit",
        s.alloc_hits == STREAM.len() as u64,
    );
    check("warm: no rejects", s.disk_rejects == 0);
    check(
        "warm artifacts bit-identical to cold",
        warm.iter().zip(&cold).all(|(w, c)| w.artifact_eq(c)),
    );

    // Corruption: truncate every cache file, then restart again.
    for entry in std::fs::read_dir(dir.path()).expect("read cache dir") {
        let path = entry.expect("dir entry").path();
        let bytes = std::fs::read(&path).expect("read cache file");
        std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate cache file");
    }
    let (rebuilt, s) = compile_stream(&cfg);
    check(
        "corrupt: every load rejected, none fatal",
        s.disk_rejects == STRUCTURES,
    );
    check(
        "corrupt: clean fallback solves",
        s.alloc_misses == STRUCTURES,
    );
    check("corrupt: no false hits", s.disk_hits == 0);
    check(
        "corrupt artifacts bit-identical to cold",
        rebuilt.iter().zip(&cold).all(|(r, c)| r.artifact_eq(c)),
    );

    // The fallback solves re-persisted good entries: a final restart
    // must hit again.
    let (_, s) = compile_stream(&cfg);
    check(
        "re-persisted entries hit after corruption",
        s.disk_hits == STRUCTURES,
    );

    // Eviction rides along: a two-entry budget over the same stream
    // still compiles everything bit-identically, and the evict counters
    // move.
    let bounded = CompileConfig::builder()
        .solver_threads(1)
        .cache_budget(nova::CacheBudget::entries(2))
        .build();
    let (evicted, s) = compile_stream(&bounded);
    check(
        "bounded: evictions happened",
        s.evict_count > 0 && s.evict_bytes > 0,
    );
    check(
        "bounded artifacts bit-identical to unbounded",
        evicted.iter().zip(&cold).all(|(e, c)| e.artifact_eq(c)),
    );

    if failures.is_empty() {
        println!("persist smoke PASSED");
    } else {
        eprintln!("persist smoke FAILED: {}", failures.join("; "));
        std::process::exit(1);
    }
}
