//! Tier-1 rollout smoke: a scaled-down fault-injection campaign proving
//! the staged-rollout controller's contracts on every push — healthy
//! rollouts commit with packet conservation, a wedged image trips the
//! no-transmit watchdog and recovers, a corrupt image is rejected at
//! the barrier without ever swapping, and reports are bit-identical
//! across host thread counts. Collects failures and exits non-zero.

use bench::rollout::classifier_images;
use bench::{traffic_spec, traffic_topology, write_nat_packet};
use ixp_sim::{
    staged_rollout, RollbackReason, RolloutConfig, RolloutFaults, RolloutOutcome, SimMode,
};

/// Chips in the smoke rack.
const CHIPS: usize = 2;
/// Packets in the smoke trace.
const PACKETS: usize = 8_000;

fn smoke_config() -> RolloutConfig {
    RolloutConfig {
        topology: traffic_topology(CHIPS, SimMode::FastPath),
        swap_after: 800,
        observe_packets: 800,
        ..RolloutConfig::default()
    }
}

fn main() {
    println!("rollout smoke: {CHIPS} chips, {PACKETS} packets");
    let (old, new, _, _) = classifier_images();
    let trace = traffic_spec(PACKETS).generate();
    let run = |cfg: &RolloutConfig| {
        staged_rollout(&old.prog, &new.prog, cfg, &trace, write_nat_packet)
            .expect("rollout simulation runs")
    };
    let mut failures: Vec<String> = Vec::new();
    let mut check = |what: &str, ok: bool| {
        println!("  [{}] {what}", if ok { "ok" } else { "FAIL" });
        if !ok {
            failures.push(what.to_string());
        }
    };

    // Healthy rollout: commits, conserves packets per stage.
    let healthy = run(&smoke_config());
    check(
        "healthy rollout commits",
        healthy.outcome == RolloutOutcome::Committed && healthy.stages.len() == CHIPS,
    );
    check(
        "healthy stages conserve packets",
        healthy.stages.iter().all(|s| {
            let d = &s.disruption;
            d.offered == d.delivered + d.dropped + d.aborted_in_flight
        }),
    );

    // A wedged image: the watchdog fires, the chip reverts and serves.
    let mut wedge = smoke_config();
    wedge.faults = RolloutFaults {
        wedge_stages: vec![0],
        ..RolloutFaults::default()
    };
    let wedged = run(&wedge);
    check(
        "wedged image trips the watchdog",
        wedged.outcome
            == RolloutOutcome::RolledBack {
                stage: 0,
                reason: RollbackReason::WatchdogFired,
            },
    );
    check(
        "watchdog rollback restores service",
        wedged
            .stages
            .first()
            .is_some_and(|s| s.disruption.post.delivered > 0),
    );

    // A corrupt image: rejected at the barrier, never applied.
    let mut corrupt = smoke_config();
    corrupt.faults = RolloutFaults {
        corrupt_stages: vec![0],
        ..RolloutFaults::default()
    };
    let corrupted = run(&corrupt);
    check(
        "corrupt image is rejected at the barrier",
        corrupted.outcome
            == RolloutOutcome::RolledBack {
                stage: 0,
                reason: RollbackReason::ChecksumRejected,
            },
    );
    check(
        "checksum rejection never swaps",
        corrupted
            .stages
            .first()
            .is_some_and(|s| s.swap.swap_cycle.is_none() && s.rollback_cycles == Some(0)),
    );

    // Host thread count must not leak into any report.
    let mut threaded = smoke_config();
    threaded.topology.chip.host_threads = 2;
    check(
        "reports bit-identical at 2 host threads",
        run(&threaded) == healthy,
    );

    if failures.is_empty() {
        println!("rollout smoke passed");
    } else {
        eprintln!("rollout smoke FAILED: {}", failures.join("; "));
        std::process::exit(1);
    }
}
