//! E8 — §8 "A million variables": candidate pruning. Without the static
//! analysis every temporary could occupy any of the 7 locations at every
//! point; the paper estimates ~a million Move variables for a full
//! instruction store. We compare generated model sizes with pruning on
//! and off (the unpruned NAT model is solved too if time permits; the
//! larger ones are reported build-only).

use bench::{table, Benchmark};
use nova::CompileConfig;
use nova_backend::alloc::{build_facts, build_model, prune, unpruned};

fn main() {
    println!("E8: §8 candidate pruning\n");
    let mut rows = Vec::new();
    for b in Benchmark::ALL {
        // Build the flowgraph once.
        let src = b.source();
        let p = nova_frontend::parse(src).unwrap();
        let info = nova_frontend::check(&p).unwrap();
        let mut cps = nova_cps::convert(&p, &info).unwrap();
        nova_cps::optimize(&mut cps, &Default::default());
        nova_cps::to_ssu(&mut cps);
        let prog = nova_backend::select(&cps).unwrap();
        let facts = build_facts(&prog);
        let freqs = nova_backend::freq::estimate(&prog);
        for (mode, do_prune) in [("pruned", true), ("unpruned", false)] {
            let mut cfg = CompileConfig::default().alloc;
            cfg.prune = do_prune;
            cfg.allow_spill = true;
            cfg.spill_auto = do_prune; // the full model keeps M everywhere
            let bm = build_model(&prog, &facts, &freqs, &cfg);
            let st = bm.model.stats();
            let cands = if do_prune {
                prune(&facts, true)
            } else {
                unpruned(&facts, true)
            };
            rows.push(vec![
                b.name().to_string(),
                mode.to_string(),
                cands.total().to_string(),
                st.variables.to_string(),
                st.constraints.to_string(),
                st.objective_terms.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        table(
            &["program", "mode", "cand-banks", "vars", "rows", "objterms"],
            &rows
        )
    );
    println!("paper: without reduction, ~1,000,000 Move variables (72 banks^2 x");
    println!("~20 live x 1000 instructions); with it, 102k-203k total variables.");
}
