//! Release-mode solver smoke benchmark for CI: one small exact-gap solve
//! (the NAT model, single thread) with a pivots-per-second floor.
//!
//! Usage: `bench_smoke [--min-pps FLOOR]`. Exits non-zero when the solve
//! fails, the allocation regresses (spills appear), or pivot throughput
//! drops below the floor. The default floor is deliberately far under
//! the sparse kernel's measured rate so only order-of-magnitude
//! regressions (e.g. an accidental fall-back to the dense kernel on a
//! large model, or a quadratic slip in FTRAN) trip it, not CI host
//! jitter.

use bench::{compile, Benchmark};
use nova::CompileConfig;

/// Default pivots-per-second floor. The sparse-LU kernel sustains well
/// over 10× this on the NAT root LP on a single 2 GHz core (see
/// BENCH_solver.json); the dense kernel also clears it on NAT-sized
/// models, so this guards throughput collapse, not kernel choice.
const DEFAULT_MIN_PPS: f64 = 1500.0;

fn main() {
    let mut min_pps = DEFAULT_MIN_PPS;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--min-pps" => {
                let v = args.next().expect("--min-pps needs a value");
                min_pps = v.parse().expect("--min-pps value must be a number");
            }
            other => panic!("unknown argument {other}; usage: bench_smoke [--min-pps FLOOR]"),
        }
    }

    let cfg = CompileConfig::builder()
        .solver_threads(1)
        .solver_gap(0.0)
        .build();
    let out = compile(Benchmark::Nat, &cfg);
    let st = &out.alloc_stats;
    let s = &st.solve;
    let pps = s.pivots_per_sec();
    eprintln!(
        "NAT: kernel {}, {} pivots in {:.2}s ({:.0} pivots/s), {} nodes, \
         {} refactorizations, {} eta pivots, objective {:.3}, {} moves, {} spills, \
         proven_optimal {}",
        s.kernel,
        s.simplex_iterations,
        s.total_time.as_secs_f64(),
        pps,
        s.nodes,
        s.refactorizations,
        s.eta_pivots,
        st.objective,
        st.moves,
        st.spills,
        s.proven_optimal,
    );
    let mut failures = Vec::new();
    if !s.proven_optimal {
        failures.push("solve did not prove optimality at relative_gap 0".to_string());
    }
    if st.spills != 0 {
        failures.push(format!(
            "NAT allocated with {} spills (expected 0)",
            st.spills
        ));
    }
    if pps < min_pps {
        failures.push(format!(
            "pivot throughput {pps:.0}/s below the {min_pps:.0}/s floor"
        ));
    }
    if failures.is_empty() {
        eprintln!("bench-smoke OK");
    } else {
        for f in &failures {
            eprintln!("bench-smoke FAIL: {f}");
        }
        std::process::exit(1);
    }
}
