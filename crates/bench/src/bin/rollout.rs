//! E17 — resilient live updates. Rolls a classifier rule update across
//! a sharded rack with the health-gated staged controller, injects
//! swap-path faults (wedged image, corrupt image), and compares staged
//! against big-bang availability on synchronized and microburst
//! traffic. Results land in `BENCH_rollout.json`; every modeled number
//! is deterministic and gated exactly, the staging gain and rollback
//! recovery get absolute floors, the determinism self-check is gated to
//! zero mismatches — see `bench::gate::gate_rollout`.

use bench::rollout::{
    reason_code, rolled_back_stage, rollout_json, run_rollout_bench, OBSERVE_PACKETS,
    ROLLOUT_CHIPS, ROLLOUT_PACKETS, SWAP_AFTER,
};
use bench::table;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_rollout.json".into());
    println!(
        "Rollout: {ROLLOUT_CHIPS} chips, {ROLLOUT_PACKETS} packets, swap after {SWAP_AFTER}, \
         observe {OBSERVE_PACKETS}\n"
    );

    let bench = run_rollout_bench();
    println!(
        "{}",
        table(
            &[
                "scenario",
                "outcome",
                "stage",
                "min healthy",
                "delivered",
                "dropped",
                "aborted",
                "max update cyc",
            ],
            &bench
                .scenarios
                .iter()
                .map(|s| {
                    let r = &s.report;
                    vec![
                        s.id.to_string(),
                        format!("{}", reason_code(&r.outcome)),
                        format!("{}", rolled_back_stage(&r.outcome)),
                        format!("{}", r.min_healthy_chips),
                        format!(
                            "{}",
                            r.stages
                                .iter()
                                .map(|st| st.disruption.delivered)
                                .sum::<u64>()
                        ),
                        format!(
                            "{}",
                            r.stages.iter().map(|st| st.disruption.dropped).sum::<u64>()
                        ),
                        format!("{}", r.aborted_in_flight()),
                        format!("{}", r.max_update_cycles()),
                    ]
                })
                .collect::<Vec<_>>(),
        )
    );
    println!(
        "compile: old {:.1} ms, new (warm) {:.1} ms; sim wall {:.0} ms; \
         staged keeps {} chips healthy vs big-bang {} on the synchronized trace; \
         {} determinism mismatches",
        bench.old_compile_wall.as_secs_f64() * 1e3,
        bench.new_compile_wall.as_secs_f64() * 1e3,
        bench.sim_wall.as_secs_f64() * 1e3,
        bench.scenario("sync_staged").min_healthy_chips,
        bench.scenario("sync_bang").min_healthy_chips,
        bench.determinism_mismatches,
    );

    let doc = rollout_json(&bench);
    std::fs::write(&out_path, doc.pretty()).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    eprintln!("wrote {out_path}");
    if bench.determinism_mismatches > 0 {
        eprintln!("rollout bench FAILED: reports differ across host thread counts");
        std::process::exit(1);
    }
}
