//! E5 — the paper's two-stage objective experiment (§11): first determine
//! "whether spills are required at all, and if so, where"; if none are,
//! drop the spill machinery and solve a much smaller program (the paper
//! reports 9 s for AES and 19.2 s for NAT this way, versus 35.9/155.6 s).
//!
//! Our `spill_auto` pressure test plays the same role statically. This
//! ablation compares: (a) full model with the M bank, (b) the automatic
//! pressure-based reduction (the default).

use bench::{compile, table, Benchmark};
use nova::CompileConfig;

fn main() {
    println!("E5: spill machinery on vs pressure-based pre-pass (default)\n");
    let mut rows = Vec::new();
    for b in Benchmark::ALL {
        for (mode, auto) in [("full-spill", false), ("prepass", true)] {
            let mut cfg = CompileConfig::default();
            cfg.alloc.spill_auto = auto;
            let out = compile(b, &cfg);
            rows.push(vec![
                b.name().to_string(),
                mode.to_string(),
                out.alloc_stats.model.variables.to_string(),
                out.alloc_stats.model.constraints.to_string(),
                format!("{:.2}", out.alloc_stats.solve.total_time.as_secs_f64()),
                out.alloc_stats.moves.to_string(),
                out.alloc_stats.spills.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        table(
            &["program", "mode", "vars", "rows", "solve(s)", "moves", "spills"],
            &rows
        )
    );
    println!("paper: the two-stage objective cut AES 35.9s -> 9s and NAT 155.6s -> 19.2s.");
}
