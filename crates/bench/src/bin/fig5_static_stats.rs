//! E1 — regenerate Figure 5: static benchmark program statistics.
//!
//! "Line counts are those reported by wc and include whitespace and
//! comments." Our programs are smaller than the paper's (the compiler,
//! not the applications, is the artifact under study); the paper's numbers
//! are printed alongside for comparison.

use bench::{table, Benchmark};

fn main() {
    println!("Figure 5: static benchmark program statistics\n");
    let mut rows = Vec::new();
    for b in Benchmark::ALL {
        let src = b.source();
        let prog = nova_frontend::parse(src).expect("benchmarks parse");
        let s = prog.static_stats();
        let lines = src.lines().count();
        let instrs = {
            let cfg = nova::CompileConfig::default();
            bench::compile(b, &cfg).code_size
        };
        rows.push(vec![
            b.name().to_string(),
            lines.to_string(),
            instrs.to_string(),
            s.layouts.to_string(),
            s.packs.to_string(),
            s.unpacks.to_string(),
            s.raises.to_string(),
            s.handles.to_string(),
            s.functions.to_string(),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "program", "lines", "instrs", "layouts", "pack", "unpack", "raise", "handle",
                "funs"
            ],
            &rows
        )
    );
    println!("paper (Figure 5):");
    println!("  AES:    541 lines, 588 instrs, 7 layouts, 8 pack, 5 unpack, 3 raise, 1 handle");
    println!("  Kasumi: 587 lines, 538 instrs, 7 layouts, 7 pack, 4 unpack, 2 raise, 2 handle");
    println!("  NAT:    839 lines, 740 instrs (pre-layout Nova: no layout/pack/unpack counts)");
}
