//! Machine-readable solver performance trajectory: compiles each §11
//! benchmark at 1, 2, and 4 solver threads and records solve wall/CPU
//! time, node/pivot counts, warm-start hit rates, and the allocation
//! quality (objective, moves, spills), plus one simulator throughput
//! sample per program. Written to `BENCH_solver.json` (repo root when run
//! from there) so successive PRs can diff solver performance.
//!
//! The thread sweep runs with `relative_gap = 0`, which makes the optimum
//! unique: every thread count must report the same objective and spill
//! count, so the file doubles as a determinism check.

use bench::json::Json;
use bench::{compile, run_throughput, solve_stats_json, Benchmark};
use nova::CompileConfig;
use std::time::Instant;

const THREAD_SWEEP: [usize; 3] = [1, 2, 4];

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_solver.json".into());
    let avail = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // Clamp the sweep to the host: a 4-thread run on a 1-core box only
    // measures scheduler interleaving and makes cpu_s/solve_s ratios
    // meaningless. The requested sweep is still recorded in the JSON so
    // a clamped file is recognizable.
    let mut sweep: Vec<usize> = THREAD_SWEEP.iter().map(|&t| t.min(avail)).collect();
    sweep.dedup();
    if sweep.len() < THREAD_SWEEP.len() {
        eprintln!("host has {avail} core(s); clamping thread sweep {THREAD_SWEEP:?} -> {sweep:?}");
    }
    let mut programs = Vec::new();
    for b in Benchmark::ALL {
        eprintln!("{}:", b.name());
        let mut runs = Vec::new();
        let mut last = None;
        let mut objective: Option<f64> = None;
        let mut consistent = true;
        for &threads in &sweep {
            // Exact gap: the optimum is unique, so the sweep doubles as a
            // cross-thread determinism check.
            let cfg = CompileConfig::builder()
                .solver_threads(threads)
                .solver_gap(0.0)
                .build();
            let t0 = Instant::now();
            let out = compile(b, &cfg);
            let compile_s = t0.elapsed().as_secs_f64();
            let st = &out.alloc_stats;
            eprintln!(
                "  {} threads: solve {:.2}s, {} nodes, {} pivots, {:.0}% warm, \
                 objective {:.3}, {} moves, {} spills",
                threads,
                st.solve.total_time.as_secs_f64(),
                st.solve.nodes,
                st.solve.simplex_iterations,
                100.0 * st.solve.warm_hit_rate(),
                st.objective,
                st.moves,
                st.spills,
            );
            match objective {
                None => objective = Some(st.objective),
                Some(prev) => {
                    // Tolerance matches the solver's fathoming margin:
                    // sub-margin incumbent ties are schedule-dependent.
                    if (prev - st.objective).abs() > 5e-5 {
                        consistent = false;
                        eprintln!(
                            "  WARNING: objective drifted across thread counts \
                             ({prev} vs {})",
                            st.objective
                        );
                    }
                }
            }
            let mut run = solve_stats_json(st);
            if let Json::Obj(pairs) = &mut run {
                pairs.push(("compile_s".to_string(), Json::Num(compile_s)));
            }
            runs.push(run);
            last = Some(out);
        }
        let out = last.expect("at least one thread count");
        let st = &out.alloc_stats;
        let payload = match b {
            Benchmark::Aes => 16u32,
            Benchmark::Kasumi => 16,
            Benchmark::Nat => 64,
        };
        let sim = run_throughput(b, &out, 64, payload, 4);
        eprintln!(
            "  simulate: {} packets, {} cycles, {:.1} Mb/s",
            sim.packets, sim.cycles, sim.mbps
        );
        // `degraded` marks builds that fell down the allocator fallback
        // ladder (stage > 0): bench_gate reports them but never gates.
        programs.push(Json::obj([
            ("name", Json::str(b.name())),
            ("degraded", Json::Bool(out.alloc_quality.stage > 0)),
            (
                "model",
                Json::obj([
                    ("variables", Json::int(st.model.variables)),
                    ("constraints", Json::int(st.model.constraints)),
                    ("objective_terms", Json::int(st.model.objective_terms)),
                ]),
            ),
            ("runs", Json::Arr(runs)),
            (
                "objective_consistent_across_threads",
                Json::Bool(consistent),
            ),
            ("code_size", Json::int(out.code_size)),
            (
                "simulate",
                Json::obj([
                    ("payload_bytes", Json::int(payload as usize)),
                    ("contexts", Json::int(4)),
                    ("packets", Json::int(sim.packets as usize)),
                    ("cycles", Json::int(sim.cycles as usize)),
                    ("mbps", Json::Num(sim.mbps)),
                ]),
            ),
        ]));
    }
    let doc = Json::obj([
        ("bench", Json::str("solver")),
        (
            "config",
            Json::obj([
                ("relative_gap", Json::Num(0.0)),
                (
                    "thread_sweep",
                    Json::Arr(sweep.iter().map(|&t| Json::int(t)).collect()),
                ),
                (
                    "requested_thread_sweep",
                    Json::Arr(THREAD_SWEEP.iter().map(|&t| Json::int(t)).collect()),
                ),
            ]),
        ),
        (
            "host",
            Json::obj([("available_parallelism", Json::int(avail))]),
        ),
        ("programs", Json::Arr(programs)),
    ]);
    std::fs::write(&out_path, doc.pretty()).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
