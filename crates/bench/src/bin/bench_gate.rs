//! CI perf gate: diff fresh bench artifacts against checked-in
//! baselines with the tolerances of [`bench::gate`].
//!
//! Usage:
//!
//! ```text
//! bench_gate [--solver BASE CURRENT] [--throughput BASE CURRENT] \
//!            [--phases BASE CURRENT] [--traffic BASE CURRENT] \
//!            [--service BASE CURRENT] [--reload BASE CURRENT] \
//!            [--rollout BASE CURRENT]
//! ```
//!
//! Any subset of the pairs may be given; each is parsed, gated,
//! and rendered as a markdown table on stdout. When the
//! `GITHUB_STEP_SUMMARY` environment variable points at a writable file
//! (as it does inside a GitHub Actions job), the same markdown is
//! appended there so the verdict shows up in the job summary. Exits
//! non-zero if any gating check or file/parse step fails.

use bench::gate::{
    gate_phases, gate_reload, gate_rollout, gate_service, gate_solver, gate_throughput,
    gate_traffic, GateReport,
};
use bench::json::Json;
use std::io::Write as _;

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut pairs: Vec<(&'static str, String, String)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let which = match args[i].as_str() {
            "--solver" => "solver",
            "--throughput" => "throughput",
            "--phases" => "phases",
            "--traffic" => "traffic",
            "--service" => "service",
            "--reload" => "reload",
            "--rollout" => "rollout",
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: bench_gate [--solver BASE CURRENT] \
                     [--throughput BASE CURRENT] [--phases BASE CURRENT] \
                     [--traffic BASE CURRENT] [--service BASE CURRENT] \
                     [--reload BASE CURRENT] [--rollout BASE CURRENT]"
                );
                std::process::exit(2);
            }
        };
        let (Some(base), Some(cur)) = (args.get(i + 1), args.get(i + 2)) else {
            eprintln!("--{which} needs BASELINE and CURRENT paths");
            std::process::exit(2);
        };
        pairs.push((which, base.clone(), cur.clone()));
        i += 3;
    }
    if pairs.is_empty() {
        eprintln!("nothing to gate: pass --solver/--throughput/--phases/--traffic pairs");
        std::process::exit(2);
    }

    let mut markdown = String::new();
    let mut failed = false;
    for (which, base_path, cur_path) in &pairs {
        let report = match (load(base_path), load(cur_path)) {
            (Ok(base), Ok(cur)) => match *which {
                "solver" => gate_solver(&base, &cur),
                "throughput" => gate_throughput(&base, &cur),
                "traffic" => gate_traffic(&base, &cur),
                "service" => gate_service(&base, &cur),
                "reload" => gate_reload(&base, &cur),
                "rollout" => gate_rollout(&base, &cur),
                _ => gate_phases(&base, &cur),
            },
            (Err(e), _) | (_, Err(e)) => {
                let mut r = GateReport::default();
                r.errors.push(e);
                r
            }
        };
        let title = format!("{which}: {base_path} vs {cur_path}");
        markdown.push_str(&report.markdown(&title));
        markdown.push('\n');
        failed |= !report.passed();
    }

    print!("{markdown}");
    if let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(&path)
        {
            let _ = f.write_all(markdown.as_bytes());
        }
    }
    if failed {
        eprintln!("perf gate FAILED");
        std::process::exit(1);
    }
    println!("perf gate passed");
}
