//! E16 — hot reload and restart. Measures (a) the end-to-end latency of
//! a classifier rule update on a live simulated chip — warm solve-free
//! recompile, image swap between packets, first packet transmitted
//! through the new rules — and (b) how much faster a restarted server
//! warms up when its MILP solves come off the on-disk artifact cache.
//! Results land in `BENCH_reload.json`; modeled cycles and cache
//! counters are deterministic and gated exactly, the restart speedup
//! gets an absolute floor, host walls are informational — see
//! `bench::gate::gate_reload`.

use bench::reload::{reload_json, run_hot_reload, run_restart, ScratchDir};
use bench::table;

/// Packets in the hot-reload receive queue.
const PACKETS: usize = 1200;
/// Payload bytes per packet.
const PAYLOAD: u32 = 64;
/// Transmitted-packet thresholds arming the three image swaps.
const SWAPS_AT: [u64; 3] = [300, 600, 900];
/// Structurally distinct rule sets in the restart stream.
const VARIANTS: usize = 6;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_reload.json".into());
    println!(
        "Hot reload: {PACKETS} packets, swaps after {SWAPS_AT:?}; \
         restart: {VARIANTS} structurally distinct rule sets\n"
    );

    let hot = run_hot_reload(PACKETS, PAYLOAD, &SWAPS_AT);
    println!(
        "{}",
        table(
            &[
                "swap after",
                "compile ms",
                "swap cycle",
                "first tx",
                "update cyc",
                "update us"
            ],
            &hot.swaps
                .iter()
                .map(|s| vec![
                    format!("{}", s.after_packets),
                    format!("{:.1}", s.compile_wall.as_secs_f64() * 1e3),
                    format!("{}", s.report.swap_cycle.unwrap_or(0)),
                    format!("{}", s.report.first_tx_cycle.unwrap_or(0)),
                    format!("{}", s.update_cycles()),
                    format!("{:.1}", s.update_us()),
                ])
                .collect::<Vec<_>>(),
        )
    );
    println!(
        "hot session: base solve + {} solve-free updates (alloc {}h/{}m), \
         {} packets in {} cycles\n",
        hot.swaps.len(),
        hot.stats.alloc_hits,
        hot.stats.alloc_misses,
        hot.result.packets,
        hot.result.cycles,
    );

    let dir = ScratchDir::new("reload-bench");
    let restart = run_restart(VARIANTS, dir.path());
    println!(
        "restart: cold {:.0} ms -> warm {:.0} ms ({:.1}x), disk {}h/{}m/{}r, \
         {} mismatches, {} failures",
        restart.cold_wall.as_secs_f64() * 1e3,
        restart.warm_wall.as_secs_f64() * 1e3,
        restart.speedup(),
        restart.warm_stats.disk_hits,
        restart.warm_stats.disk_misses,
        restart.warm_stats.disk_rejects,
        restart.mismatches,
        restart.failures,
    );

    let doc = reload_json(&hot, &restart);
    std::fs::write(&out_path, doc.pretty()).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    eprintln!("wrote {out_path}");
    if restart.mismatches > 0 || restart.failures > 0 {
        eprintln!("reload bench FAILED: warm artifacts diverged from cold");
        std::process::exit(1);
    }
}
