//! E2 — regenerate Figure 6: "AMPL statistics", the number of variables
//! participating in aggregate coloring (`DefLi`/`DefLDj` members on the
//! read side, `UseSi`/`UseSDj` members on the write side).

use bench::{compile, table, Benchmark};
use nova::CompileConfig;

fn main() {
    println!("Figure 6: aggregate-coloring participation\n");
    let mut rows = Vec::new();
    for b in Benchmark::ALL {
        let out = compile(b, &CompileConfig::default());
        let f = out.alloc_stats.fig6;
        rows.push(vec![
            b.name().to_string(),
            f.def_l.to_string(),
            f.def_ld.to_string(),
            f.def_total().to_string(),
            f.use_s.to_string(),
            f.use_sd.to_string(),
            f.use_total().to_string(),
        ]);
    }
    println!(
        "{}",
        table(
            &["program", "DefLi", "DefLDj", "DefTot", "UseSi", "UseSDj", "UseTot"],
            &rows
        )
    );
    println!("paper (Figure 6):");
    println!("  AES:    DefLi 68, DefLDj 16, total 84;  UseSi 4, UseSDj 10, total 14");
    println!("  Kasumi: DefLi 44, DefLDj 14, total 58;  UseSi 4, UseSDj 14, total 18");
    println!("  NAT:    DefLi 43, DefLDj 22, total 65;  UseSi 8, UseSDj 60(?), total 64");
}
