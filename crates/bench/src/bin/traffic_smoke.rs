//! Traffic-harness smoke check for CI: compile NAT once (single solver
//! thread, exact gap, so the program is reproducible), push the
//! canonical 100k-packet trace through a 2-chip sharded topology in
//! fast-path mode, and fail when the run misbehaves — packets leaked
//! (offered != delivered + dropped), the run cut off by the cycle
//! ceiling, the fast path diverging from the cycle-slice oracle on a
//! differential sub-run, host-side simulation speed below a floor, or
//! the modeled outcome drifting from the checked-in
//! `BENCH_traffic.json` baseline.
//!
//! Usage: `traffic_smoke [--min-pps FLOOR] [--baseline BENCH_traffic.json]`
//! where FLOOR is host-side delivered packets per wall-clock second.
//! The default floor is ~10× below the measured 1-core CI rate so only
//! order-of-magnitude regressions (e.g. the fast path degenerating to
//! cycle slicing) trip it, not host noise.

use bench::json::Json;
use bench::{compile, run_traffic, Benchmark};
use nova::{CompileConfig, SimMode};

const PACKETS: usize = 100_000;
const CHIPS: usize = 2;
/// The differential sub-run is small because the cycle-slice oracle is
/// the slow path — that is the point of this PR.
const DIFF_PACKETS: usize = 5_000;

/// Default host-side delivered-packets-per-second floor, ~10× below the
/// rate measured on the 1-core CI runner (see BENCH_traffic.json).
const DEFAULT_MIN_PPS: f64 = 20_000.0;

fn main() {
    let mut min_pps = DEFAULT_MIN_PPS;
    let mut baseline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--min-pps" => {
                let v = args.next().expect("--min-pps needs a value");
                min_pps = v.parse().expect("--min-pps value must be a number");
            }
            "--baseline" => {
                baseline = Some(args.next().expect("--baseline needs a path"));
            }
            other => panic!(
                "unknown argument {other}; usage: traffic_smoke [--min-pps FLOOR] \
                 [--baseline BENCH_traffic.json]"
            ),
        }
    }

    let cfg = CompileConfig::builder()
        .solver_threads(1)
        .solver_gap(0.0)
        .build();
    let out = compile(Benchmark::Nat, &cfg);
    let mut failures = Vec::new();

    // Differential sub-run: the fast path must tell exactly the same
    // story as the cycle-slice oracle, shard by shard.
    let (fast, _) = run_traffic(&out, DIFF_PACKETS, CHIPS, SimMode::FastPath);
    let (slow, _) = run_traffic(&out, DIFF_PACKETS, CHIPS, SimMode::CycleSlice);
    let story = |r: &nova::TopologyResult| {
        (
            r.offered,
            r.delivered,
            r.dropped,
            r.cycles,
            r.latency,
            r.chips
                .iter()
                .map(|c| (c.shard, c.offered, c.delivered, c.dropped, c.result.cycles))
                .collect::<Vec<_>>(),
        )
    };
    if story(&fast) != story(&slow) {
        failures.push(format!(
            "fast path diverged from the cycle-slice oracle on the \
             {DIFF_PACKETS}-packet differential run:\n  fast:  {:?}\n  slow:  {:?}",
            story(&fast),
            story(&slow),
        ));
    }

    // The gated point: 100k packets over 2 chips, fast path.
    let (res, wall) = run_traffic(&out, PACKETS, CHIPS, SimMode::FastPath);
    let wall_s = wall.as_secs_f64().max(1e-9);
    let host_pps = res.delivered as f64 / wall_s;
    eprintln!(
        "NAT x{PACKETS} packets on {CHIPS} chips: delivered {}, dropped {}, \
         latency p50/p99 {}/{} cycles, {:.1} Mb/s modeled; host {:.0} ms \
         ({:.0} pkt/s host-side)",
        res.delivered,
        res.dropped,
        res.latency.p50,
        res.latency.p99,
        res.mbps,
        wall_s * 1e3,
        host_pps,
    );
    if res.offered != res.delivered + res.dropped {
        failures.push(format!(
            "packet conservation broken: offered {} != delivered {} + dropped {}",
            res.offered, res.delivered, res.dropped,
        ));
    }
    if res.offered != PACKETS as u64 {
        failures.push(format!(
            "run cut off: offered {} of {PACKETS} packets (cycle ceiling hit?)",
            res.offered,
        ));
    }
    if res.chips.iter().any(|c| c.delivered == 0) {
        failures.push("a chip shard delivered no packets (balancer broken)".to_string());
    }
    if host_pps < min_pps {
        failures.push(format!(
            "host-side simulation speed {host_pps:.0} pkt/s below the {min_pps:.0}/s floor"
        ));
    }

    // Against the checked-in baseline: the modeled outcome of this exact
    // run is bit-deterministic, so any drift is a behavior change.
    if let Some(path) = baseline {
        match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|t| Json::parse(&t).map_err(|e| e.to_string()))
        {
            Ok(doc) => {
                let id = format!("p{PACKETS}x{CHIPS}");
                let point = doc.get("sweep").and_then(Json::as_arr).and_then(|arr| {
                    arr.iter()
                        .find(|p| p.get("id").and_then(Json::as_str) == Some(&id))
                });
                match point {
                    Some(p) => {
                        let checks: [(&str, f64); 4] = [
                            ("delivered", res.delivered as f64),
                            ("dropped", res.dropped as f64),
                            ("sim_cycles", res.cycles as f64),
                            ("mbps", res.mbps),
                        ];
                        for (key, got) in checks {
                            let want = p.num(key).unwrap_or(f64::NAN);
                            let tol = want.abs().max(1.0) * 1e-9;
                            if (got - want).abs() > tol {
                                failures.push(format!(
                                    "{key} = {got} drifted from the {path} baseline ({want})"
                                ));
                            }
                        }
                        let lat = p.get("latency");
                        for (key, got) in [("p50", res.latency.p50), ("p99", res.latency.p99)] {
                            let want = lat.and_then(|l| l.num(key)).unwrap_or(f64::NAN);
                            if got as f64 != want {
                                failures.push(format!(
                                    "latency {key} = {got} drifted from the {path} \
                                     baseline ({want})"
                                ));
                            }
                        }
                    }
                    None => failures.push(format!("{path} has no sweep point {id}")),
                }
            }
            Err(e) => failures.push(format!("baseline {path}: {e}")),
        }
    }

    if failures.is_empty() {
        eprintln!("traffic-smoke OK");
    } else {
        for f in &failures {
            eprintln!("traffic-smoke FAIL: {f}");
        }
        std::process::exit(1);
    }
}
