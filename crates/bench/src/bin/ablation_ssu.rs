//! E9 — §9(3,4)/§10: SSA and SSU are what make point-independent coloring
//! feasible. The paper's example: without static single use there is no
//! solution for
//!
//! ```text
//! sram(...) <- (X, a, b, c);
//! sram(...) <- (a, b, c, X);
//! ```
//!
//! This ablation compiles that program with the SSU pass disabled (the
//! ILP becomes infeasible) and enabled (clones make it solvable), and
//! reports clone statistics for the three benchmarks.

use bench::{table, Benchmark};
use ilp::MilpError;
use nova_backend::AllocError;

const CONFLICT: &str = r#"
fun main() {
    let (x, a, b, c) = sram(0);
    sram(100) <- (x, a, b, c);
    sram(200) <- (a, b, c, x);
    0
}
"#;

fn compile_with_ssu(src: &str, ssu: bool) -> Result<usize, String> {
    let p = nova_frontend::parse(src).map_err(|d| d.render(src))?;
    let info = nova_frontend::check(&p).map_err(|d| d.render(src))?;
    let mut cps = nova_cps::convert(&p, &info).map_err(|d| d.render(src))?;
    nova_cps::optimize(&mut cps, &Default::default());
    if ssu {
        nova_cps::to_ssu(&mut cps);
    }
    let prog = nova_backend::select(&cps).map_err(|e| e.to_string())?;
    match nova_backend::allocate(&prog, &Default::default()) {
        Ok(a) => Ok(a.stats.moves),
        Err(AllocError::Solver(MilpError::Infeasible)) => Err("INFEASIBLE".into()),
        Err(e) => Err(e.to_string()),
    }
}

fn main() {
    println!("E9: the role of static single use\n");
    println!(
        "conflicting-aggregate program without SSU: {:?}",
        compile_with_ssu(CONFLICT, false)
    );
    println!(
        "conflicting-aggregate program with SSU:    {:?}",
        compile_with_ssu(CONFLICT, true)
    );
    println!();
    let mut rows = Vec::new();
    for b in Benchmark::ALL {
        let out = bench::compile(b, &Default::default());
        rows.push(vec![
            b.name().to_string(),
            out.ssu_stats.cloned_vars.to_string(),
            out.ssu_stats.clones.to_string(),
            out.alloc_stats.moves.to_string(),
        ]);
    }
    println!(
        "{}",
        table(&["program", "cloned vars", "clones", "moves"], &rows)
    );
    println!("\nClones are copies that do not interfere: most share their");
    println!("original's register and cost nothing (moves stay low).");
}
