//! E15 — compilation as a service. Replays the seeded 1000-variant
//! rule-update stream ([`bench::service`]) through a one-worker
//! `nova-server` over one shared compile session, next to a cold
//! one-shot baseline, and records warm/cold compiles per second, the
//! warm-over-cold speedup, and the session's per-phase cache counters.
//! Results land in `BENCH_service.json`; the counters (and the
//! zero-mismatch bit-identity of warm vs cold artifacts) are
//! deterministic and gated exactly, the rates get floors — see
//! `bench::gate::gate_service`.
//!
//! One worker keeps the counter algebra exact; the compile is pinned to
//! one solver thread so warm and cold allocations are bit-identical.

use bench::service::{run_service, service_json};
use bench::table;

/// Requests in the stream.
const TOTAL: usize = 1000;
/// Distinct rule-set variants (request `i` carries variant `i % 250`).
const DISTINCT: usize = 250;
/// Cold one-shot compiles sampled for the baseline rate.
const COLD_SAMPLES: usize = 25;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_service.json".into());
    println!(
        "Compile service: {TOTAL} requests over {DISTINCT} rule-set variants, \
         {COLD_SAMPLES} cold one-shot samples\n"
    );
    let run = run_service(TOTAL, DISTINCT, COLD_SAMPLES);
    let s = &run.stats;
    println!(
        "{}",
        table(
            &["side", "compiles", "wall ms", "compiles/s"],
            &[
                vec![
                    "cold".into(),
                    format!("{}", run.cold_samples),
                    format!("{:.0}", run.cold_wall.as_secs_f64() * 1e3),
                    format!("{:.0}", run.cold_rate()),
                ],
                vec![
                    "warm".into(),
                    format!("{}", run.total),
                    format!("{:.0}", run.warm_wall.as_secs_f64() * 1e3),
                    format!("{:.0}", run.warm_rate()),
                ],
            ],
        )
    );
    println!(
        "speedup: {:.1}x   image hits {}/{}   solve-free recompiles {}/{} \
         (refinish fallbacks {})",
        run.speedup(),
        s.output_hits,
        s.output_hits + s.output_misses,
        s.alloc_hits,
        s.alloc_hits + s.alloc_misses,
        s.refinish_fallbacks,
    );
    println!(
        "warm vs cold artifacts: {} compared, {} mismatches, {} failures",
        run.cold_samples, run.mismatches, run.failures
    );
    let doc = service_json(&run);
    std::fs::write(&out_path, doc.pretty()).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    eprintln!("wrote {out_path}");
    if run.mismatches > 0 || run.failures > 0 {
        eprintln!("service bench FAILED: warm artifacts diverged from cold");
        std::process::exit(1);
    }
}
