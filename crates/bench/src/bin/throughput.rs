//! E4 — regenerate §11's throughput measurements, now at chip scale. The
//! paper reports, on a 233 MHz IXP1200 with a hardware packet generator:
//! AES 270 Mb/s at 16-byte payloads; Kasumi 320, 210, and 60 Mb/s at 8,
//! 16, and 256-byte payloads. We run the compiled programs on the
//! chip-level simulator, sweeping the micro-engine count from 1 to the
//! full chip's 6, and record per-channel occupancy so the scaling knee
//! (line rate until a memory channel saturates) is visible in the data,
//! not just asserted. Results land in `BENCH_throughput.json`.
//!
//! The compile is pinned to one solver thread and an exact gap so the
//! allocated program — and therefore the deterministic chip simulation —
//! is bit-identical across hosts and reruns.

use bench::json::Json;
use bench::{chip_result_json, compile, run_chip_throughput, run_throughput, table, Benchmark};
use nova::{CompileConfig, StopReason};

const ENGINE_SWEEP: [usize; 6] = [1, 2, 3, 4, 5, 6];
const CONTEXTS: usize = 4;
const PACKETS: usize = 64;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_throughput.json".into());
    println!("Throughput on the simulated 233 MHz IXP1200 ({CONTEXTS} contexts/engine)\n");
    let cfg = CompileConfig::builder()
        .solver_threads(1)
        .solver_gap(0.0)
        .build();
    let mut programs = Vec::new();
    let mut rows = Vec::new();
    for (b, payload) in [
        (Benchmark::Aes, 16u32),
        (Benchmark::Kasumi, 16),
        (Benchmark::Nat, 64),
    ] {
        let out = compile(b, &cfg);
        let s = &out.alloc_stats.solve;
        println!(
            "{}: ILP solved in {:.2}s ({} nodes, {} pivots, {:.0}% warm-start hits)",
            b.name(),
            s.total_time.as_secs_f64(),
            s.nodes,
            s.simplex_iterations,
            100.0 * s.warm_hit_rate(),
        );
        let mut sweep = Vec::new();
        for engines in ENGINE_SWEEP {
            let res = run_chip_throughput(b, &out, PACKETS, payload, engines, CONTEXTS);
            // A cycle-limited run is not an error: its per-engine and
            // per-channel statistics describe the completed prefix and
            // are recorded exactly like a finished run's, with the
            // `stop` field ("cycle-limit") and the packet count marking
            // it as partial — in the JSON, the table, and under either
            // scheduler mode.
            let packets_cell = if res.stop == StopReason::CycleLimit {
                format!("{}/{PACKETS} (partial)", res.packets)
            } else {
                res.packets.to_string()
            };
            let busiest = res
                .channels
                .iter()
                .max_by(|a, c| a.occupancy(res.cycles).total_cmp(&c.occupancy(res.cycles)))
                .expect("three channels");
            rows.push(vec![
                b.name().to_string(),
                payload.to_string(),
                engines.to_string(),
                packets_cell,
                res.cycles.to_string(),
                format!("{:.1}", res.mbps),
                format!(
                    "{:?} {:.0}%",
                    busiest.space,
                    100.0 * busiest.occupancy(res.cycles)
                ),
            ]);
            let mut entry = chip_result_json(&res);
            if let Json::Obj(pairs) = &mut entry {
                pairs.insert(0, ("engines".to_string(), Json::int(engines)));
            }
            sweep.push(entry);
        }
        // Single-engine payload sweep, the pre-chip E4 shape, kept so the
        // payload-size trend stays comparable across PRs.
        let payload_sweep: Vec<Json> = match b {
            Benchmark::Aes => vec![16u32, 32, 64, 128, 256],
            Benchmark::Kasumi => vec![8, 16, 32, 64, 256],
            Benchmark::Nat => vec![16, 64, 256],
        }
        .into_iter()
        .map(|p| {
            let res = run_throughput(b, &out, PACKETS, p, CONTEXTS);
            Json::obj([
                ("payload_bytes", Json::int(p as usize)),
                ("packets", Json::int(res.packets as usize)),
                ("cycles", Json::int(res.cycles as usize)),
                ("mbps", Json::Num(res.mbps)),
                (
                    "stop",
                    Json::str(match res.stop {
                        StopReason::AllHalted => "all-halted",
                        StopReason::CycleLimit => "cycle-limit",
                    }),
                ),
            ])
        })
        .collect();
        // A build that fell down the allocator ladder is still valid but
        // not comparable: mark it so bench_gate reports without gating.
        programs.push(Json::obj([
            ("name", Json::str(b.name())),
            ("degraded", Json::Bool(out.alloc_quality.stage > 0)),
            ("payload_bytes", Json::int(payload as usize)),
            ("engine_sweep", Json::Arr(sweep)),
            ("single_engine_payload_sweep", Json::Arr(payload_sweep)),
        ]));
    }
    println!();
    println!(
        "{}",
        table(
            &[
                "program",
                "payload(B)",
                "engines",
                "packets",
                "cycles",
                "Mb/s",
                "busiest channel"
            ],
            &rows,
        )
    );
    println!("paper (§11, real IXP1200 hardware, full chip):");
    println!("  AES:    270 Mb/s at 16 B payloads");
    println!("  Kasumi: 320 / 210 / 60 Mb/s at 8 / 16 / 256 B payloads");
    println!();
    println!("shapes to check: Mb/s scales with engine count until the busiest");
    println!("memory channel's occupancy approaches 100%, then flattens — the");
    println!("knee the paper's latency-hiding design runs into (§11).");
    let doc = Json::obj([
        ("bench", Json::str("throughput")),
        (
            "config",
            Json::obj([
                (
                    "clock_hz",
                    Json::int(ixp_machine::timing::CLOCK_HZ as usize),
                ),
                ("contexts", Json::int(CONTEXTS)),
                ("packets", Json::int(PACKETS)),
                (
                    "engine_sweep",
                    Json::Arr(ENGINE_SWEEP.iter().map(|&e| Json::int(e)).collect()),
                ),
                ("solver_threads", Json::int(1)),
                ("relative_gap", Json::Num(0.0)),
            ]),
        ),
        ("programs", Json::Arr(programs)),
    ]);
    std::fs::write(&out_path, doc.pretty()).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
