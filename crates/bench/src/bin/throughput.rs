//! E4 — regenerate §11's throughput measurements. The paper reports, on a
//! 233 MHz IXP1200 with a hardware packet generator: AES 270 Mb/s at
//! 16-byte payloads; Kasumi 320, 210, and 60 Mb/s at 8, 16, and 256-byte
//! payloads. We run the compiled programs on the cycle-approximate
//! simulator with 4 hardware contexts and sweep payload sizes.

use bench::{compile, run_throughput, table, Benchmark};
use nova::CompileConfig;

fn main() {
    println!("Throughput on the simulated 233 MHz IXP1200 (4 contexts)\n");
    let cfg = CompileConfig::default();
    let mut rows = Vec::new();
    for (b, payloads) in [
        (Benchmark::Aes, vec![16u32, 32, 64, 128, 256]),
        (Benchmark::Kasumi, vec![8, 16, 32, 64, 256]),
        (Benchmark::Nat, vec![16, 64, 256]),
    ] {
        let out = compile(b, &cfg);
        let s = &out.alloc_stats.solve;
        println!(
            "{}: ILP solved in {:.2}s ({} nodes, {} pivots, {} threads, {:.0}% warm-start hits)",
            b.name(),
            s.total_time.as_secs_f64(),
            s.nodes,
            s.simplex_iterations,
            s.threads,
            100.0 * s.warm_hit_rate(),
        );
        for p in payloads {
            let res = run_throughput(b, &out, 64, p, 4);
            rows.push(vec![
                b.name().to_string(),
                p.to_string(),
                res.packets.to_string(),
                res.cycles.to_string(),
                format!("{:.1}", res.mbps),
            ]);
        }
    }
    println!("{}", table(&["program", "payload(B)", "packets", "cycles", "Mb/s"], &rows));
    println!("paper (§11, real IXP1200 hardware):");
    println!("  AES:    270 Mb/s at 16 B payloads");
    println!("  Kasumi: 320 / 210 / 60 Mb/s at 8 / 16 / 256 B payloads");
    println!();
    println!("note: Mb/s counts transmitted payload+header bytes, as the paper's");
    println!("bit-rate does; shapes to check: throughput falls as payload grows");
    println!("(per-block cost dominates) and Kasumi outpaces AES at tiny payloads.");
}
