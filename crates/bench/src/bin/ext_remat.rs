//! E10 — §12's re-materialization extension. The paper: "We treat every
//! individual constant as a temporary and invent a virtual register bank
//! `C` \[of\] unlimited capacity... A move to `C` represents discarding a
//! constant (zero cost); a move from `C` represents the load operation...
//! This scheme can be further refined by paying attention to pairs
//! (c1, c2) of constants where calculating c2 from c1 is cheaper than
//! loading c2 from scratch. (We have an AMPL model that takes all this
//! into account, but we did not find the time to complete the rest of our
//! compiler infrastructure to take advantage of it.)"
//!
//! We reproduce exactly that state of the work: the ILP model exists and
//! is solved here — choosing which constants stay resident in the unused
//! general-purpose registers and which are re-derived from others — and
//! its projected cycle savings are reported, without rewiring code
//! generation.

use bench::{compile, table, Benchmark};
use ilp::{BranchConfig, Cmp, LinExpr, Problem};
use ixp_machine::{timing, Instr};
use nova::CompileConfig;
use std::collections::HashMap;

/// Can `c2` be derived from `c1` in one ALU instruction (shift or small
/// add)? Cheaper than a 2-cycle wide `immed`.
fn derivable(c1: u32, c2: u32) -> bool {
    if c1 == c2 {
        return false;
    }
    for k in 1..32 {
        if c1 << k == c2 || c1 >> k == c2 {
            return true;
        }
    }
    c2.wrapping_sub(c1) < 32 || c1.wrapping_sub(c2) < 32
}

fn main() {
    println!("E10: re-materialization with the constant bank C (§12)\n");
    let mut rows = Vec::new();
    for b in Benchmark::ALL {
        let out = compile(b, &CompileConfig::default());
        // Collect constant loads with a uniform frequency model (blocks in
        // packet loops all run once per packet here).
        let mut loads: HashMap<u32, u32> = HashMap::new();
        for blk in &out.prog.blocks {
            for ins in &blk.instrs {
                if let Instr::Imm { val, .. } = ins {
                    *loads.entry(*val).or_insert(0) += 1;
                }
            }
        }
        let consts: Vec<(u32, u32)> = {
            let mut v: Vec<(u32, u32)> = loads.into_iter().collect();
            v.sort();
            v
        };
        // Spare general-purpose registers after allocation.
        let used: std::collections::HashSet<ixp_machine::PhysReg> = out
            .prog
            .blocks
            .iter()
            .flat_map(|b| b.instrs.iter())
            .flat_map(|i| i.defs().into_iter().copied().collect::<Vec<_>>())
            .filter(|r| !r.bank.is_transfer())
            .collect();
        let spare = 32usize.saturating_sub(used.len());

        // The ILP: resident[c] = keep c in a register for the whole loop;
        // derived[(i,j)] = re-derive c_j from resident c_i (1 cycle).
        let mut p = Problem::minimize();
        let n = consts.len();
        let resident: Vec<_> = (0..n).map(|i| p.add_binary(format!("res{i}"))).collect();
        let mut derive_vars: Vec<(usize, usize, ilp::Var)> = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i != j && derivable(consts[i].0, consts[j].0) {
                    let v = p.add_binary(format!("der{i}_{j}"));
                    // Deriving from c_i requires c_i resident.
                    p.add_constraint(
                        format!("needs{i}_{j}"),
                        LinExpr::from(v) - resident[i],
                        Cmp::Le,
                        0.0,
                    );
                    derive_vars.push((i, j, v));
                }
            }
        }
        // Each constant is loaded, resident, or derived.
        let mut obj = LinExpr::new();
        for j in 0..n {
            let (val, uses) = consts[j];
            let load_cost = timing::issue_cycles(&Instr::Imm {
                dst: ixp_machine::PhysReg::new(ixp_machine::Bank::A, 0),
                val,
            }) as f64;
            let derives: Vec<ilp::Var> = derive_vars
                .iter()
                .filter(|(_, jj, _)| *jj == j)
                .map(|(_, _, v)| *v)
                .collect();
            // covered_j = resident_j + sum(derive into j) <= 1
            let covered = LinExpr::from(resident[j]) + LinExpr::sum(derives.iter().copied());
            p.add_constraint(format!("cover{j}"), covered.clone(), Cmp::Le, 1.0);
            // Cost: per use, full load if uncovered; 1 cycle if derived;
            // free if resident (one setup load amortized over the loop).
            let full = uses as f64 * load_cost;
            obj += LinExpr::constant(full);
            obj += LinExpr::from(resident[j]) * (-full + 0.01);
            for d in &derives {
                obj += LinExpr::from(*d) * (-(full - uses as f64) + 0.005);
            }
        }
        // Register budget.
        p.add_constraint(
            "budget",
            LinExpr::sum(resident.iter().copied()),
            Cmp::Le,
            spare as f64,
        );
        p.set_objective(obj.clone());
        let baseline: f64 = consts
            .iter()
            .map(|(val, uses)| {
                *uses as f64
                    * timing::issue_cycles(&Instr::Imm {
                        dst: ixp_machine::PhysReg::new(ixp_machine::Bank::A, 0),
                        val: *val,
                    }) as f64
            })
            .sum();
        let sol = ilp::solve_milp(&p, &BranchConfig::default()).expect("remat model solves");
        let n_res = resident
            .iter()
            .filter(|v| sol.values[v.index()] > 0.5)
            .count();
        let n_der = derive_vars
            .iter()
            .filter(|(_, _, v)| sol.values[v.index()] > 0.5)
            .count();
        rows.push(vec![
            b.name().to_string(),
            n.to_string(),
            spare.to_string(),
            n_res.to_string(),
            n_der.to_string(),
            format!("{baseline:.0}"),
            format!("{:.0}", sol.objective),
            format!(
                "{:.0}%",
                100.0 * (baseline - sol.objective) / baseline.max(1.0)
            ),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "program",
                "consts",
                "spare regs",
                "resident",
                "derived",
                "load cyc",
                "after",
                "saved"
            ],
            &rows
        )
    );
    println!("\nAs in the paper, the model is solved but not yet wired into code");
    println!("generation; the savings are projected per packet-loop iteration.");
}
