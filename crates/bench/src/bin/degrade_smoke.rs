//! Degrade smoke: compile every checked-in workload under a deliberately
//! impossible 50 ms solver deadline with the default `Ladder` fallback
//! policy, and require zero compile failures. This is the CI teeth behind
//! the never-fail-compilation contract (DESIGN.md §9): when the exact ILP
//! can't finish, the staged allocator must still hand back a verified,
//! runnable allocation — degraded, never dead.
//!
//! Each compiled image (degraded or not) is then run through the
//! chip-level simulator on a multi-context configuration: degraded code
//! that compiles but livelocks or drops packets is a smoke failure too —
//! per-context spill addressing is part of the contract.
//!
//! Exits non-zero if any workload fails to compile, fails to complete
//! its packets, or if an allegedly exact result (stage 0) claims a
//! deadline it could not have met.

use bench::{run_chip_throughput, table, Benchmark};
use nova::{CompileConfig, Compiler, FallbackPolicy};
use std::time::Duration;

const DEADLINE: Duration = Duration::from_millis(50);
const PACKETS: usize = 8;
const ENGINES: usize = 2;
const CONTEXTS: usize = 4;

fn main() {
    println!(
        "Degrade smoke: {} ms solver deadline, FallbackPolicy::Ladder\n",
        DEADLINE.as_millis()
    );
    let cfg = CompileConfig::builder()
        .solver_deadline(Some(DEADLINE))
        .fallback_policy(FallbackPolicy::Ladder)
        .build();
    let compiler = Compiler::new(cfg);
    let mut rows = Vec::new();
    let mut failures = 0usize;
    for b in Benchmark::ALL {
        match compiler.compile_output(b.source()) {
            Ok(out) => {
                let res = run_chip_throughput(b, &out, PACKETS, 16, ENGINES, CONTEXTS);
                let ran =
                    res.stop == ixp_sim::StopReason::AllHalted && res.packets as usize == PACKETS;
                if !ran {
                    failures += 1;
                }
                let q = &out.alloc_quality;
                rows.push(vec![
                    b.name().to_string(),
                    if ran { "ok" } else { "FAIL: sim" }.to_string(),
                    q.stage.to_string(),
                    if q.proven_optimal { "yes" } else { "no" }.to_string(),
                    format!("{:.4}", q.gap),
                    q.spills.to_string(),
                    format!("{}/{PACKETS}", res.packets),
                ]);
            }
            Err(e) => {
                failures += 1;
                rows.push(vec![
                    b.name().to_string(),
                    format!("FAIL: {e}"),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    println!(
        "{}",
        table(
            &["program", "status", "stage", "optimal", "gap", "spills", "pkts"],
            &rows
        )
    );
    if failures > 0 {
        eprintln!("degrade smoke FAILED: {failures} workload(s) did not compile and run");
        std::process::exit(1);
    }
    println!(
        "degrade smoke passed: 0 failures under a {DEADLINE:?} deadline \
         ({ENGINES} engines x {CONTEXTS} contexts, {PACKETS} packets each)"
    );
}
