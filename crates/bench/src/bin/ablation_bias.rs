//! E7 — §7's A-over-B bias: "we also added a small bias towards using A
//! registers over B registers since we found that this speeds up the ILP
//! solver." Bias 1.01 (paper) vs 1.0 (off).

use bench::{compile, table, Benchmark};
use nova::CompileConfig;

fn main() {
    println!("E7: objective bias on moves out of B\n");
    let mut rows = Vec::new();
    for b in Benchmark::ALL {
        for (mode, bias) in [("bias=1.01", 1.01), ("bias=1.0", 1.0)] {
            let mut cfg = CompileConfig::default();
            cfg.alloc.bias = bias;
            let out = compile(b, &cfg);
            rows.push(vec![
                b.name().to_string(),
                mode.to_string(),
                format!("{:.2}", out.alloc_stats.solve.total_time.as_secs_f64()),
                out.alloc_stats.solve.nodes.to_string(),
                out.alloc_stats.moves.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        table(&["program", "mode", "total(s)", "nodes", "moves"], &rows)
    );
}
