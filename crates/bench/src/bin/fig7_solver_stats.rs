//! E3 — regenerate Figure 7: solver statistics. Root-relaxation time,
//! integer solve time (to the paper's 0.01 % gap), model sizes, and the
//! solution's inter-bank moves and spills.
//!
//! Absolute sizes and times differ from the paper by design: CPLEX on the
//! authors' 800 MHz PIII is replaced by this repository's own
//! simplex/branch-and-bound, and the move-point compression plus
//! `Before`/`After` aliasing shrink the generated programs (DESIGN.md §5).
//! The shape to check: root relaxations solve quickly, integer optima are
//! close to the roots, moves are few, and spills are zero.

use bench::{compile, table, Benchmark};
use nova::CompileConfig;

fn main() {
    println!("Figure 7: solver statistics\n");
    let mut rows = Vec::new();
    let mut telemetry = Vec::new();
    for b in Benchmark::ALL {
        let out = compile(b, &CompileConfig::default());
        let st = &out.alloc_stats;
        rows.push(vec![
            b.name().to_string(),
            format!("{:.2}", st.solve.root_time.as_secs_f64()),
            format!("{:.2}", st.solve.total_time.as_secs_f64()),
            st.model.variables.to_string(),
            st.model.constraints.to_string(),
            st.model.objective_terms.to_string(),
            st.solve.nodes.to_string(),
            st.moves.to_string(),
            st.spills.to_string(),
        ]);
        telemetry.push(vec![
            b.name().to_string(),
            st.solve.threads.to_string(),
            st.solve.simplex_iterations.to_string(),
            format!("{:.0}%", 100.0 * st.solve.warm_hit_rate()),
            st.solve.activated_rows.to_string(),
            st.solve.presolved_rows.to_string(),
            format!("{:.2}", st.solve.cpu_time.as_secs_f64()),
            format!(
                "[{}]",
                st.solve
                    .per_thread_nodes
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "program", "root(s)", "total(s)", "vars", "rows", "objterms", "nodes", "moves",
                "spills"
            ],
            &rows
        )
    );
    println!("solver telemetry:\n");
    println!(
        "{}",
        table(
            &[
                "program",
                "threads",
                "pivots",
                "warm-hit",
                "lazy-act",
                "presolved",
                "cpu(s)",
                "nodes/thread"
            ],
            &telemetry
        )
    );
    println!("paper (Figure 7, CPLEX on 800 MHz dual PIII):");
    println!("  AES:    root 30.4s, integer 35.9s, 108k vars, 102k rows, 37k obj terms, 25 moves, 0 spills");
    println!("  Kasumi: root 48.2s, integer 59.2s, 138k vars, 131k rows, 50k obj terms, 20 moves, 0 spills");
    println!("  NAT:    root 69.2s, integer 155.6s, 208k vars, 203k rows, 72k obj terms, 60 moves, 0 spills");
}
