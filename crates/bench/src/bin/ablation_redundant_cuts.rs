//! E6 — §9's redundant aggregate-position cuts: "adding a redundant set of
//! constraints that immediately rules out a number of impossible
//! allocations for an aggregate speeds up the solver." On/off comparison.

use bench::{compile, table, Benchmark};
use nova::CompileConfig;

fn main() {
    println!("E6: redundant aggregate-position cuts\n");
    let mut rows = Vec::new();
    for b in Benchmark::ALL {
        for (mode, cuts) in [("with-cuts", true), ("no-cuts", false)] {
            let mut cfg = CompileConfig::default();
            cfg.alloc.redundant_cuts = cuts;
            let out = compile(b, &cfg);
            rows.push(vec![
                b.name().to_string(),
                mode.to_string(),
                format!("{:.2}", out.alloc_stats.solve.root_time.as_secs_f64()),
                format!("{:.2}", out.alloc_stats.solve.total_time.as_secs_f64()),
                out.alloc_stats.solve.nodes.to_string(),
                out.alloc_stats.moves.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        table(
            &["program", "mode", "root(s)", "total(s)", "nodes", "moves"],
            &rows
        )
    );
}
