//! Chip-simulation smoke check for CI: compile NAT once (single solver
//! thread, exact gap, so the program is reproducible), run it on a
//! 2-engine chip, and fail when the run misbehaves — packets lost, cycle
//! limit hit, host-thread-count-dependent results, or modeled packet
//! throughput below a floor.
//!
//! Usage: `chip_smoke [--min-pps FLOOR]`, where FLOOR is packets per
//! second at the modeled 233 MHz clock. The default floor is far below
//! the measured rate so only order-of-magnitude regressions (e.g. a
//! context-scheduling bug serializing the engines) trip it, not modest
//! timing-model changes.

use bench::{compile, run_chip_throughput, Benchmark};
use ixp_machine::timing::CLOCK_HZ;
use nova::{CompileConfig, StopReason};

const ENGINES: usize = 2;
const CONTEXTS: usize = 4;
const PACKETS: usize = 64;
const PAYLOAD: u32 = 64;

/// Default modeled packets-per-second floor. A 2-engine NAT run clears
/// 10× this (see BENCH_throughput.json).
const DEFAULT_MIN_PPS: f64 = 50_000.0;

fn main() {
    let mut min_pps = DEFAULT_MIN_PPS;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--min-pps" => {
                let v = args.next().expect("--min-pps needs a value");
                min_pps = v.parse().expect("--min-pps value must be a number");
            }
            other => panic!("unknown argument {other}; usage: chip_smoke [--min-pps FLOOR]"),
        }
    }

    let cfg = CompileConfig::builder()
        .solver_threads(1)
        .solver_gap(0.0)
        .build();
    let out = compile(Benchmark::Nat, &cfg);
    let res = run_chip_throughput(Benchmark::Nat, &out, PACKETS, PAYLOAD, ENGINES, CONTEXTS);
    let secs = res.cycles as f64 / CLOCK_HZ as f64;
    let pps = if secs > 0.0 {
        res.packets as f64 / secs
    } else {
        0.0
    };
    eprintln!(
        "NAT on {ENGINES} engines x {CONTEXTS} contexts: {} packets in {} cycles \
         ({:.0} pkt/s, {:.1} Mb/s), stop {:?}",
        res.packets, res.cycles, pps, res.mbps, res.stop,
    );
    for c in &res.channels {
        eprintln!(
            "  {:?}: {} reads, {} writes, occupancy {:.0}%, max queue {}",
            c.space,
            c.reads,
            c.writes,
            100.0 * c.occupancy(res.cycles),
            c.max_queue_depth,
        );
    }
    let mut failures = Vec::new();
    if res.stop != StopReason::AllHalted {
        failures.push(format!(
            "run stopped with {:?}, expected AllHalted",
            res.stop
        ));
    }
    if res.packets != PACKETS as u64 {
        failures.push(format!("processed {} of {PACKETS} packets", res.packets));
    }
    if res.engines.iter().any(|e| e.packets == 0) {
        failures.push("an engine processed no packets (work sharing broken)".to_string());
    }
    if pps < min_pps {
        failures.push(format!(
            "modeled packet throughput {pps:.0}/s below the {min_pps:.0}/s floor"
        ));
    }
    if failures.is_empty() {
        eprintln!("chip-smoke OK");
    } else {
        for f in &failures {
            eprintln!("chip-smoke FAIL: {f}");
        }
        std::process::exit(1);
    }
}
