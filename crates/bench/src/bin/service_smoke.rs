//! Service smoke: a scaled-down copy of the E15 compile-service stream
//! (`bench::service`) with hard assertions instead of a baseline diff —
//! the tier-1 teeth behind the session cache's contracts:
//!
//! * the exact counter algebra of the seeded stream (image hits,
//!   solve-free recompiles, no refinish fallbacks);
//! * bit-identity of warm artifacts against cold one-shot compiles;
//! * a conservative warm-over-cold speedup floor (the full bench gates
//!   the real ≥5x bar; the smoke run is small enough that a loose floor
//!   still catches the cache being structurally off).
//!
//! Exits non-zero on any violation.

use bench::service::run_service;

/// Requests in the smoke stream.
const TOTAL: usize = 60;
/// Distinct rule-set variants.
const DISTINCT: usize = 20;
/// Cold one-shot compiles sampled for the baseline (every distinct
/// variant once would dominate smoke wall time; five is enough for a
/// stable rate on a loose floor).
const COLD_SAMPLES: usize = 5;
/// Conservative speedup floor for the small stream.
const SPEEDUP_FLOOR: f64 = 2.0;

fn main() {
    println!(
        "Service smoke: {TOTAL} requests over {DISTINCT} variants, \
         {COLD_SAMPLES} cold samples, speedup floor {SPEEDUP_FLOOR}x\n"
    );
    let run = run_service(TOTAL, DISTINCT, COLD_SAMPLES);
    let s = &run.stats;
    println!(
        "cold {:.0}/s, warm {:.0}/s, speedup {:.1}x",
        run.cold_rate(),
        run.warm_rate(),
        run.speedup()
    );
    println!(
        "counters: output {}h/{}m  frontend {}h/{}m  alloc {}h/{}m  \
         refinish fallbacks {}",
        s.output_hits,
        s.output_misses,
        s.frontend_hits,
        s.frontend_misses,
        s.alloc_hits,
        s.alloc_misses,
        s.refinish_fallbacks,
    );

    let mut failures = Vec::new();
    let mut check = |name: &str, ok: bool| {
        if !ok {
            failures.push(name.to_string());
        }
    };
    check("no compile failures", run.failures == 0);
    check("warm artifacts bit-identical to cold", run.mismatches == 0);
    check(
        "every repeat request is an image hit",
        s.output_hits == (TOTAL - DISTINCT) as u64,
    );
    check(
        "every first occurrence misses the image cache",
        s.output_misses == DISTINCT as u64,
    );
    check(
        "exactly one MILP solve for the shared structure",
        s.alloc_misses == 1,
    );
    check(
        "every other variant re-finishes without a solve",
        s.alloc_hits == DISTINCT as u64 - 1,
    );
    check("no refinish fallbacks", s.refinish_fallbacks == 0);
    check(
        "warm speedup clears the smoke floor",
        run.speedup() >= SPEEDUP_FLOOR,
    );

    if failures.is_empty() {
        println!("\nservice smoke passed: 8 checks");
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        eprintln!("\nservice smoke FAILED: {} check(s)", failures.len());
        std::process::exit(1);
    }
}
