//! E14 — trace-driven multi-chip traffic simulation. The ROADMAP
//! north-star is "heavy traffic from millions of users", not 64 packets
//! through one chip: this sweep pushes the canonical bursty Zipf trace
//! ([`bench::traffic_spec`]) through sharded IXP1200 topologies behind
//! the deterministic flow-hash load balancer, from a 100k-packet smoke
//! point up to 10M packets across 8 chips, and records the modeled
//! outcome (drops, latency percentiles, aggregate Mb/s) next to the
//! host-side simulation rate the event-driven fast path buys. Results
//! land in `BENCH_traffic.json`; every modeled number is
//! bit-deterministic and gated exactly, host rates get a generous floor
//! (see `bench::gate::gate_traffic`).
//!
//! The compile is pinned to one solver thread and an exact gap so the
//! allocated NAT program — and therefore the simulation — is
//! bit-identical across hosts and reruns.

use bench::json::Json;
use bench::{
    compile, microburst_spec, run_traffic_spec, table, traffic_result_json, traffic_spec, Benchmark,
};
use nova::{CompileConfig, SimMode};

/// (packets, chips): one small point per chip count for shape, then the
/// 10M-packet run the fast path exists for.
const SWEEP: [(usize, usize); 4] = [(100_000, 1), (100_000, 2), (1_000_000, 4), (10_000_000, 8)];

/// Microburst stress points: line-rate ~48-packet bursts against the
/// 64-slot receive buffer. Bursts are per-flow and the balancer is
/// flow-affine, so adding chips thins cross-flow collisions but cannot
/// absorb a single flow's burst — the drop column stays nonzero.
const BURST_SWEEP: [(usize, usize); 2] = [(100_000, 1), (100_000, 2)];

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_traffic.json".into());
    println!("Multi-chip traffic sweep (NAT, fast-path mode, flow-hash sharding)\n");
    let cfg = CompileConfig::builder()
        .solver_threads(1)
        .solver_gap(0.0)
        .build();
    let out = compile(Benchmark::Nat, &cfg);
    let mut sweep = Vec::new();
    let mut rows = Vec::new();
    let mut run_point = |shape: &str, id: String, packets: usize, chips: usize| {
        let spec = match shape {
            "burst" => microburst_spec(packets),
            _ => traffic_spec(packets),
        };
        let (res, wall) = run_traffic_spec(&out, &spec, chips, SimMode::FastPath);
        let entry = traffic_result_json(&id, packets, chips, &res, wall);
        rows.push(vec![
            shape.to_string(),
            format!("{packets}"),
            format!("{chips}"),
            format!("{}", res.delivered),
            format!("{}", res.dropped),
            format!("{}", res.latency.p50),
            format!("{}", res.latency.p99),
            format!("{:.1}", res.mbps),
            format!("{:.0}", wall.as_secs_f64() * 1e3),
            format!(
                "{:.1}",
                entry.num("host_sim_cycles_per_sec").unwrap_or(0.0) / 1e6
            ),
        ]);
        sweep.push(entry);
    };
    for (packets, chips) in SWEEP {
        run_point("paced", format!("p{packets}x{chips}"), packets, chips);
    }
    for (packets, chips) in BURST_SWEEP {
        run_point("burst", format!("burst{packets}x{chips}"), packets, chips);
    }
    println!(
        "{}",
        table(
            &[
                "shape",
                "packets",
                "chips",
                "delivered",
                "dropped",
                "lat p50",
                "lat p99",
                "Mb/s",
                "host ms",
                "Msim-cyc/s",
            ],
            &rows,
        )
    );
    println!("latencies are in 233 MHz chip cycles, arrival to transmit;");
    println!("Mb/s is the modeled aggregate over all chips.");
    let doc = Json::obj([
        ("bench", Json::str("traffic")),
        (
            "config",
            Json::obj([
                (
                    "clock_hz",
                    Json::int(ixp_machine::timing::CLOCK_HZ as usize),
                ),
                ("benchmark", Json::str("NAT")),
                ("mode", Json::str("fast_path")),
                ("solver_threads", Json::int(1)),
                ("relative_gap", Json::Num(0.0)),
            ]),
        ),
        ("sweep", Json::Arr(sweep)),
    ]);
    std::fs::write(&out_path, doc.pretty()).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
