//! Perf-baseline gating: diff a fresh bench artifact against its
//! checked-in baseline with explicit per-metric tolerances.
//!
//! The CI release job regenerates `BENCH_solver.ci.json`,
//! `BENCH_throughput.ci.json`, and `BENCH_phases.ci.json`, then runs the
//! `bench_gate` binary over (baseline, current) pairs. The policy lives
//! here so it is unit-testable:
//!
//! * **rates** get a relative floor — pivots/s may drop at most 20%,
//!   simulated Mbps at most 15% — because they carry host wall-clock
//!   noise;
//! * **deterministic metrics** (simulated cycles/packets, solver
//!   objective, spill counts) are gated exactly: the solver and both
//!   simulators are bit-deterministic at fixed thread count, so any
//!   drift is a real behavior change that should come with a baseline
//!   regeneration in the same PR;
//! * **wall times** (root/solve seconds, per-phase nanoseconds) are
//!   reported as informational rows only — except the ILP phase, whose
//!   `wall_ms` and `allocs` get explicit **ceilings**: the CSR model
//!   generator, presolve, and pooled solver memory bought an
//!   order-of-magnitude reduction there, and a silent regression back
//!   to the old profile should fail CI even though it "works". The
//!   ceilings carry generous headroom (wall time is host-noisy;
//!   allocation counts wobble only with hash-map growth patterns), so
//!   they trip on structural regressions, not jitter.

use crate::json::Json;

/// How much a pivots/s rate may drop before the gate fails (relative).
pub const PIVOTS_PER_SEC_DROP: f64 = 0.20;
/// How much a simulated throughput rate may drop before the gate fails.
pub const THROUGHPUT_DROP: f64 = 0.15;
/// Relative slack for "exact" floating-point metrics (objective values).
const EXACT_REL_EPS: f64 = 1e-9;
/// Headroom above the baseline for ILP-phase wall time (host noise).
pub const ILP_WALL_HEADROOM: f64 = 1.0;
/// Headroom above the baseline for ILP-phase allocation counts (these
/// are near-deterministic at one solver thread; the slack absorbs
/// hash-map growth-pattern wobble, not structural regressions).
pub const ILP_ALLOCS_HEADROOM: f64 = 0.25;
/// Headroom above the baseline for the solver pivot counter. Pivot
/// counts are *almost* deterministic at one thread, but identical runs
/// have been observed a few pivots apart (±3 on ~3600), so an exact
/// gate flakes; +1% still trips on any real pricing or kernel change.
pub const ILP_PIVOTS_HEADROOM: f64 = 0.01;
/// How much a host-side simulation rate (sim-cycles per host second) may
/// drop before the gate fails. Host rates on a 1-core CI runner are far
/// noisier than modeled metrics, so the floor is generous — it exists to
/// catch the fast path structurally regressing to cycle-slice speed
/// (roughly an order of magnitude on paced traffic), not 20% jitter.
pub const HOST_SIM_RATE_DROP: f64 = 0.5;

/// How a metric is compared against its baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Rule {
    /// `current >= baseline * (1 - drop)`: rates with wall-clock noise.
    RateFloor {
        /// Maximum tolerated relative drop, e.g. `0.20`.
        drop: f64,
    },
    /// Bit-deterministic metric: equal up to [`EXACT_REL_EPS`] relative.
    Exact,
    /// `current <= baseline`: counts that must not regress upward
    /// (spills).
    NoIncrease,
    /// `current <= baseline * (1 + headroom)`: metrics that must not
    /// climb back above a hard-won level (ILP-phase wall time and
    /// allocation counts).
    Ceiling {
        /// Tolerated relative excursion above the baseline, e.g. `0.25`.
        headroom: f64,
    },
    /// Reported but never failing (wall times).
    Info,
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct Check {
    /// Where the metric lives, e.g. `"AES/t1/pivots_per_sec"`.
    pub name: String,
    /// Baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub current: f64,
    /// Comparison rule applied.
    pub rule: Rule,
    /// Whether the rule held.
    pub pass: bool,
}

impl Check {
    fn new(name: String, baseline: f64, current: f64, rule: Rule) -> Check {
        let pass = match rule {
            Rule::RateFloor { drop } => current >= baseline * (1.0 - drop),
            Rule::Exact => {
                let scale = baseline.abs().max(current.abs()).max(1.0);
                (current - baseline).abs() <= EXACT_REL_EPS * scale
            }
            Rule::NoIncrease => current <= baseline,
            Rule::Ceiling { headroom } => current <= baseline * (1.0 + headroom),
            Rule::Info => true,
        };
        Check {
            name,
            baseline,
            current,
            rule,
            pass,
        }
    }
}

/// Gate result: every comparison made, in report order.
#[derive(Debug, Default)]
pub struct GateReport {
    /// All checks, gating and informational.
    pub checks: Vec<Check>,
    /// Structural problems (missing programs, unparseable entries); each
    /// fails the gate.
    pub errors: Vec<String>,
}

impl GateReport {
    /// Whether every gating check passed and no structural error was hit.
    pub fn passed(&self) -> bool {
        self.errors.is_empty() && self.checks.iter().all(|c| c.pass)
    }

    /// Number of failing checks.
    pub fn failures(&self) -> usize {
        self.checks.iter().filter(|c| !c.pass).count() + self.errors.len()
    }

    /// Render a GitHub-flavored markdown table of every check, then any
    /// structural errors, then a one-line verdict.
    pub fn markdown(&self, title: &str) -> String {
        let mut out = format!("### {title}\n\n");
        out.push_str("| metric | baseline | current | rule | status |\n");
        out.push_str("|---|---:|---:|---|---|\n");
        for c in &self.checks {
            let rule = match c.rule {
                Rule::RateFloor { drop } => format!("≥ −{:.0}%", drop * 100.0),
                Rule::Exact => "exact".to_string(),
                Rule::NoIncrease => "no increase".to_string(),
                Rule::Ceiling { headroom } => format!("≤ +{:.0}%", headroom * 100.0),
                Rule::Info => "info".to_string(),
            };
            let status = if c.rule == Rule::Info {
                "—"
            } else if c.pass {
                "ok"
            } else {
                "**FAIL**"
            };
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} |\n",
                c.name,
                fmt_val(c.baseline),
                fmt_val(c.current),
                rule,
                status
            ));
        }
        for e in &self.errors {
            out.push_str(&format!("\n**ERROR**: {e}\n"));
        }
        out.push_str(&format!(
            "\n{}: {} checks, {} failing\n",
            if self.passed() { "PASS" } else { "FAIL" },
            self.checks.len(),
            self.failures()
        ));
        out
    }

    fn err(&mut self, msg: impl Into<String>) {
        self.errors.push(msg.into());
    }

    fn compare(&mut self, name: String, base: &Json, cur: &Json, key: &str, rule: Rule) {
        match (base.num(key), cur.num(key)) {
            (Some(b), Some(c)) => {
                self.checks
                    .push(Check::new(format!("{name}/{key}"), b, c, rule));
            }
            (None, _) => self.err(format!("{name}: baseline is missing `{key}`")),
            (_, None) => self.err(format!("{name}: current run is missing `{key}`")),
        }
    }
}

/// Index an array of objects by the rendered value of `key`.
fn index_by<'a>(arr: &'a [Json], key: &str) -> Vec<(String, &'a Json)> {
    arr.iter()
        .filter_map(|item| {
            let id = item.get(key)?;
            let id = match id {
                Json::Str(s) => s.clone(),
                Json::Num(v) => format!("{v}"),
                _ => return None,
            };
            Some((id, item))
        })
        .collect()
}

/// For each element of the baseline array, find the current element with
/// the same `key` value; missing counterparts become gate errors.
fn matched<'a>(
    report: &mut GateReport,
    what: &str,
    key: &str,
    base: Option<&'a [Json]>,
    cur: Option<&'a [Json]>,
) -> Vec<(String, &'a Json, &'a Json)> {
    let (Some(base), Some(cur)) = (base, cur) else {
        report.err(format!("{what}: missing array to match on `{key}`"));
        return Vec::new();
    };
    let cur_ix = index_by(cur, key);
    index_by(base, key)
        .into_iter()
        .filter_map(|(id, b)| match cur_ix.iter().find(|(cid, _)| *cid == id) {
            Some((_, c)) => Some((id, b, *c)),
            None => {
                report.err(format!(
                    "{what}: `{key}`={id} present in baseline, absent now"
                ));
                None
            }
        })
        .collect()
}

/// Is this current-run entry marked as a degraded (fallback-ladder)
/// build? A degraded allocation is allowed to be slower and to spill —
/// its numbers explain a run but must not be held to the perf floor, so
/// every gating rule on it is demoted to [`Rule::Info`].
fn degraded(cur: &Json) -> bool {
    matches!(cur.get("degraded"), Some(Json::Bool(true)))
}

/// Gate `BENCH_solver.json` against a fresh run: per program and thread
/// count, pivots/s gets the −20% floor, the objective must match
/// exactly, and moves/spills must not increase. Times are informational.
/// Programs the current run marks `"degraded": true` are reported but
/// never gated.
pub fn gate_solver(baseline: &Json, current: &Json) -> GateReport {
    let mut r = GateReport::default();
    let progs = matched(
        &mut r,
        "solver",
        "name",
        baseline.get("programs").and_then(Json::as_arr),
        current.get("programs").and_then(Json::as_arr),
    );
    for (prog, b, c) in progs {
        let demote = degraded(c);
        let rule = |r: Rule| if demote { Rule::Info } else { r };
        let runs = matched(
            &mut r,
            &prog,
            "threads",
            b.get("runs").and_then(Json::as_arr),
            c.get("runs").and_then(Json::as_arr),
        );
        for (threads, br, cr) in runs {
            let name = format!("{prog}/t{threads}");
            r.compare(
                name.clone(),
                br,
                cr,
                "pivots_per_sec",
                rule(Rule::RateFloor {
                    drop: PIVOTS_PER_SEC_DROP,
                }),
            );
            r.compare(name.clone(), br, cr, "objective", rule(Rule::Exact));
            r.compare(name.clone(), br, cr, "spills", rule(Rule::NoIncrease));
            r.compare(name.clone(), br, cr, "moves", rule(Rule::NoIncrease));
            r.compare(name.clone(), br, cr, "solve_s", Rule::Info);
            r.compare(name, br, cr, "pivots", Rule::Info);
        }
    }
    r
}

/// Gate `BENCH_throughput.json` against a fresh run: per program and
/// engine count, simulated packets and cycles are bit-deterministic and
/// gated exactly; Mbps gets the −15% floor (redundant while cycles are
/// exact, but it is the headline rate and survives a deliberate
/// relaxation of the cycle gate). Programs the current run marks
/// `"degraded": true` are reported but never gated.
pub fn gate_throughput(baseline: &Json, current: &Json) -> GateReport {
    let mut r = GateReport::default();
    let progs = matched(
        &mut r,
        "throughput",
        "name",
        baseline.get("programs").and_then(Json::as_arr),
        current.get("programs").and_then(Json::as_arr),
    );
    for (prog, b, c) in progs {
        let demote = degraded(c);
        let rule = |r: Rule| if demote { Rule::Info } else { r };
        let sweeps = matched(
            &mut r,
            &prog,
            "engines",
            b.get("engine_sweep").and_then(Json::as_arr),
            c.get("engine_sweep").and_then(Json::as_arr),
        );
        for (engines, bs, cs) in sweeps {
            let name = format!("{prog}/e{engines}");
            r.compare(
                name.clone(),
                bs,
                cs,
                "mbps",
                rule(Rule::RateFloor {
                    drop: THROUGHPUT_DROP,
                }),
            );
            r.compare(name.clone(), bs, cs, "packets", rule(Rule::Exact));
            r.compare(name.clone(), bs, cs, "cycles", rule(Rule::Exact));
            r.compare(name, bs, cs, "instructions", Rule::Info);
        }
    }
    r
}

/// Gate `BENCH_phases.json` against a fresh run: the deterministic
/// counters (simulated cycles/packets) are exact and the solver pivot
/// count gets a [`ILP_PIVOTS_HEADROOM`] ceiling (see its doc); phase
/// wall times and allocation volumes are informational — they explain a
/// regression but host noise makes them unfit to gate on — except the
/// `ilp` phase and its `ilp.*` sub-phases, whose `wall_ms` and `allocs`
/// must stay under a ceiling ([`ILP_WALL_HEADROOM`] /
/// [`ILP_ALLOCS_HEADROOM`] above the baseline) so the ILP hot-path
/// optimizations cannot silently regress.
pub fn gate_phases(baseline: &Json, current: &Json) -> GateReport {
    let mut r = GateReport::default();
    let progs = matched(
        &mut r,
        "phases",
        "name",
        baseline.get("programs").and_then(Json::as_arr),
        current.get("programs").and_then(Json::as_arr),
    );
    for (prog, b, c) in progs {
        let counter_rules = [
            (
                "ilp.pivots",
                Rule::Ceiling {
                    headroom: ILP_PIVOTS_HEADROOM,
                },
            ),
            ("sim.cycles", Rule::Exact),
            ("sim.packets", Rule::Exact),
        ];
        for (key, rule) in counter_rules {
            match (
                b.get("counters").and_then(|x| x.num(key)),
                c.get("counters").and_then(|x| x.num(key)),
            ) {
                (Some(bv), Some(cv)) => {
                    r.checks
                        .push(Check::new(format!("{prog}/{key}"), bv, cv, rule));
                }
                _ => r.err(format!("{prog}: counter `{key}` missing")),
            }
        }
        let phases = matched(
            &mut r,
            &prog,
            "name",
            b.get("phases").and_then(Json::as_arr),
            c.get("phases").and_then(Json::as_arr),
        );
        for (phase, bp, cp) in phases {
            let name = format!("{prog}/phase.{phase}");
            let ilp = phase == "ilp" || phase.starts_with("ilp.");
            let wall_rule = if ilp {
                Rule::Ceiling {
                    headroom: ILP_WALL_HEADROOM,
                }
            } else {
                Rule::Info
            };
            r.compare(name.clone(), bp, cp, "wall_ms", wall_rule);
            r.compare(name.clone(), bp, cp, "alloc_mb", Rule::Info);
            if ilp {
                r.compare(
                    name,
                    bp,
                    cp,
                    "allocs",
                    Rule::Ceiling {
                        headroom: ILP_ALLOCS_HEADROOM,
                    },
                );
            }
        }
        // Per-mode host simulation rate (the `sim.host_rate` rows): the
        // fast path's sim-cycles/sec gets the [`HOST_SIM_RATE_DROP`]
        // floor so its speedup cannot silently evaporate; the
        // cycle-slice oracle's rate and all wall times are
        // informational. Skipped entirely for pre-fast-path baselines
        // that don't carry the rows yet.
        if b.get("host_rate").is_some() {
            let rates = matched(
                &mut r,
                &prog,
                "mode",
                b.get("host_rate").and_then(Json::as_arr),
                c.get("host_rate").and_then(Json::as_arr),
            );
            for (mode, br, cr) in rates {
                let name = format!("{prog}/host_rate.{mode}");
                let rate_rule = if mode == "fast_path" {
                    Rule::RateFloor {
                        drop: HOST_SIM_RATE_DROP,
                    }
                } else {
                    Rule::Info
                };
                r.compare(name.clone(), br, cr, "sim_cycles_per_sec", rate_rule);
                r.compare(name, br, cr, "wall_ms", Rule::Info);
            }
        }
    }
    r
}

/// Gate `BENCH_traffic.json` against a fresh run. The modeled outcome of
/// a traffic sweep point — packet conservation, drops, makespan cycles,
/// and latency order statistics — is bit-deterministic, so it is gated
/// exactly; aggregate Mb/s gets the throughput rate floor; the host-side
/// simulation rate gets the generous [`HOST_SIM_RATE_DROP`] floor (it is
/// the fast path's raison d'être, but a shared CI host makes it noisy);
/// wall time and packets/sec are informational.
pub fn gate_traffic(baseline: &Json, current: &Json) -> GateReport {
    let mut r = GateReport::default();
    let points = matched(
        &mut r,
        "traffic",
        "id",
        baseline.get("sweep").and_then(Json::as_arr),
        current.get("sweep").and_then(Json::as_arr),
    );
    for (id, b, c) in points {
        r.compare(id.clone(), b, c, "offered", Rule::Exact);
        r.compare(id.clone(), b, c, "delivered", Rule::Exact);
        r.compare(id.clone(), b, c, "dropped", Rule::Exact);
        r.compare(id.clone(), b, c, "sim_cycles", Rule::Exact);
        r.compare(
            id.clone(),
            b,
            c,
            "mbps",
            Rule::RateFloor {
                drop: THROUGHPUT_DROP,
            },
        );
        match (b.get("latency"), c.get("latency")) {
            (Some(bl), Some(cl)) => {
                let name = format!("{id}/latency");
                r.compare(name.clone(), bl, cl, "p50", Rule::Exact);
                r.compare(name, bl, cl, "p99", Rule::Exact);
            }
            _ => r.err(format!("{id}: latency summary missing")),
        }
        r.compare(
            id.clone(),
            b,
            c,
            "host_sim_cycles_per_sec",
            Rule::RateFloor {
                drop: HOST_SIM_RATE_DROP,
            },
        );
        r.compare(id.clone(), b, c, "host_wall_ms", Rule::Info);
        r.compare(id, b, c, "host_packets_per_sec", Rule::Info);
    }
    r
}

/// How much the warm compile-service rate (and its derived hit rates)
/// may drop before the gate fails.
pub const SERVICE_RATE_DROP: f64 = 0.20;
/// Absolute floor on the warm-over-cold service speedup — the ISSUE's
/// acceptance bar, gated against this constant rather than the baseline
/// so a slow-baseline regeneration cannot quietly lower it.
pub const SERVICE_SPEEDUP_FLOOR: f64 = 5.0;

/// Gate `BENCH_service.json` against a fresh run. The session cache
/// counters are exactly deterministic for the seeded one-worker stream
/// (the stream layout fixes which requests hit which phase cache), so
/// every counter is gated exactly, as are the warm/cold artifact
/// mismatch and failure counts (both must be zero in the current run
/// regardless of baseline). The warm compile rate and derived hit rates
/// get the [`SERVICE_RATE_DROP`] floor; the speedup must clear the
/// absolute [`SERVICE_SPEEDUP_FLOOR`]; the cold rate and wall times are
/// informational.
pub fn gate_service(baseline: &Json, current: &Json) -> GateReport {
    let mut r = GateReport::default();
    const COUNTERS: [&str; 17] = [
        "frontend_hits",
        "frontend_misses",
        "cps_hits",
        "cps_misses",
        "isel_hits",
        "isel_misses",
        "alloc_hits",
        "alloc_misses",
        "output_hits",
        "output_misses",
        "refinish_fallbacks",
        "hint_offers",
        "evict_count",
        "evict_bytes",
        "disk_hits",
        "disk_misses",
        "disk_rejects",
    ];
    match (baseline.get("counters"), current.get("counters")) {
        (Some(b), Some(c)) => {
            for key in COUNTERS {
                r.compare("service".to_string(), b, c, key, Rule::Exact);
            }
        }
        _ => r.err("service: `counters` object missing"),
    }
    match (baseline.get("rates"), current.get("rates")) {
        (Some(b), Some(c)) => {
            for key in ["warm_compiles_per_sec", "output_hit_rate", "alloc_hit_rate"] {
                r.compare(
                    "service".to_string(),
                    b,
                    c,
                    key,
                    Rule::RateFloor {
                        drop: SERVICE_RATE_DROP,
                    },
                );
            }
            r.compare(
                "service".to_string(),
                b,
                c,
                "cold_compiles_per_sec",
                Rule::Info,
            );
            r.compare("service".to_string(), b, c, "speedup", Rule::Info);
            match c.num("speedup") {
                Some(s) => r.checks.push(Check::new(
                    "service/speedup_floor".to_string(),
                    SERVICE_SPEEDUP_FLOOR,
                    s,
                    Rule::RateFloor { drop: 0.0 },
                )),
                None => r.err("service: current run is missing `speedup`"),
            }
        }
        _ => r.err("service: `rates` object missing"),
    }
    // Warm artifacts must be bit-identical to cold and nothing may fail,
    // whatever the baseline says.
    for key in ["mismatches", "failures"] {
        match current.num(key) {
            Some(v) => r
                .checks
                .push(Check::new(format!("service/{key}"), 0.0, v, Rule::Exact)),
            None => r.err(format!("service: current run is missing `{key}`")),
        }
    }
    r.compare(
        "service".to_string(),
        baseline,
        current,
        "warm_wall_ms",
        Rule::Info,
    );
    r.compare(
        "service".to_string(),
        baseline,
        current,
        "cold_wall_ms",
        Rule::Info,
    );
    r
}

/// Absolute floor on the restart (warm-from-disk over cold) speedup —
/// gated against this constant rather than the baseline so a
/// slow-baseline regeneration cannot quietly lower the bar. Warm still
/// runs frontend/CPS/isel (only the MILP solve comes off disk), so the
/// floor sits well under the measured ~10x.
pub const RESTART_SPEEDUP_FLOOR: f64 = 2.0;

/// Gate `BENCH_reload.json` against a fresh run.
///
/// The hot-reload half is modeled and bit-deterministic: the simulated
/// cycle/packet totals, every swap's swap cycle, first post-swap
/// transmit, and derived update latency, and the warm session's cache
/// counters are all gated exactly. The restart half gates the disk-cache
/// counters exactly, artifact mismatches and failures against zero
/// regardless of baseline, and the warm-up speedup against the absolute
/// [`RESTART_SPEEDUP_FLOOR`]. Host wall times (compiles, batch walls)
/// are informational.
pub fn gate_reload(baseline: &Json, current: &Json) -> GateReport {
    let mut r = GateReport::default();
    match (baseline.get("hot"), current.get("hot")) {
        (Some(b), Some(c)) => {
            match (b.get("sim"), c.get("sim")) {
                (Some(bs), Some(cs)) => {
                    r.compare("reload/hot/sim".to_string(), bs, cs, "cycles", Rule::Exact);
                    r.compare("reload/hot/sim".to_string(), bs, cs, "packets", Rule::Exact);
                    r.compare(
                        "reload/hot/sim".to_string(),
                        bs,
                        cs,
                        "instructions",
                        Rule::Info,
                    );
                }
                _ => r.err("reload: hot `sim` object missing"),
            }
            match (b.get("counters"), c.get("counters")) {
                (Some(bc), Some(cc)) => {
                    for key in ["alloc_hits", "alloc_misses", "refinish_fallbacks"] {
                        r.compare("reload/hot".to_string(), bc, cc, key, Rule::Exact);
                    }
                }
                _ => r.err("reload: hot `counters` object missing"),
            }
            let swaps = matched(
                &mut r,
                "reload/hot",
                "after_packets",
                b.get("swaps").and_then(Json::as_arr),
                c.get("swaps").and_then(Json::as_arr),
            );
            for (at, bs, cs) in swaps {
                let name = format!("reload/swap@{at}");
                r.compare(name.clone(), bs, cs, "swap_cycle", Rule::Exact);
                r.compare(name.clone(), bs, cs, "first_tx_cycle", Rule::Exact);
                r.compare(name.clone(), bs, cs, "update_cycles", Rule::Exact);
                r.compare(name.clone(), bs, cs, "update_us", Rule::Exact);
                r.compare(name, bs, cs, "compile_ms", Rule::Info);
            }
            r.compare(
                "reload/hot".to_string(),
                b,
                c,
                "base_compile_ms",
                Rule::Info,
            );
        }
        _ => r.err("reload: `hot` section missing"),
    }
    match (baseline.get("restart"), current.get("restart")) {
        (Some(b), Some(c)) => {
            for side in ["cold_counters", "warm_counters"] {
                match (b.get(side), c.get(side)) {
                    (Some(bc), Some(cc)) => {
                        for key in [
                            "alloc_hits",
                            "alloc_misses",
                            "disk_hits",
                            "disk_misses",
                            "disk_rejects",
                        ] {
                            r.compare(format!("reload/{side}"), bc, cc, key, Rule::Exact);
                        }
                    }
                    _ => r.err(format!("reload: restart `{side}` object missing")),
                }
            }
            // Disk-loaded artifacts must be bit-identical to cold and
            // nothing may fail, whatever the baseline says.
            for key in ["mismatches", "failures"] {
                match c.num(key) {
                    Some(v) => r.checks.push(Check::new(
                        format!("reload/restart/{key}"),
                        0.0,
                        v,
                        Rule::Exact,
                    )),
                    None => r.err(format!("reload: restart is missing `{key}`")),
                }
            }
            r.compare("reload/restart".to_string(), b, c, "speedup", Rule::Info);
            match c.num("speedup") {
                Some(s) => r.checks.push(Check::new(
                    "reload/restart/speedup_floor".to_string(),
                    RESTART_SPEEDUP_FLOOR,
                    s,
                    Rule::RateFloor { drop: 0.0 },
                )),
                None => r.err("reload: restart is missing `speedup`"),
            }
            r.compare(
                "reload/restart".to_string(),
                b,
                c,
                "cold_wall_ms",
                Rule::Info,
            );
            r.compare(
                "reload/restart".to_string(),
                b,
                c,
                "warm_wall_ms",
                Rule::Info,
            );
        }
        _ => r.err("reload: `restart` section missing"),
    }
    r
}

/// Minimum `staged_min_healthy - bang_min_healthy` on the synchronized
/// trace: staging must keep at least one more chip serving through the
/// update than the big-bang rollout does.
pub const STAGING_GAIN_FLOOR: f64 = 1.0;

/// Minimum packets delivered on a rolled-back chip after service
/// resumed: a rollback that never comes back is an outage, not a
/// recovery. Applied only to reverts (watchdog/SLO); a checksum
/// rejection never swaps, so its post-swap window is empty by design.
pub const ROLLBACK_RECOVERY_FLOOR: f64 = 1.0;

/// Gate `BENCH_rollout.json` against a fresh run: every modeled rollout
/// number — outcomes, rollback stages and reasons, swap and recovery
/// cycles, disruption counters, the `min_healthy_chips` floor — is
/// deterministic and must match exactly. The staged-vs-big-bang gain
/// gets the absolute [`STAGING_GAIN_FLOOR`], revert recoveries the
/// absolute [`ROLLBACK_RECOVERY_FLOOR`], and the host-thread
/// determinism self-check must report zero mismatches whatever the
/// baseline says. Compile and simulation walls are informational.
pub fn gate_rollout(baseline: &Json, current: &Json) -> GateReport {
    let mut r = GateReport::default();
    match (baseline.get("config"), current.get("config")) {
        (Some(b), Some(c)) => {
            for key in [
                "chips",
                "packets",
                "swap_after",
                "observe_packets",
                "watchdog",
            ] {
                r.compare("rollout/config".to_string(), b, c, key, Rule::Exact);
            }
        }
        _ => r.err("rollout: `config` section missing"),
    }

    let scenarios = matched(
        &mut r,
        "rollout",
        "id",
        baseline.get("scenarios").and_then(Json::as_arr),
        current.get("scenarios").and_then(Json::as_arr),
    );
    for (id, b, c) in scenarios {
        let name = format!("rollout/{id}");
        for key in [
            "chips",
            "stages_run",
            "outcome_code",
            "rolled_back_stage",
            "min_healthy_chips",
            "offered",
            "delivered",
            "dropped",
            "aborted_in_flight",
            "disrupted_flows",
            "max_update_cycles",
            "rollback_recovered",
        ] {
            r.compare(name.clone(), b, c, key, Rule::Exact);
        }
        // A revert (watchdog or SLO rollback) must restore service:
        // the halted chip has to deliver traffic after swapping back.
        if matches!(c.num("outcome_code"), Some(code) if (2.0..=4.0).contains(&code)) {
            match c.num("rollback_recovered") {
                Some(v) => r.checks.push(Check::new(
                    format!("{name}/recovery_floor"),
                    ROLLBACK_RECOVERY_FLOOR,
                    v,
                    Rule::RateFloor { drop: 0.0 },
                )),
                None => r.err(format!("{name}: missing `rollback_recovered`")),
            }
        }
        let stages = matched(
            &mut r,
            &name,
            "chip",
            b.get("stages").and_then(Json::as_arr),
            c.get("stages").and_then(Json::as_arr),
        );
        for (chip, bs, cs) in stages {
            let name = format!("{name}/chip{chip}");
            for key in [
                "swap_cycle",
                "first_tx_cycle",
                "update_cycles",
                "rollback_cycles",
                "offered",
                "delivered",
                "dropped",
                "aborted_in_flight",
                "disrupted_flows",
                "pre_delivered",
                "during_delivered",
                "post_delivered",
                "post_p99",
                "baseline_p99",
                "candidate_p99",
            ] {
                r.compare(name.clone(), bs, cs, key, Rule::Exact);
            }
        }
    }

    match (baseline.get("comparison"), current.get("comparison")) {
        (Some(b), Some(c)) => {
            for key in ["staged_min_healthy", "bang_min_healthy", "staging_gain"] {
                r.compare("rollout/comparison".to_string(), b, c, key, Rule::Exact);
            }
            match c.num("staging_gain") {
                Some(g) => r.checks.push(Check::new(
                    "rollout/comparison/staging_gain_floor".to_string(),
                    STAGING_GAIN_FLOOR,
                    g,
                    Rule::RateFloor { drop: 0.0 },
                )),
                None => r.err("rollout: comparison is missing `staging_gain`"),
            }
        }
        _ => r.err("rollout: `comparison` section missing"),
    }

    // Bit-identical reports at every host thread count, whatever the
    // baseline says.
    match current.num("determinism_mismatches") {
        Some(v) => r.checks.push(Check::new(
            "rollout/determinism_mismatches".to_string(),
            0.0,
            v,
            Rule::Exact,
        )),
        None => r.err("rollout: missing `determinism_mismatches`"),
    }

    for key in ["old_compile_ms", "new_compile_ms", "sim_wall_ms"] {
        r.compare("rollout".to_string(), baseline, current, key, Rule::Info);
    }
    r
}

fn fmt_val(v: f64) -> String {
    if v == v.trunc() && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solver_doc(pivots_per_sec: f64, objective: f64, spills: f64) -> Json {
        Json::parse(&format!(
            r#"{{"bench":"solver","programs":[{{"name":"AES","runs":[
                {{"threads":1,"pivots_per_sec":{pivots_per_sec},
                  "objective":{objective},"spills":{spills},"moves":13,
                  "solve_s":0.2,"pivots":3633}}]}}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_solver_docs_pass() {
        let doc = solver_doc(17795.8, 75.9436, 0.0);
        let r = gate_solver(&doc, &doc);
        assert!(r.passed(), "{}", r.markdown("solver"));
        assert!(r.checks.iter().any(|c| c.name == "AES/t1/pivots_per_sec"));
    }

    #[test]
    fn thirty_percent_pivot_rate_drop_fails() {
        // The ISSUE's acceptance case: doctor the baseline so the fresh
        // run sits 30% below it — past the 20% floor, the gate must fail.
        let base = solver_doc(20_000.0, 75.9436, 0.0);
        let cur = solver_doc(14_000.0, 75.9436, 0.0);
        let r = gate_solver(&base, &cur);
        assert!(!r.passed());
        let failing: Vec<_> = r.checks.iter().filter(|c| !c.pass).collect();
        assert_eq!(failing.len(), 1);
        assert_eq!(failing[0].name, "AES/t1/pivots_per_sec");
    }

    #[test]
    fn fifteen_percent_pivot_rate_drop_passes() {
        let base = solver_doc(20_000.0, 75.9436, 0.0);
        let cur = solver_doc(17_000.0, 75.9436, 0.0);
        assert!(gate_solver(&base, &cur).passed());
    }

    #[test]
    fn objective_drift_fails_exact_rule() {
        let base = solver_doc(20_000.0, 75.9436, 0.0);
        let cur = solver_doc(20_000.0, 75.9437, 0.0);
        let r = gate_solver(&base, &cur);
        assert!(!r.passed());
        assert!(r
            .checks
            .iter()
            .any(|c| !c.pass && c.name.ends_with("objective")));
    }

    #[test]
    fn new_spill_fails_no_increase_rule() {
        let base = solver_doc(20_000.0, 75.9436, 0.0);
        let cur = solver_doc(20_000.0, 75.9436, 1.0);
        assert!(!gate_solver(&base, &cur).passed());
    }

    fn degraded_solver_doc(pivots_per_sec: f64, objective: f64, spills: f64) -> Json {
        Json::parse(&format!(
            r#"{{"bench":"solver","programs":[{{"name":"AES","degraded":true,"runs":[
                {{"threads":1,"pivots_per_sec":{pivots_per_sec},
                  "objective":{objective},"spills":{spills},"moves":13,
                  "solve_s":0.2,"pivots":3633}}]}}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn degraded_current_run_is_reported_but_not_gated() {
        // A fallback-ladder build may be slower, off-objective, and spill
        // — none of that fails the gate, but every row is still listed.
        let base = solver_doc(20_000.0, 75.9436, 0.0);
        let cur = degraded_solver_doc(5_000.0, 120.0, 9.0);
        let r = gate_solver(&base, &cur);
        assert!(r.passed(), "{}", r.markdown("solver"));
        assert!(r.checks.iter().all(|c| c.rule == Rule::Info));
        assert!(r.checks.iter().any(|c| c.name == "AES/t1/spills"));
    }

    #[test]
    fn degraded_baseline_does_not_relax_a_clean_current_run() {
        // Only the *current* run's marker demotes rules: a clean build
        // compared against a degraded-era baseline is still gated.
        let base = degraded_solver_doc(20_000.0, 75.9436, 0.0);
        let cur = solver_doc(20_000.0, 75.9437, 0.0);
        assert!(!gate_solver(&base, &cur).passed());
    }

    #[test]
    fn degraded_throughput_run_is_not_gated() {
        let base = throughput_doc(300.0, 50_000.0);
        let cur = Json::parse(
            r#"{"bench":"throughput","programs":[{"name":"NAT","degraded":true,
                "engine_sweep":[{"engines":4,"mbps":100.0,"packets":64,
                "cycles":99999,"instructions":78856}]}]}"#,
        )
        .unwrap();
        let r = gate_throughput(&base, &cur);
        assert!(r.passed(), "{}", r.markdown("throughput"));
    }

    #[test]
    fn missing_program_is_a_structural_error() {
        let base = solver_doc(20_000.0, 75.9436, 0.0);
        let cur = Json::parse(r#"{"bench":"solver","programs":[]}"#).unwrap();
        let r = gate_solver(&base, &cur);
        assert!(!r.passed());
        assert_eq!(r.errors.len(), 1);
    }

    fn throughput_doc(mbps: f64, cycles: f64) -> Json {
        Json::parse(&format!(
            r#"{{"bench":"throughput","programs":[{{"name":"NAT","engine_sweep":[
                {{"engines":4,"mbps":{mbps},"packets":64,"cycles":{cycles},
                  "instructions":78856}}]}}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn throughput_cycle_drift_fails() {
        let base = throughput_doc(300.0, 50_000.0);
        let cur = throughput_doc(300.0, 50_001.0);
        let r = gate_throughput(&base, &cur);
        assert!(!r.passed());
        assert!(r
            .checks
            .iter()
            .any(|c| !c.pass && c.name.ends_with("cycles")));
    }

    #[test]
    fn throughput_small_rate_noise_passes() {
        let base = throughput_doc(300.0, 50_000.0);
        let cur = throughput_doc(280.0, 50_000.0);
        assert!(gate_throughput(&base, &cur).passed());
    }

    #[test]
    fn markdown_lists_every_check_and_verdict() {
        let base = solver_doc(20_000.0, 75.9436, 0.0);
        let cur = solver_doc(14_000.0, 75.9436, 0.0);
        let md = gate_solver(&base, &cur).markdown("solver");
        assert!(md.contains("| AES/t1/pivots_per_sec |"));
        assert!(md.contains("**FAIL**"));
        assert!(md.contains("FAIL: "));
    }

    #[test]
    fn phases_counters_gate_exactly() {
        let doc = |pivots: u64, cycles: u64| {
            Json::parse(&format!(
                r#"{{"bench":"phases","programs":[{{"name":"AES",
                    "counters":{{"ilp.pivots":{pivots},"sim.cycles":{cycles},"sim.packets":64}},
                    "phases":[{{"name":"frontend","wall_ms":1.5,"alloc_mb":0.3}}]}}]}}"#
            ))
            .unwrap()
        };
        assert!(gate_phases(&doc(3633, 95900), &doc(3633, 95900)).passed());
        // Pivots get ±1% slack (identical runs land a few pivots apart);
        // a real pricing regression still trips the ceiling.
        assert!(gate_phases(&doc(3633, 95900), &doc(3636, 95900)).passed());
        assert!(!gate_phases(&doc(3633, 95900), &doc(3700, 95900)).passed());
        // Simulated cycles are bit-deterministic and stay exact.
        assert!(!gate_phases(&doc(3633, 95900), &doc(3633, 95901)).passed());
    }

    fn phases_doc(ilp_wall: f64, ilp_allocs: u64, model_allocs: u64) -> Json {
        Json::parse(&format!(
            r#"{{"bench":"phases","programs":[{{"name":"AES",
                "counters":{{"ilp.pivots":3633,"sim.cycles":95900,"sim.packets":64}},
                "phases":[
                  {{"name":"frontend","wall_ms":900.0,"alloc_mb":0.3,"allocs":1837}},
                  {{"name":"ilp","wall_ms":{ilp_wall},"alloc_mb":7.0,"allocs":{ilp_allocs}}},
                  {{"name":"ilp.model","wall_ms":2.0,"alloc_mb":5.0,"allocs":{model_allocs}}}
                ]}}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn ilp_phase_wall_and_allocs_are_gated_by_ceiling() {
        let base = phases_doc(20.0, 40_000, 9_000);
        // Identical run passes; so does one inside the headroom.
        assert!(gate_phases(&base, &base).passed());
        assert!(gate_phases(&base, &phases_doc(30.0, 45_000, 10_000)).passed());
        // Wall time past 2x the baseline fails.
        let r = gate_phases(&base, &phases_doc(50.0, 40_000, 9_000));
        assert!(!r.passed());
        assert!(r
            .checks
            .iter()
            .any(|c| !c.pass && c.name == "AES/phase.ilp/wall_ms"));
        // Allocation count past +25% fails, on the total and on sub-rows.
        let r = gate_phases(&base, &phases_doc(20.0, 60_000, 9_000));
        assert!(r
            .checks
            .iter()
            .any(|c| !c.pass && c.name == "AES/phase.ilp/allocs"));
        let r = gate_phases(&base, &phases_doc(20.0, 40_000, 20_000));
        assert!(r
            .checks
            .iter()
            .any(|c| !c.pass && c.name == "AES/phase.ilp.model/allocs"));
    }

    #[test]
    fn non_ilp_phase_walls_stay_informational() {
        let base = phases_doc(20.0, 40_000, 9_000);
        // The frontend row is wildly slower in the doc; still passes.
        let r = gate_phases(&base, &base);
        assert!(r
            .checks
            .iter()
            .any(|c| c.name == "AES/phase.frontend/wall_ms" && c.rule == Rule::Info));
        assert!(!r
            .checks
            .iter()
            .any(|c| c.name == "AES/phase.frontend/allocs"));
    }

    fn host_rate_doc(rows: &str) -> Json {
        Json::parse(&format!(
            r#"{{"bench":"phases","programs":[{{"name":"AES",
                "counters":{{"ilp.pivots":3633,"sim.cycles":95900,"sim.packets":64}},
                "phases":[{{"name":"frontend","wall_ms":1.5,"alloc_mb":0.3}}]{rows}}}]}}"#
        ))
        .unwrap()
    }

    fn host_rate_rows(fast: f64, slow: f64) -> String {
        format!(
            r#","host_rate":[
              {{"mode":"fast_path","wall_ms":3.0,"sim_cycles_per_sec":{fast}}},
              {{"mode":"cycle_slice","wall_ms":40.0,"sim_cycles_per_sec":{slow}}}]"#
        )
    }

    #[test]
    fn fast_path_host_rate_has_a_floor_and_the_oracle_does_not() {
        let base = host_rate_doc(&host_rate_rows(200.0e6, 15.0e6));
        // 30% host noise on the fast path passes; the oracle's rate may
        // collapse entirely without failing anything.
        assert!(gate_phases(&base, &host_rate_doc(&host_rate_rows(140.0e6, 1.0e6))).passed());
        // A fast path running at a quarter of its baseline rate fails.
        let r = gate_phases(&base, &host_rate_doc(&host_rate_rows(50.0e6, 15.0e6)));
        assert!(!r.passed());
        assert!(r
            .checks
            .iter()
            .any(|c| !c.pass && c.name == "AES/host_rate.fast_path/sim_cycles_per_sec"));
        // Baselines from before the fast path carry no host_rate rows;
        // they must not produce structural errors against newer runs
        // that do carry them.
        let old = host_rate_doc("");
        assert!(gate_phases(&old, &base).passed());
    }

    fn traffic_doc(delivered: u64, p99: u64, mbps: f64, host_rate: f64) -> Json {
        Json::parse(&format!(
            r#"{{"bench":"traffic","sweep":[
                {{"id":"p100000x2","packets":100000,"chips":2,
                  "offered":100000,"delivered":{delivered},
                  "dropped":{dropped},"sim_cycles":7700000,
                  "mbps":{mbps},
                  "latency":{{"count":{delivered},"p50":840,"p90":1400,"p99":{p99},"max":9001}},
                  "host_wall_ms":450.0,
                  "host_sim_cycles_per_sec":{host_rate},
                  "host_packets_per_sec":222222.0}}]}}"#,
            dropped = 100000 - delivered,
        ))
        .unwrap()
    }

    #[test]
    fn traffic_outcome_is_gated_exactly_and_host_rate_generously() {
        let base = traffic_doc(99_900, 2_300, 310.0, 120.0e6);
        assert!(gate_traffic(&base, &base).passed());
        // Host-side noise is fine: 40% slower host, 10% lower Mb/s.
        assert!(gate_traffic(&base, &traffic_doc(99_900, 2_300, 280.0, 72.0e6)).passed());
        // One packet of delivery drift is a modeled-behavior change.
        let r = gate_traffic(&base, &traffic_doc(99_899, 2_300, 310.0, 120.0e6));
        assert!(!r.passed());
        // So is a shifted tail latency.
        let r2 = gate_traffic(&base, &traffic_doc(99_900, 2_301, 310.0, 120.0e6));
        assert!(r2
            .checks
            .iter()
            .any(|c| !c.pass && c.name == "p100000x2/latency/p99"));
        // A halved host rate (past the 50% floor) fails.
        assert!(!gate_traffic(&base, &traffic_doc(99_900, 2_300, 310.0, 48.0e6)).passed());
    }

    #[test]
    fn missing_traffic_sweep_point_is_a_structural_error() {
        let base = traffic_doc(99_900, 2_300, 310.0, 120.0e6);
        let cur = Json::parse(r#"{"bench":"traffic","sweep":[]}"#).unwrap();
        let r = gate_traffic(&base, &cur);
        assert!(!r.passed());
        assert!(!r.errors.is_empty());
    }

    fn service_doc(warm: f64, speedup: f64, alloc_hits: u64, mismatches: u64) -> Json {
        Json::parse(&format!(
            r#"{{"bench":"service",
                "stream":{{"total":1000,"distinct":250,"cold_samples":25,"workers":1}},
                "counters":{{"frontend_hits":0,"frontend_misses":250,
                  "cps_hits":0,"cps_misses":250,"isel_hits":0,"isel_misses":250,
                  "alloc_hits":{alloc_hits},"alloc_misses":1,
                  "output_hits":750,"output_misses":250,
                  "refinish_fallbacks":0,"hint_offers":0,
                  "evict_count":0,"evict_bytes":0,
                  "disk_hits":0,"disk_misses":0,"disk_rejects":0}},
                "rates":{{"warm_compiles_per_sec":{warm},
                  "cold_compiles_per_sec":130.0,"speedup":{speedup},
                  "output_hit_rate":0.75,"alloc_hit_rate":0.996,
                  "frontend_hit_rate":0.0}},
                "mismatches":{mismatches},"failures":0,
                "warm_wall_ms":150.0,"cold_wall_ms":190.0}}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_service_docs_pass() {
        let doc = service_doc(6600.0, 50.0, 249, 0);
        let r = gate_service(&doc, &doc);
        assert!(r.passed(), "{}", r.markdown("service"));
        assert!(r.checks.iter().any(|c| c.name == "service/alloc_hits"));
        assert!(r.checks.iter().any(|c| c.name == "service/speedup_floor"));
    }

    #[test]
    fn service_counter_drift_fails_exactly() {
        // One allocation-cache hit lost (a solve ran that should not
        // have): deterministic counter, exact gate, hard fail.
        let base = service_doc(6600.0, 50.0, 249, 0);
        let cur = service_doc(6600.0, 50.0, 248, 0);
        let r = gate_service(&base, &cur);
        assert!(!r.passed());
        assert!(r
            .checks
            .iter()
            .any(|c| !c.pass && c.name == "service/alloc_hits"));
    }

    #[test]
    fn service_warm_rate_has_a_twenty_percent_floor() {
        let base = service_doc(6600.0, 50.0, 249, 0);
        assert!(gate_service(&base, &service_doc(5500.0, 42.0, 249, 0)).passed());
        let r = gate_service(&base, &service_doc(4000.0, 31.0, 249, 0));
        assert!(!r.passed());
        assert!(r
            .checks
            .iter()
            .any(|c| !c.pass && c.name == "service/warm_compiles_per_sec"));
    }

    #[test]
    fn service_speedup_below_the_absolute_floor_fails() {
        // Both runs agree, but the speedup sits under 5x: the absolute
        // floor fails even though the baseline comparison would pass.
        let base = service_doc(600.0, 4.0, 249, 0);
        let r = gate_service(&base, &base);
        assert!(!r.passed());
        assert!(r
            .checks
            .iter()
            .any(|c| !c.pass && c.name == "service/speedup_floor"));
    }

    #[test]
    fn service_artifact_mismatch_fails_regardless_of_baseline() {
        // Even a baseline that (wrongly) recorded a mismatch cannot
        // excuse one now: the current run is gated against zero.
        let base = service_doc(6600.0, 50.0, 249, 1);
        let cur = service_doc(6600.0, 50.0, 249, 1);
        let r = gate_service(&base, &cur);
        assert!(!r.passed());
        assert!(r
            .checks
            .iter()
            .any(|c| !c.pass && c.name == "service/mismatches"));
    }

    #[test]
    fn service_missing_sections_are_structural_errors() {
        let base = service_doc(6600.0, 50.0, 249, 0);
        let cur = Json::parse(r#"{"bench":"service"}"#).unwrap();
        let r = gate_service(&base, &cur);
        assert!(!r.passed());
        assert!(r.errors.len() >= 2, "{:?}", r.errors);
    }

    fn reload_doc(update_cycles: u64, disk_hits: u64, speedup: f64, mismatches: u64) -> Json {
        Json::parse(&format!(
            r#"{{"bench":"reload",
                "hot":{{"engines":2,"contexts":4,"packets":1200,"payload_bytes":64,
                  "base_compile_ms":40.0,
                  "sim":{{"cycles":42760,"packets":1189,"instructions":150000}},
                  "swaps":[{{"after_packets":300,"compile_ms":4.0,
                    "swap_cycle":7792,"first_tx_cycle":{first_tx},
                    "update_cycles":{update_cycles},"update_us":18.2}}],
                  "counters":{{"alloc_hits":3,"alloc_misses":1,"refinish_fallbacks":0}}}},
                "restart":{{"variants":6,
                  "cold_wall_ms":120.0,"warm_wall_ms":10.0,"speedup":{speedup},
                  "cold_counters":{{"alloc_hits":0,"alloc_misses":6,
                    "disk_hits":0,"disk_misses":6,"disk_rejects":0}},
                  "warm_counters":{{"alloc_hits":6,"alloc_misses":0,
                    "disk_hits":{disk_hits},"disk_misses":0,"disk_rejects":0}},
                  "mismatches":{mismatches},"failures":0}}}}"#,
            first_tx = 7792 + update_cycles,
        ))
        .unwrap()
    }

    #[test]
    fn identical_reload_docs_pass() {
        let doc = reload_doc(4246, 6, 12.0, 0);
        let r = gate_reload(&doc, &doc);
        assert!(r.passed(), "{}", r.markdown("reload"));
        assert!(r
            .checks
            .iter()
            .any(|c| c.name == "reload/swap@300/update_cycles"));
        assert!(r
            .checks
            .iter()
            .any(|c| c.name == "reload/restart/speedup_floor"));
    }

    #[test]
    fn reload_update_latency_drift_fails_exactly() {
        // One modeled cycle of update-latency drift is a behavior change.
        let base = reload_doc(4246, 6, 12.0, 0);
        let r = gate_reload(&base, &reload_doc(4247, 6, 12.0, 0));
        assert!(!r.passed());
        assert!(r
            .checks
            .iter()
            .any(|c| !c.pass && c.name == "reload/swap@300/update_cycles"));
    }

    #[test]
    fn reload_lost_disk_hit_fails_exactly() {
        // A solve ran on the warm side that should have come off disk.
        let base = reload_doc(4246, 6, 12.0, 0);
        let r = gate_reload(&base, &reload_doc(4246, 5, 12.0, 0));
        assert!(!r.passed());
        assert!(r
            .checks
            .iter()
            .any(|c| !c.pass && c.name == "reload/warm_counters/disk_hits"));
    }

    #[test]
    fn restart_speedup_below_the_absolute_floor_fails() {
        // Baseline and current agree at 1.5x — under the 2x floor, the
        // absolute gate fails even though the diff is clean.
        let doc = reload_doc(4246, 6, 1.5, 0);
        let r = gate_reload(&doc, &doc);
        assert!(!r.passed());
        assert!(r
            .checks
            .iter()
            .any(|c| !c.pass && c.name == "reload/restart/speedup_floor"));
    }

    #[test]
    fn reload_artifact_mismatch_fails_regardless_of_baseline() {
        let doc = reload_doc(4246, 6, 12.0, 1);
        let r = gate_reload(&doc, &doc);
        assert!(!r.passed());
        assert!(r
            .checks
            .iter()
            .any(|c| !c.pass && c.name == "reload/restart/mismatches"));
    }

    #[test]
    fn reload_missing_sections_are_structural_errors() {
        let base = reload_doc(4246, 6, 12.0, 0);
        let cur = Json::parse(r#"{"bench":"reload"}"#).unwrap();
        let r = gate_reload(&base, &cur);
        assert!(!r.passed());
        assert_eq!(r.errors.len(), 2, "{:?}", r.errors);
    }

    fn rollout_doc(
        update_cycles: u64,
        recovered: i64,
        staged_min_healthy: u64,
        mismatches: u64,
    ) -> Json {
        let stage = |chip: u64, outcome: &str, rb: i64| {
            format!(
                r#"{{"chip":{chip},"outcome":"{outcome}","swap_cycle":2760640,
                    "first_tx_cycle":2764854,"update_cycles":{update_cycles},
                    "rollback_cycles":{rb},"offered":10000,"delivered":10000,
                    "dropped":0,"aborted_in_flight":0,"disrupted_flows":0,
                    "pre_delivered":2000,"during_delivered":4,"post_delivered":8000,
                    "post_p99":118,"baseline_p99":118,"candidate_p99":118}}"#
            )
        };
        let gain = staged_min_healthy as i64;
        Json::parse(&format!(
            r#"{{"bench":"rollout",
                "config":{{"chips":3,"packets":30000,"swap_after":2000,
                  "observe_packets":2000,"watchdog":65536}},
                "scenarios":[
                  {{"id":"healthy","chips":3,"stages_run":3,"outcome_code":0,
                    "rolled_back_stage":-1,"min_healthy_chips":2,
                    "offered":30000,"delivered":30000,"dropped":0,
                    "aborted_in_flight":0,"disrupted_flows":0,
                    "max_update_cycles":{update_cycles},"rollback_recovered":-1,
                    "stages":[{s0},{s1},{s2}]}},
                  {{"id":"wedge0","chips":3,"stages_run":1,"outcome_code":2,
                    "rolled_back_stage":0,"min_healthy_chips":2,
                    "offered":10000,"delivered":10000,"dropped":0,
                    "aborted_in_flight":0,"disrupted_flows":0,
                    "max_update_cycles":73896,"rollback_recovered":{recovered},
                    "stages":[{w0}]}}],
                "comparison":{{"staged_min_healthy":{staged_min_healthy},
                  "bang_min_healthy":0,"staging_gain":{gain}}},
                "determinism_mismatches":{mismatches},
                "old_compile_ms":6.0,"new_compile_ms":0.5,"sim_wall_ms":4800.0}}"#,
            s0 = stage(0, "committed", -1),
            s1 = stage(1, "committed", -1),
            s2 = stage(2, "committed", -1),
            w0 = stage(0, "watchdog-fired", 4264),
        ))
        .unwrap()
    }

    #[test]
    fn identical_rollout_docs_pass() {
        let doc = rollout_doc(4214, 8633, 2, 0);
        let r = gate_rollout(&doc, &doc);
        assert!(r.passed(), "{}", r.markdown("rollout"));
        assert!(r
            .checks
            .iter()
            .any(|c| c.name == "rollout/healthy/chip0/update_cycles"));
        assert!(r
            .checks
            .iter()
            .any(|c| c.name == "rollout/wedge0/recovery_floor"));
        assert!(r
            .checks
            .iter()
            .any(|c| c.name == "rollout/comparison/staging_gain_floor"));
    }

    #[test]
    fn rollout_update_latency_drift_fails_exactly() {
        let base = rollout_doc(4214, 8633, 2, 0);
        let r = gate_rollout(&base, &rollout_doc(4215, 8633, 2, 0));
        assert!(!r.passed());
        assert!(r
            .checks
            .iter()
            .any(|c| !c.pass && c.name == "rollout/healthy/max_update_cycles"));
    }

    #[test]
    fn rollout_without_post_revert_recovery_fails_floor() {
        let base = rollout_doc(4214, 8633, 2, 0);
        let r = gate_rollout(&base, &rollout_doc(4214, 0, 2, 0));
        assert!(!r.passed());
        assert!(r
            .checks
            .iter()
            .any(|c| !c.pass && c.name == "rollout/wedge0/recovery_floor"));
    }

    #[test]
    fn rollout_determinism_mismatch_fails_regardless_of_baseline() {
        let doc = rollout_doc(4214, 8633, 2, 1);
        let r = gate_rollout(&doc, &doc);
        assert!(!r.passed());
        assert!(r
            .checks
            .iter()
            .any(|c| !c.pass && c.name == "rollout/determinism_mismatches"));
    }

    #[test]
    fn rollout_zero_staging_gain_fails_floor() {
        let doc = rollout_doc(4214, 8633, 0, 0);
        let r = gate_rollout(&doc, &doc);
        assert!(!r.passed());
        assert!(r
            .checks
            .iter()
            .any(|c| !c.pass && c.name == "rollout/comparison/staging_gain_floor"));
    }

    #[test]
    fn rollout_missing_sections_are_structural_errors() {
        let base = rollout_doc(4214, 8633, 2, 0);
        let cur = Json::parse(r#"{"bench":"rollout"}"#).unwrap();
        let r = gate_rollout(&base, &cur);
        assert!(!r.passed());
        assert!(!r.errors.is_empty(), "{:?}", r.errors);
    }

    #[test]
    fn json_parse_round_trips_pretty_output() {
        let v = Json::obj([
            ("s", Json::str("a\"b\\c\nd")),
            ("n", Json::Num(1.25)),
            ("i", Json::int(42)),
            ("b", Json::Bool(true)),
            ("z", Json::Null),
            ("a", Json::Arr(vec![Json::int(1), Json::int(2)])),
            ("o", Json::Obj(vec![])),
        ]);
        let text = v.pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("s").and_then(Json::as_str), Some("a\"b\\c\nd"));
        assert_eq!(back.num("n"), Some(1.25));
        assert_eq!(back.num("i"), Some(42.0));
        assert_eq!(
            back.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert!(Json::parse("{\"k\": 1,}").is_err() || Json::parse("[1 2]").is_err());
    }
}
