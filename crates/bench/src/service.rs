//! Compile-service benchmark harness: a seeded rule-update stream
//! through a [`nova_server::Server`] over one shared compile session.
//!
//! The workload models a network operator pushing classifier rule
//! updates: `total` compile requests over `distinct` rule-set variants
//! (request `i` carries variant `i % distinct`), every variant sharing
//! one program structure and differing only in `const` values. A warm
//! session therefore sees three regimes, all with exactly predictable
//! cache counters at one worker:
//!
//! * the stream's very first variant — a full compile (`alloc_misses`
//!   = 1);
//! * the first occurrence of every later variant — frontend/CPS/isel
//!   misses, but the immediate-masked allocation key hits and the MILP
//!   solve is skipped (`alloc_hits` = `distinct` − 1);
//! * every repeat of a variant — a whole-image hit (`output_hits` =
//!   `total` − `distinct`).
//!
//! The cold baseline compiles a sample of the same stream through fresh
//! throwaway sessions. Warm and cold artifacts are compared with
//! [`CompileOutput::artifact_eq`]; any mismatch is reported (and gated
//! to zero) because incremental recompilation must be bit-identical to
//! a cold build.

use crate::json::Json;
use nova::{CacheStats, CompileConfig, CompileOutput, CompileReport, Compiler};
use nova_server::{CompileRequest, Server, ServerConfig};
use std::time::{Duration, Instant};
use workloads::{classifier_rules, classifier_source, CLASSIFIER_RULES};

/// Stream seed shared by the bench and smoke binaries so their rule
/// sets — and therefore their cache counters — are reproducible.
pub const SERVICE_SEED: u64 = 0x00C0_FFEE;

/// The compile configuration both the warm server and the cold baseline
/// use: one solver thread so allocations are bit-deterministic.
pub fn service_config() -> CompileConfig {
    CompileConfig::builder().solver_threads(1).build()
}

/// The seeded rule-update stream: `total` requests over `distinct`
/// variants, request `i` carrying variant `i % distinct`.
pub fn service_stream(total: usize, distinct: usize) -> Vec<CompileRequest> {
    (0..total)
        .map(|i| {
            let rules = classifier_rules(SERVICE_SEED, (i % distinct) as u64, CLASSIFIER_RULES);
            CompileRequest::new(i as u64, classifier_source(&rules))
        })
        .collect()
}

/// Measured outcome of one service bench run.
#[derive(Debug)]
pub struct ServiceRun {
    /// Requests in the warm stream.
    pub total: usize,
    /// Distinct rule-set variants in the stream.
    pub distinct: usize,
    /// Cold one-shot compiles sampled for the baseline rate.
    pub cold_samples: usize,
    /// Worker threads the server ran.
    pub workers: usize,
    /// Wall time of the warm batch.
    pub warm_wall: Duration,
    /// Wall time of the cold sample.
    pub cold_wall: Duration,
    /// The shared session's cache counters after the stream.
    pub stats: CacheStats,
    /// Warm responses whose artifact differed from the cold compile of
    /// the same source (must be zero: warm must be bit-identical).
    pub mismatches: usize,
    /// Warm requests that failed to compile (must be zero).
    pub failures: usize,
}

impl ServiceRun {
    /// Warm compiles per second over the whole stream.
    pub fn warm_rate(&self) -> f64 {
        self.total as f64 / self.warm_wall.as_secs_f64().max(1e-9)
    }

    /// Cold one-shot compiles per second over the sample.
    pub fn cold_rate(&self) -> f64 {
        self.cold_samples as f64 / self.cold_wall.as_secs_f64().max(1e-9)
    }

    /// Warm-over-cold throughput ratio — the headline the ≥5× acceptance
    /// floor gates.
    pub fn speedup(&self) -> f64 {
        self.warm_rate() / self.cold_rate().max(1e-9)
    }
}

/// Run the service bench: a cold one-shot baseline over the first
/// `cold_samples` requests, then the full `total`-request stream through
/// a one-worker server (one worker keeps the cache counters exactly
/// deterministic; the server tests cover multi-worker sharing).
///
/// # Panics
///
/// Panics if a cold compile fails — the generated sources are known-good,
/// so a cold failure is harness breakage, not a measurement.
pub fn run_service(total: usize, distinct: usize, cold_samples: usize) -> ServiceRun {
    let stream = service_stream(total, distinct);

    // Cold baseline: every request through a fresh throwaway session.
    let cold_start = Instant::now();
    let cold: Vec<CompileOutput> = stream
        .iter()
        .take(cold_samples)
        .map(|r| {
            Compiler::new(service_config())
                .compile_output(&r.source)
                .unwrap_or_else(|e| panic!("cold compile of request {}: {e}", r.id))
        })
        .collect();
    let cold_wall = cold_start.elapsed();

    // Warm: the whole stream as one batch through the shared session.
    let server = Server::new(ServerConfig {
        workers: 1,
        compile: service_config(),
        ..ServerConfig::default()
    });
    let warm_start = Instant::now();
    let responses = server.submit_batch(stream);
    let warm_wall = warm_start.elapsed();
    let stats = server.cache_stats();

    let failures = responses.iter().filter(|r| r.result.is_err()).count();
    let mismatches = responses
        .iter()
        .zip(&cold)
        .filter(|(warm, cold)| match &warm.result {
            Ok(out) => !out.artifact_eq(cold),
            Err(_) => true,
        })
        .count();

    ServiceRun {
        total,
        distinct,
        cold_samples,
        workers: server.workers(),
        warm_wall,
        cold_wall,
        stats,
        mismatches,
        failures,
    }
}

/// JSON view of an [`AllocQuality`](nova::AllocQuality): which ladder
/// rung produced the code and how far from proven-optimal it is.
pub fn quality_json(q: &nova::AllocQuality) -> Json {
    Json::obj([
        ("stage", Json::int(q.stage as usize)),
        ("proven_optimal", Json::Bool(q.proven_optimal)),
        ("gap", Json::Num(q.gap)),
        ("spills", Json::int(q.spills)),
    ])
}

/// JSON view of a [`CompileOutput`]'s headline numbers — the shared
/// shape server responses and bench artifacts render compiles with.
pub fn output_json(out: &CompileOutput) -> Json {
    Json::obj([
        ("code_size", Json::int(out.code_size)),
        ("moves", Json::int(out.alloc_stats.moves)),
        ("spills", Json::int(out.alloc_stats.spills)),
        ("objective", Json::Num(out.alloc_stats.objective)),
        ("quality", quality_json(&out.alloc_quality)),
    ])
}

/// JSON view of a full [`CompileReport`]: the artifact's headline
/// numbers plus per-phase wall time from the aggregated trace.
pub fn report_json(report: &CompileReport) -> Json {
    let mut doc = match output_json(&report.artifact) {
        Json::Obj(pairs) => pairs,
        _ => unreachable!("output_json returns an object"),
    };
    let phases: Vec<Json> = report
        .trace
        .spans
        .iter()
        .filter(|s| s.name.starts_with("phase."))
        .map(|s| {
            Json::obj([
                ("name", Json::str(s.name.trim_start_matches("phase."))),
                ("wall_ms", Json::Num(s.total_ns as f64 / 1e6)),
                ("count", Json::int(s.count)),
            ])
        })
        .collect();
    doc.push(("phases".to_string(), Json::Arr(phases)));
    Json::Obj(doc)
}

/// JSON view of one server [`CompileResponse`](nova_server::CompileResponse):
/// the echoed id and latency plus, per outcome, the artifact render or
/// the structured error.
pub fn response_json(r: &nova_server::CompileResponse) -> Json {
    let mut pairs = vec![
        ("id".to_string(), Json::int(r.id as usize)),
        ("ok".to_string(), Json::Bool(r.result.is_ok())),
        (
            "latency_us".to_string(),
            Json::Num(r.latency.as_secs_f64() * 1e6),
        ),
    ];
    match &r.result {
        Ok(out) => pairs.push(("artifact".to_string(), output_json(out))),
        Err(e) => pairs.push((
            "error".to_string(),
            Json::obj([
                ("phase", Json::str(format!("{:?}", e.phase).to_lowercase())),
                ("code", Json::str(e.code)),
                ("message", Json::str(e.message.clone())),
            ]),
        )),
    }
    Json::Obj(pairs)
}

/// JSON view of the session cache counters and derived hit rates.
pub fn cache_stats_json(s: &CacheStats) -> Json {
    Json::obj([
        ("frontend_hits", Json::int(s.frontend_hits as usize)),
        ("frontend_misses", Json::int(s.frontend_misses as usize)),
        ("cps_hits", Json::int(s.cps_hits as usize)),
        ("cps_misses", Json::int(s.cps_misses as usize)),
        ("isel_hits", Json::int(s.isel_hits as usize)),
        ("isel_misses", Json::int(s.isel_misses as usize)),
        ("alloc_hits", Json::int(s.alloc_hits as usize)),
        ("alloc_misses", Json::int(s.alloc_misses as usize)),
        ("output_hits", Json::int(s.output_hits as usize)),
        ("output_misses", Json::int(s.output_misses as usize)),
        (
            "refinish_fallbacks",
            Json::int(s.refinish_fallbacks as usize),
        ),
        ("hint_offers", Json::int(s.hint_offers as usize)),
        ("evict_count", Json::int(s.evict_count as usize)),
        ("evict_bytes", Json::int(s.evict_bytes as usize)),
        ("disk_hits", Json::int(s.disk_hits as usize)),
        ("disk_misses", Json::int(s.disk_misses as usize)),
        ("disk_rejects", Json::int(s.disk_rejects as usize)),
    ])
}

/// The `BENCH_service.json` document for one run.
pub fn service_json(run: &ServiceRun) -> Json {
    Json::obj([
        ("bench", Json::str("service")),
        (
            "stream",
            Json::obj([
                ("total", Json::int(run.total)),
                ("distinct", Json::int(run.distinct)),
                ("cold_samples", Json::int(run.cold_samples)),
                ("workers", Json::int(run.workers)),
                ("seed", Json::int(SERVICE_SEED as usize)),
                ("rules", Json::int(CLASSIFIER_RULES)),
            ]),
        ),
        ("counters", cache_stats_json(&run.stats)),
        (
            "rates",
            Json::obj([
                ("warm_compiles_per_sec", Json::Num(run.warm_rate())),
                ("cold_compiles_per_sec", Json::Num(run.cold_rate())),
                ("speedup", Json::Num(run.speedup())),
                (
                    "output_hit_rate",
                    Json::Num(run.stats.output_hit_rate().unwrap_or(0.0)),
                ),
                (
                    "alloc_hit_rate",
                    Json::Num(run.stats.alloc_hit_rate().unwrap_or(0.0)),
                ),
                (
                    "frontend_hit_rate",
                    Json::Num(run.stats.frontend_hit_rate().unwrap_or(0.0)),
                ),
            ]),
        ),
        ("mismatches", Json::int(run.mismatches)),
        ("failures", Json::int(run.failures)),
        ("warm_wall_ms", Json::Num(run.warm_wall.as_secs_f64() * 1e3)),
        ("cold_wall_ms", Json::Num(run.cold_wall.as_secs_f64() * 1e3)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_counters_are_exactly_predictable() {
        // A miniature stream with the same shape as the bench: the
        // counter algebra in the module doc must hold exactly.
        let (total, distinct) = (12, 4);
        let run = run_service(total, distinct, 2);
        assert_eq!(run.failures, 0);
        assert_eq!(run.mismatches, 0);
        let s = &run.stats;
        assert_eq!(s.output_misses, distinct as u64);
        assert_eq!(s.output_hits, (total - distinct) as u64);
        assert_eq!(s.frontend_misses, distinct as u64);
        assert_eq!(s.frontend_hits, 0);
        assert_eq!(s.alloc_misses, 1);
        assert_eq!(s.alloc_hits, distinct as u64 - 1);
        assert_eq!(s.refinish_fallbacks, 0);
    }

    #[test]
    fn service_json_round_trips_and_carries_the_gated_keys() {
        let run = run_service(6, 2, 1);
        let doc = Json::parse(&service_json(&run).pretty()).unwrap();
        let counters = doc.get("counters").expect("counters");
        assert_eq!(counters.num("output_hits"), Some(4.0));
        assert_eq!(counters.num("alloc_misses"), Some(1.0));
        let rates = doc.get("rates").expect("rates");
        assert!(rates.num("warm_compiles_per_sec").unwrap() > 0.0);
        assert!(rates.num("speedup").unwrap() > 0.0);
        assert_eq!(doc.num("mismatches"), Some(0.0));
    }

    #[test]
    fn response_json_renders_success_and_failure() {
        let server = Server::new(ServerConfig {
            workers: 1,
            compile: service_config(),
            ..ServerConfig::default()
        });
        let ok = server.submit(CompileRequest::new(
            7,
            "fun main() { let (a, b) = sram(0); sram(8) <- (a + b, a); 0 }",
        ));
        let doc = Json::parse(&response_json(&ok).pretty()).unwrap();
        assert_eq!(doc.num("id"), Some(7.0));
        assert!(doc.get("artifact").is_some());
        let bad = server.submit(CompileRequest::new(8, "fun main() { y }"));
        let doc = Json::parse(&response_json(&bad).pretty()).unwrap();
        assert_eq!(
            doc.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("E-TYPE")
        );
    }
}
