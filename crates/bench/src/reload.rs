//! Hot-reload and restart benchmark harness (E16).
//!
//! Two measurements of the hardened compile service:
//!
//! * **Hot reload** — the end-to-end latency of a rule update on a live
//!   chip: compile a classifier rule update in a warm session (a
//!   solve-free, constant-only recompile), swap the new image onto the
//!   running simulated chip between packets via
//!   [`ixp_sim::simulate_chip_reload`], and pin the first packet
//!   transmitted through the new rules. The modeled part of the latency
//!   (swap cycle → first post-swap transmit, including the control-store
//!   reload stall) is exactly deterministic and gated `Exact`; the
//!   compile wall time is host-noisy and reported as `Info`.
//! * **Restart** — a server process dies and its replacement warms from
//!   the on-disk artifact cache: session one compiles structurally
//!   distinct rule sets with a `persist_dir`, a fresh session over the
//!   same directory replays the stream, and every MILP solve is replaced
//!   by a disk load (`disk_hits` = variant count, artifacts
//!   bit-identical, wall-time speedup gated against an absolute floor).

use crate::json::Json;
use crate::service::cache_stats_json;
use ixp_sim::{
    simulate_chip_reload, ChipConfig, ImageSwap, PacketGen, PacketSpec, SimMemory, SimResult,
    SwapReport,
};
use nova::{CacheStats, CompileConfig, CompileOutput, Compiler};
use nova_server::{CompileRequest, CompileResponse, Server, ServerConfig};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use workloads::{classifier_rules, classifier_source, CLASSIFIER_RULES};

/// Rule-stream seed shared by the bench and smoke binaries.
pub const RELOAD_SEED: u64 = 0x0E10_AD00;

/// The compile configuration of both measurements: one solver thread so
/// allocations are bit-deterministic.
pub fn reload_config() -> CompileConfig {
    CompileConfig::builder().solver_threads(1).build()
}

/// One measured image swap of the hot-reload run.
#[derive(Debug)]
pub struct HotSwap {
    /// Transmitted-packet threshold that armed the swap.
    pub after_packets: u64,
    /// Host wall time of the (warm, solve-free) recompile.
    pub compile_wall: Duration,
    /// The simulator's swap report (modeled cycles; deterministic).
    pub report: SwapReport,
}

impl HotSwap {
    /// Modeled swap → first-new-rules-transmit latency in cycles.
    ///
    /// # Panics
    ///
    /// Panics if the swap never fired — the harness sizes the packet
    /// stream so every threshold is reached.
    pub fn update_cycles(&self) -> u64 {
        self.report
            .update_cycles()
            .expect("swap fired and a packet followed it")
    }

    /// [`update_cycles`](Self::update_cycles) converted to microseconds
    /// at the IXP1200's 233 MHz clock.
    pub fn update_us(&self) -> f64 {
        self.update_cycles() as f64 * 1e6 / ixp_machine::timing::CLOCK_HZ as f64
    }
}

/// Measured outcome of the hot-reload run.
#[derive(Debug)]
pub struct HotReloadRun {
    /// Micro-engines simulated.
    pub engines: usize,
    /// Contexts per engine.
    pub contexts: usize,
    /// Packets in the receive queue.
    pub packets: usize,
    /// Payload bytes per packet.
    pub payload_bytes: u32,
    /// Host wall time of the cold base-image compile.
    pub base_compile_wall: Duration,
    /// One entry per scheduled swap, in firing order.
    pub swaps: Vec<HotSwap>,
    /// The simulation result of the whole (multi-image) run. The
    /// transmitted total sits slightly below `packets`: a swap aborts
    /// whatever packets contexts held in flight (at most one per
    /// context per swap), deterministically.
    pub result: SimResult,
    /// Compile-session counters: the base image is the only solve, every
    /// update is a constant-only alloc hit.
    pub stats: CacheStats,
}

/// Run the hot-reload measurement: compile classifier variant 0 cold,
/// variants `1..=swaps_at.len()` warm in the same session, and swap each
/// onto the running chip when `swaps_at[i]` packets have been
/// transmitted.
///
/// # Panics
///
/// Panics if a compile or the simulation fails, or if a scheduled swap
/// never fires — the generated stream is known-good, so either is
/// harness breakage rather than a measurement.
pub fn run_hot_reload(packets: usize, payload_bytes: u32, swaps_at: &[u64]) -> HotReloadRun {
    let session = Compiler::new(reload_config());
    let compile_variant = |variant: u64| -> (CompileOutput, Duration) {
        let rules = classifier_rules(RELOAD_SEED, variant, CLASSIFIER_RULES);
        let start = Instant::now();
        let out = session
            .compile_output(&classifier_source(&rules))
            .unwrap_or_else(|e| panic!("classifier variant {variant}: {e}"));
        (out, start.elapsed())
    };

    let (base, base_compile_wall) = compile_variant(0);
    let updates: Vec<(CompileOutput, Duration)> =
        (1..=swaps_at.len() as u64).map(compile_variant).collect();

    let mut mem = SimMemory::with_sizes(64, 1 << 20, 128);
    PacketGen::new(RELOAD_SEED).generate(
        &mut mem,
        &PacketSpec {
            count: packets,
            payload_bytes,
            header_bytes: workloads::HEADER_BYTES,
            seed: RELOAD_SEED ^ 1,
        },
    );

    let cfg = ChipConfig {
        engines: 2,
        contexts: 4,
        max_cycles: 4_000_000_000,
        ..ChipConfig::default()
    };
    let swaps: Vec<ImageSwap> = swaps_at
        .iter()
        .zip(&updates)
        .map(|(&after, (out, _))| ImageSwap::new(after, out.prog.clone()))
        .collect();
    let (result, reports) =
        simulate_chip_reload(&base.prog, &swaps, &mut mem, &cfg).expect("reload simulation runs");

    HotReloadRun {
        engines: cfg.engines,
        contexts: cfg.contexts,
        packets,
        payload_bytes,
        base_compile_wall,
        swaps: swaps_at
            .iter()
            .zip(updates)
            .zip(reports)
            .map(|((&after, (_, compile_wall)), report)| HotSwap {
                after_packets: after,
                compile_wall,
                report,
            })
            .collect(),
        result,
        stats: session.cache_stats(),
    }
}

/// Measured outcome of the restart (warm-from-disk) run.
#[derive(Debug)]
pub struct RestartRun {
    /// Structurally distinct rule sets in the stream (rule counts
    /// `2..2+variants`), each forcing its own MILP solve cold.
    pub variants: usize,
    /// Wall time of the cold batch (every variant solved + persisted).
    pub cold_wall: Duration,
    /// Wall time of the warm batch (every solve replaced by a disk load).
    pub warm_wall: Duration,
    /// First server's counters: all misses, one disk store per variant.
    pub cold_stats: CacheStats,
    /// Restarted server's counters: `disk_hits` = `variants`, no solves.
    pub warm_stats: CacheStats,
    /// Warm responses whose artifact differed from the cold one (must be
    /// zero: a disk-loaded allocation must be bit-identical).
    pub mismatches: usize,
    /// Requests that failed to compile in either batch (must be zero).
    pub failures: usize,
}

impl RestartRun {
    /// Cold-over-warm wall-time ratio — how much faster the restarted
    /// server warms up because the MILP solves come off disk.
    pub fn speedup(&self) -> f64 {
        self.cold_wall.as_secs_f64() / self.warm_wall.as_secs_f64().max(1e-9)
    }
}

/// The restart stream: `variants` structurally distinct classifiers
/// (rule counts `2..2+variants`, so the immediate-masked allocation key
/// cannot alias them) as server requests.
pub fn restart_stream(variants: usize) -> Vec<CompileRequest> {
    (0..variants)
        .map(|i| {
            let rules = classifier_rules(RELOAD_SEED, 0, 2 + i);
            CompileRequest::new(i as u64, classifier_source(&rules))
        })
        .collect()
}

/// Run the restart measurement over `persist_dir`: server one compiles
/// the stream cold (populating the disk cache), is dropped, and a fresh
/// server over the same directory replays the stream warm. The caller
/// owns the directory; it must start empty.
pub fn run_restart(variants: usize, persist_dir: &Path) -> RestartRun {
    let server_over = |dir: &Path| {
        Server::new(ServerConfig {
            workers: 1,
            compile: CompileConfig::builder()
                .solver_threads(1)
                .persist_dir(dir)
                .build(),
            ..ServerConfig::default()
        })
    };
    let run_batch = |server: &Server| -> (Vec<CompileResponse>, Duration) {
        let start = Instant::now();
        let responses = server.submit_batch(restart_stream(variants));
        (responses, start.elapsed())
    };

    let cold_server = server_over(persist_dir);
    let (cold, cold_wall) = run_batch(&cold_server);
    let cold_stats = cold_server.cache_stats();
    drop(cold_server); // the "crash": only the disk cache survives

    let warm_server = server_over(persist_dir);
    let (warm, warm_wall) = run_batch(&warm_server);
    let warm_stats = warm_server.cache_stats();

    let failures = cold
        .iter()
        .chain(&warm)
        .filter(|r| r.result.is_err())
        .count();
    let mismatches = warm
        .iter()
        .zip(&cold)
        .filter(|(w, c)| match (&w.result, &c.result) {
            (Ok(w), Ok(c)) => !w.artifact_eq(c),
            _ => true,
        })
        .count();

    RestartRun {
        variants,
        cold_wall,
        warm_wall,
        cold_stats,
        warm_stats,
        mismatches,
        failures,
    }
}

/// A scratch directory for one persistence run, removed on drop.
/// Uniqueness comes from the process id plus a caller tag — enough for
/// the bench/smoke binaries, which own their tags.
pub struct ScratchDir(PathBuf);

impl ScratchDir {
    /// Create (empty) `nova-<tag>-<pid>` under the system temp dir.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created or emptied.
    pub fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("nova-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        ScratchDir(dir)
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The `BENCH_reload.json` document for one hot-reload + restart run.
pub fn reload_json(hot: &HotReloadRun, restart: &RestartRun) -> Json {
    Json::obj([
        ("bench", Json::str("reload")),
        (
            "hot",
            Json::obj([
                ("engines", Json::int(hot.engines)),
                ("contexts", Json::int(hot.contexts)),
                ("packets", Json::int(hot.packets)),
                ("payload_bytes", Json::int(hot.payload_bytes as usize)),
                (
                    "base_compile_ms",
                    Json::Num(hot.base_compile_wall.as_secs_f64() * 1e3),
                ),
                (
                    "sim",
                    Json::obj([
                        ("cycles", Json::int(hot.result.cycles as usize)),
                        ("packets", Json::int(hot.result.packets as usize)),
                        ("instructions", Json::int(hot.result.instructions as usize)),
                    ]),
                ),
                (
                    "swaps",
                    Json::Arr(
                        hot.swaps
                            .iter()
                            .map(|s| {
                                Json::obj([
                                    ("after_packets", Json::int(s.after_packets as usize)),
                                    ("compile_ms", Json::Num(s.compile_wall.as_secs_f64() * 1e3)),
                                    (
                                        "swap_cycle",
                                        Json::int(s.report.swap_cycle.unwrap_or(0) as usize),
                                    ),
                                    (
                                        "first_tx_cycle",
                                        Json::int(s.report.first_tx_cycle.unwrap_or(0) as usize),
                                    ),
                                    ("update_cycles", Json::int(s.update_cycles() as usize)),
                                    ("update_us", Json::Num(s.update_us())),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("counters", cache_stats_json(&hot.stats)),
            ]),
        ),
        (
            "restart",
            Json::obj([
                ("variants", Json::int(restart.variants)),
                (
                    "cold_wall_ms",
                    Json::Num(restart.cold_wall.as_secs_f64() * 1e3),
                ),
                (
                    "warm_wall_ms",
                    Json::Num(restart.warm_wall.as_secs_f64() * 1e3),
                ),
                ("speedup", Json::Num(restart.speedup())),
                ("cold_counters", cache_stats_json(&restart.cold_stats)),
                ("warm_counters", cache_stats_json(&restart.warm_stats)),
                ("mismatches", Json::int(restart.mismatches)),
                ("failures", Json::int(restart.failures)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_reload_counters_and_reports_are_exact() {
        let run = run_hot_reload(120, 64, &[30, 60]);
        // Base image solved once; both updates are constant-only hits.
        assert_eq!(run.stats.alloc_misses, 1);
        assert_eq!(run.stats.alloc_hits, 2);
        assert_eq!(run.stats.refinish_fallbacks, 0);
        // A swap aborts the packets contexts held in flight (their
        // rx_queue pop already happened), so the transmitted total sits
        // a few below the queued count — bounded by one packet per
        // context per swap, and exactly reproducible run to run.
        let in_flight_bound = (run.engines * run.contexts * run.swaps.len()) as u64;
        assert!(run.result.packets <= 120);
        assert!(run.result.packets >= 120 - in_flight_bound);
        let rerun = run_hot_reload(120, 64, &[30, 60]);
        assert_eq!(rerun.result.packets, run.result.packets);
        assert_eq!(rerun.result.cycles, run.result.cycles);
        for s in &run.swaps {
            let swap = s.report.swap_cycle.expect("swap fired");
            let first = s.report.first_tx_cycle.expect("a packet followed");
            assert!(first > swap, "update latency is positive");
            assert_eq!(s.update_cycles(), first - swap);
            assert!(s.update_us() > 0.0);
        }
        // Later thresholds fire later.
        assert!(run.swaps[1].report.swap_cycle > run.swaps[0].report.swap_cycle);
    }

    #[test]
    fn restart_warms_from_disk_with_exact_counters() {
        let dir = ScratchDir::new("reload-test");
        let run = run_restart(3, dir.path());
        assert_eq!(run.failures, 0);
        assert_eq!(run.mismatches, 0);
        let (c, w) = (&run.cold_stats, &run.warm_stats);
        assert_eq!(c.alloc_misses, 3);
        assert_eq!(c.disk_misses, 3);
        assert_eq!(c.disk_hits, 0);
        assert_eq!(w.disk_hits, 3);
        assert_eq!(w.alloc_hits, 3);
        assert_eq!(w.alloc_misses, 0);
        assert_eq!(w.disk_rejects, 0);
    }

    #[test]
    fn reload_json_carries_the_gated_keys() {
        let dir = ScratchDir::new("reload-json-test");
        let hot = run_hot_reload(90, 64, &[30]);
        let restart = run_restart(2, dir.path());
        let doc = Json::parse(&reload_json(&hot, &restart).pretty()).unwrap();
        let hot_doc = doc.get("hot").expect("hot");
        let sim_packets = hot_doc.get("sim").unwrap().num("packets").unwrap();
        assert!(sim_packets > 0.0 && sim_packets <= 90.0);
        let swap = &hot_doc.get("swaps").unwrap().as_arr().unwrap()[0];
        assert!(swap.num("update_cycles").unwrap() > 0.0);
        let restart_doc = doc.get("restart").expect("restart");
        assert_eq!(
            restart_doc.get("warm_counters").unwrap().num("disk_hits"),
            Some(2.0)
        );
        assert_eq!(restart_doc.num("mismatches"), Some(0.0));
    }
}
