//! Shared harness for the figure-regeneration binaries and Criterion
//! benches. See EXPERIMENTS.md for the experiment-to-binary index.

#![warn(missing_docs)]

pub mod gate;
pub mod reload;
pub mod rollout;
pub mod service;

use ixp_sim::{
    simulate, simulate_chip, simulate_topology, ChipConfig, PacketGen, PacketSpec, SimConfig,
    SimMemory, SimMode, TopologyConfig, TopologyResult, TrafficSpec,
};
use nova::{CompileConfig, CompileOutput, Compiler};
use workloads::{aes, kasumi, AES_NOVA, KASUMI_NOVA, NAT_NOVA};

/// The three benchmark programs of §11.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Benchmark {
    /// AES Rijndael.
    Aes,
    /// Kasumi.
    Kasumi,
    /// IPv6→IPv4 NAT.
    Nat,
}

impl Benchmark {
    /// All three, in the paper's order.
    pub const ALL: [Benchmark; 3] = [Benchmark::Aes, Benchmark::Kasumi, Benchmark::Nat];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Aes => "AES",
            Benchmark::Kasumi => "Kasumi",
            Benchmark::Nat => "NAT",
        }
    }

    /// Nova source text.
    pub fn source(self) -> &'static str {
        match self {
            Benchmark::Aes => AES_NOVA,
            Benchmark::Kasumi => KASUMI_NOVA,
            Benchmark::Nat => NAT_NOVA,
        }
    }
}

/// Compile a benchmark with the given configuration.
///
/// # Panics
///
/// Panics on compile errors — the sources are fixed and known-good.
pub fn compile(b: Benchmark, config: &CompileConfig) -> CompileOutput {
    Compiler::new(config.clone())
        .compile_output(b.source())
        .unwrap_or_else(|e| panic!("{}: {e}", b.name()))
}

/// Set up the memory a benchmark expects (tables, keys) and fill the
/// receive queue with `count` packets of `payload_bytes` payload.
pub fn setup_memory(b: Benchmark, count: usize, payload_bytes: u32) -> SimMemory {
    let mut mem = SimMemory::with_sizes(4096, 1 << 20, 2048);
    match b {
        Benchmark::Aes => {
            let key: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(7));
            aes::load_sram(&key, |a, v| mem.sram[a as usize] = v);
        }
        Benchmark::Kasumi => {
            let key: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(13));
            let (mut s, mut c) = (Vec::new(), Vec::new());
            kasumi::load_memory(&key, |a, v| s.push((a, v)), |a, v| c.push((a, v)));
            for (a, v) in s {
                mem.sram[a as usize] = v;
            }
            for (a, v) in c {
                mem.scratch[a as usize] = v;
            }
        }
        Benchmark::Nat => {
            // NAT's packets need valid IPv6 headers; overwrite the header
            // words after generation below.
        }
    }
    let mut gen = PacketGen::new(0xFEED + payload_bytes as u64);
    let spec = PacketSpec {
        count,
        payload_bytes,
        header_bytes: workloads::HEADER_BYTES,
        seed: 42 + payload_bytes as u64,
    };
    let addrs = gen.generate(&mut mem, &spec);
    // Give every packet the fast-path header the programs expect
    // (IPv4/TCP-ish first two words for AES/Kasumi).
    if b != Benchmark::Nat {
        for a in &addrs {
            let total = spec.header_bytes + spec.payload_bytes;
            mem.sdram[*a as usize] = (4 << 28) | (5 << 24) | (total & 0xFFFF);
            mem.sdram[*a as usize + 1] = (64 << 24) | (6 << 16);
        }
    }
    if b == Benchmark::Nat {
        // Give every packet a well-formed IPv6/TCP header.
        for a in addrs {
            let hdr = workloads::nat::Ipv6Header {
                version: 6,
                traffic_class: 0,
                flow: 0x12345,
                payload_len: payload_bytes + 16, // TCP header + payload
                next_header: 6,
                hop_limit: 64,
                src: [0x2001_0DB8, 0, 0, 0xC0A8_0000 + a],
                dst: [0x2001_0DB8, 0, 1, 0x0A00_0000 + a],
            };
            for (i, w) in hdr.pack().iter().enumerate() {
                mem.sdram[a as usize + i] = *w;
            }
        }
    }
    mem
}

/// Run a compiled benchmark over `count` packets with `payload_bytes` of
/// payload on `threads` hardware contexts; returns the simulator result.
pub fn run_throughput(
    b: Benchmark,
    out: &CompileOutput,
    count: usize,
    payload_bytes: u32,
    threads: usize,
) -> ixp_sim::SimResult {
    let mut mem = setup_memory(b, count, payload_bytes);
    simulate(
        &out.prog,
        &mut mem,
        &SimConfig {
            threads,
            max_cycles: 4_000_000_000,
            ..Default::default()
        },
    )
    .expect("simulation runs")
}

/// Run a compiled benchmark over `count` packets with `payload_bytes` of
/// payload on the chip-level simulator with `engines` micro-engines of
/// `contexts` contexts each. Deterministic for any host thread count.
pub fn run_chip_throughput(
    b: Benchmark,
    out: &CompileOutput,
    count: usize,
    payload_bytes: u32,
    engines: usize,
    contexts: usize,
) -> ixp_sim::SimResult {
    let mut mem = setup_memory(b, count, payload_bytes);
    let cfg = ChipConfig {
        engines,
        contexts,
        max_cycles: 4_000_000_000,
        ..ChipConfig::default()
    };
    simulate_chip(&out.prog, &mut mem, &cfg).expect("chip simulation runs")
}

/// JSON view of one chip-simulation result: totals, stop reason, and the
/// per-engine / per-channel telemetry that explains the scaling knee.
pub fn chip_result_json(res: &ixp_sim::SimResult) -> json::Json {
    use json::Json;
    Json::obj([
        ("cycles", Json::int(res.cycles as usize)),
        ("instructions", Json::int(res.instructions as usize)),
        ("packets", Json::int(res.packets as usize)),
        ("bytes", Json::int(res.bytes as usize)),
        ("mbps", Json::Num(res.mbps)),
        (
            "stop",
            Json::str(match res.stop {
                ixp_sim::StopReason::AllHalted => "all-halted",
                ixp_sim::StopReason::CycleLimit => "cycle-limit",
            }),
        ),
        (
            "channels",
            Json::Arr(
                res.channels
                    .iter()
                    .map(|c| {
                        Json::obj([
                            ("space", Json::str(format!("{:?}", c.space).to_lowercase())),
                            ("reads", Json::int(c.reads as usize)),
                            ("writes", Json::int(c.writes as usize)),
                            ("busy_cycles", Json::int(c.busy_cycles as usize)),
                            ("wait_cycles", Json::int(c.wait_cycles as usize)),
                            ("max_queue_depth", Json::int(c.max_queue_depth)),
                            ("occupancy", Json::Num(c.occupancy(res.cycles))),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "engines",
            Json::Arr(
                res.engines
                    .iter()
                    .map(|e| {
                        Json::obj([
                            ("engine", Json::int(e.engine)),
                            ("instructions", Json::int(e.instructions as usize)),
                            ("swap_outs", Json::int(e.swap_outs as usize)),
                            ("idle_cycles", Json::int(e.idle_cycles as usize)),
                            ("packets", Json::int(e.packets as usize)),
                            ("bytes", Json::int(e.bytes as usize)),
                            ("halt_cycle", Json::int(e.halt_cycle as usize)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The canonical traffic shape of the multi-chip harness: Zipf-popular
/// flows (s = 1.0) over four real-world packet length classes, bursty,
/// paced at ~1.8 Gb/s offered load — roughly twice what one NAT chip
/// sustains, so an under-provisioned topology visibly tail-drops and
/// queues while a sharded one keeps up. Every traffic artifact
/// (`BENCH_traffic.json`, the smoke run, E14) uses this spec so numbers
/// stay comparable across sweeps; only `packets` varies.
pub fn traffic_spec(packets: usize) -> TrafficSpec {
    TrafficSpec {
        packets,
        flows: 4096,
        zipf_s_halves: 2,
        mean_burst: 4,
        length_classes: vec![64, 200, 576, 1500],
        mean_gap: 128,
        cycles_per_byte: 1,
        seed: 0x1337_BEEF,
    }
}

/// The canonical chip/topology shape of the traffic harness: full
/// IXP1200s (6 engines x 4 contexts), a 64-packet receive buffer per
/// chip, and a coarser 32-cycle arbitration epoch — barrier count is the
/// host-time driver at traffic scale, and rx/tx quantization error stays
/// a few cycles per packet.
pub fn traffic_topology(chips: usize, mode: SimMode) -> TopologyConfig {
    TopologyConfig {
        chips,
        chip: ChipConfig {
            max_cycles: 1 << 36,
            slice: 32,
            host_threads: 1,
            mode,
            ..ChipConfig::default()
        },
        rx_capacity: 64,
        slots_per_class: 128,
        overrides: Vec::new(),
    }
}

/// Pre-write one valid NAT packet buffer (IPv6/TCP header + payload) of
/// `bytes` on-wire length at SDRAM word address `addr` — the
/// `write_packet` hook [`ixp_sim::simulate_topology`] wants.
pub fn write_nat_packet(mem: &mut SimMemory, addr: u32, bytes: u32) {
    let payload_bytes = bytes.saturating_sub(workloads::HEADER_BYTES);
    let hdr = workloads::nat::Ipv6Header {
        version: 6,
        traffic_class: 0,
        flow: 0x12345,
        payload_len: payload_bytes + 16, // TCP header + payload
        next_header: 6,
        hop_limit: 64,
        src: [0x2001_0DB8, 0, 0, 0xC0A8_0000 + addr],
        dst: [0x2001_0DB8, 0, 1, 0x0A00_0000 + addr],
    };
    for (i, w) in hdr.pack().iter().enumerate() {
        mem.write(ixp_machine::MemSpace::Sdram, addr + i as u32, *w);
    }
    let header_words = hdr.pack().len() as u32;
    for i in 0..payload_bytes.div_ceil(4) {
        let w = addr
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add(i.wrapping_mul(0x85EB_CA6B));
        mem.write(ixp_machine::MemSpace::Sdram, addr + header_words + i, w);
    }
}

/// The microburst stress variant of [`traffic_spec`]: long bursts land
/// at line rate (no per-byte pacing), so a ~48-packet burst of one flow
/// slams a 64-slot receive buffer at once. Because the balancer is
/// flow-affine, a burst always lands on a single chip — sharding buys
/// aggregate capacity but *not* microburst absorption, which is the
/// shallow-buffer tail-drop story the drop column of E14 measures.
pub fn microburst_spec(packets: usize) -> TrafficSpec {
    TrafficSpec {
        mean_burst: 48,
        mean_gap: 4096,
        cycles_per_byte: 0,
        ..traffic_spec(packets)
    }
}

/// Run the NAT benchmark over `spec`'s trace on a sharded multi-chip
/// topology. Returns the aggregated result and the host wall time of
/// the simulation itself (trace generation excluded).
pub fn run_traffic_spec(
    out: &CompileOutput,
    spec: &TrafficSpec,
    chips: usize,
    mode: SimMode,
) -> (TopologyResult, std::time::Duration) {
    let trace = spec.generate();
    let cfg = traffic_topology(chips, mode);
    let start = std::time::Instant::now();
    let res = simulate_topology(&out.prog, &cfg, &trace, write_nat_packet)
        .expect("traffic simulation runs");
    (res, start.elapsed())
}

/// [`run_traffic_spec`] over the canonical [`traffic_spec`] trace.
pub fn run_traffic(
    out: &CompileOutput,
    packets: usize,
    chips: usize,
    mode: SimMode,
) -> (TopologyResult, std::time::Duration) {
    run_traffic_spec(out, &traffic_spec(packets), chips, mode)
}

/// JSON view of one traffic sweep point: modeled drop/latency/throughput
/// plus the host-side simulation rate that motivated the fast path.
/// `id` keys the point for the gate (e.g. `p100000x2`,
/// `burst100000x1`).
pub fn traffic_result_json(
    id: &str,
    packets: usize,
    chips: usize,
    res: &TopologyResult,
    wall: std::time::Duration,
) -> json::Json {
    use json::Json;
    let wall_s = wall.as_secs_f64().max(1e-9);
    // Host work is proportional to the *sum* of per-chip cycles (chips
    // share one coordinator thread pool on a small CI host).
    let host_cycles: u64 = res.chips.iter().map(|c| c.result.cycles).sum();
    let lat = |l: &ixp_sim::LatencySummary| {
        Json::obj([
            ("count", Json::int(l.count as usize)),
            ("p50", Json::int(l.p50 as usize)),
            ("p90", Json::int(l.p90 as usize)),
            ("p99", Json::int(l.p99 as usize)),
            ("max", Json::int(l.max as usize)),
        ])
    };
    Json::obj([
        ("id", Json::str(id)),
        ("packets", Json::int(packets)),
        ("chips", Json::int(chips)),
        ("offered", Json::int(res.offered as usize)),
        ("delivered", Json::int(res.delivered as usize)),
        ("dropped", Json::int(res.dropped as usize)),
        ("sim_cycles", Json::int(res.cycles as usize)),
        ("mbps", Json::Num(res.mbps)),
        ("latency", lat(&res.latency)),
        ("host_wall_ms", Json::Num(wall_s * 1e3)),
        (
            "host_sim_cycles_per_sec",
            Json::Num(host_cycles as f64 / wall_s),
        ),
        (
            "host_packets_per_sec",
            Json::Num(res.delivered as f64 / wall_s),
        ),
        (
            "shards",
            Json::Arr(
                res.chips
                    .iter()
                    .map(|c| {
                        Json::obj([
                            ("shard", Json::int(c.shard)),
                            ("offered", Json::int(c.offered as usize)),
                            ("delivered", Json::int(c.delivered as usize)),
                            ("dropped", Json::int(c.dropped as usize)),
                            ("cycles", Json::int(c.result.cycles as usize)),
                            ("latency", lat(&c.latency)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Minimal JSON construction and parsing for machine-readable bench
/// artifacts (`BENCH_solver.json`, `BENCH_phases.json`). Hand-rolled
/// because the workspace carries no serde; covers exactly what the bench
/// binaries need: objects, arrays, strings, numbers, and booleans,
/// pretty-printed with stable key order, plus a strict parser for the
/// gate binary that diffs checked-in baselines against fresh runs.
pub mod json {
    /// A JSON value.
    #[derive(Debug, Clone)]
    pub enum Json {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// A finite number (non-finite values render as `null`).
        Num(f64),
        /// A string (escaped on render).
        Str(String),
        /// An ordered array.
        Arr(Vec<Json>),
        /// An object; key order is preserved as inserted.
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        /// Object from key/value pairs (order preserved).
        pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
            Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
        }

        /// String value.
        pub fn str(s: impl Into<String>) -> Json {
            Json::Str(s.into())
        }

        /// Integer value (exact for |v| < 2^53).
        pub fn int(v: usize) -> Json {
            Json::Num(v as f64)
        }

        /// Parse a JSON document. Strict: rejects trailing data,
        /// comments, and unquoted keys; accepts everything [`pretty`]
        /// emits (round-trip safe).
        ///
        /// [`pretty`]: Json::pretty
        ///
        /// # Errors
        ///
        /// Returns a message with the byte offset of the first syntax
        /// error.
        pub fn parse(text: &str) -> Result<Json, String> {
            let mut p = Parser {
                b: text.as_bytes(),
                i: 0,
            };
            p.skip_ws();
            let v = p.value()?;
            p.skip_ws();
            if p.i != p.b.len() {
                return Err(format!("trailing data at byte {}", p.i));
            }
            Ok(v)
        }

        /// Member lookup on an object; `None` for other variants or a
        /// missing key.
        pub fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// Numeric view.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Json::Num(v) => Some(*v),
                _ => None,
            }
        }

        /// String view.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Json::Str(s) => Some(s),
                _ => None,
            }
        }

        /// Array view.
        pub fn as_arr(&self) -> Option<&[Json]> {
            match self {
                Json::Arr(items) => Some(items),
                _ => None,
            }
        }

        /// `self[key]` as a number (member lookup + numeric view).
        pub fn num(&self, key: &str) -> Option<f64> {
            self.get(key)?.as_f64()
        }
    }

    struct Parser<'a> {
        b: &'a [u8],
        i: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.i += 1;
            }
        }

        fn expect(&mut self, c: u8) -> Result<(), String> {
            if self.b.get(self.i) == Some(&c) {
                self.i += 1;
                Ok(())
            } else {
                Err(format!("expected '{}' at byte {}", c as char, self.i))
            }
        }

        fn value(&mut self) -> Result<Json, String> {
            match self.b.get(self.i) {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Json::Str(self.string()?)),
                Some(b't') => self.literal("true", Json::Bool(true)),
                Some(b'f') => self.literal("false", Json::Bool(false)),
                Some(b'n') => self.literal("null", Json::Null),
                Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
                _ => Err(format!("expected a JSON value at byte {}", self.i)),
            }
        }

        fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
            if self.b[self.i..].starts_with(word.as_bytes()) {
                self.i += word.len();
                Ok(v)
            } else {
                Err(format!("bad literal at byte {}", self.i))
            }
        }

        fn number(&mut self) -> Result<Json, String> {
            let start = self.i;
            while matches!(
                self.b.get(self.i),
                Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            ) {
                self.i += 1;
            }
            std::str::from_utf8(&self.b[start..self.i])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.b.get(self.i) {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        self.i += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.i += 1;
                        match self.b.get(self.i) {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'r') => out.push('\r'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = self
                                    .b
                                    .get(self.i + 1..self.i + 5)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                                    .ok_or_else(|| format!("bad \\u escape at byte {}", self.i))?;
                                out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                                self.i += 4;
                            }
                            _ => return Err(format!("bad escape at byte {}", self.i)),
                        }
                        self.i += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar (the input is a &str,
                        // so boundaries are valid).
                        let rest = std::str::from_utf8(&self.b[self.i..])
                            .map_err(|_| "invalid UTF-8".to_string())?;
                        let c = rest.chars().next().unwrap();
                        out.push(c);
                        self.i += c.len_utf8();
                    }
                }
            }
        }

        fn array(&mut self) -> Result<Json, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.b.get(self.i) == Some(&b']') {
                self.i += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.b.get(self.i) {
                    Some(b',') => self.i += 1,
                    Some(b']') => {
                        self.i += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
                }
            }
        }

        fn object(&mut self) -> Result<Json, String> {
            self.expect(b'{')?;
            let mut pairs = Vec::new();
            self.skip_ws();
            if self.b.get(self.i) == Some(&b'}') {
                self.i += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let val = self.value()?;
                pairs.push((key, val));
                self.skip_ws();
                match self.b.get(self.i) {
                    Some(b',') => self.i += 1,
                    Some(b'}') => {
                        self.i += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
                }
            }
        }
    }

    impl Json {
        /// Render with two-space indentation and a trailing newline.
        pub fn pretty(&self) -> String {
            let mut out = String::new();
            self.write(&mut out, 0);
            out.push('\n');
            out
        }

        fn write(&self, out: &mut String, indent: usize) {
            let pad = "  ".repeat(indent);
            let pad_in = "  ".repeat(indent + 1);
            match self {
                Json::Null => out.push_str("null"),
                Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Json::Num(v) => {
                    if !v.is_finite() {
                        out.push_str("null");
                    } else if *v == v.trunc() && v.abs() < 9e15 {
                        out.push_str(&format!("{}", *v as i64));
                    } else {
                        out.push_str(&format!("{v}"));
                    }
                }
                Json::Str(s) => {
                    out.push('"');
                    for c in s.chars() {
                        match c {
                            '"' => out.push_str("\\\""),
                            '\\' => out.push_str("\\\\"),
                            '\n' => out.push_str("\\n"),
                            '\t' => out.push_str("\\t"),
                            '\r' => out.push_str("\\r"),
                            c if (c as u32) < 0x20 => {
                                out.push_str(&format!("\\u{:04x}", c as u32));
                            }
                            c => out.push(c),
                        }
                    }
                    out.push('"');
                }
                Json::Arr(items) => {
                    if items.is_empty() {
                        out.push_str("[]");
                        return;
                    }
                    out.push_str("[\n");
                    for (i, v) in items.iter().enumerate() {
                        out.push_str(&pad_in);
                        v.write(out, indent + 1);
                        if i + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    out.push_str(&pad);
                    out.push(']');
                }
                Json::Obj(pairs) => {
                    if pairs.is_empty() {
                        out.push_str("{}");
                        return;
                    }
                    out.push_str("{\n");
                    for (i, (k, v)) in pairs.iter().enumerate() {
                        out.push_str(&pad_in);
                        Json::Str(k.clone()).write(out, indent + 1);
                        out.push_str(": ");
                        v.write(out, indent + 1);
                        if i + 1 < pairs.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    out.push_str(&pad);
                    out.push('}');
                }
            }
        }
    }
}

/// JSON view of one solve's [`ilp::SolveStats`] plus the allocation's
/// objective and move/spill counts — the shared shape used by
/// `BENCH_solver.json`.
pub fn solve_stats_json(st: &nova::AllocStats) -> json::Json {
    use json::Json;
    let s = &st.solve;
    Json::obj([
        ("threads", Json::int(s.threads)),
        ("root_s", Json::Num(s.root_time.as_secs_f64())),
        ("solve_s", Json::Num(s.total_time.as_secs_f64())),
        ("cpu_s", Json::Num(s.cpu_time.as_secs_f64())),
        ("nodes", Json::int(s.nodes)),
        ("pivots", Json::int(s.simplex_iterations)),
        ("pivots_per_sec", Json::Num(s.pivots_per_sec())),
        ("kernel", Json::str(s.kernel.clone())),
        ("refactorizations", Json::int(s.refactorizations)),
        ("eta_pivots", Json::int(s.eta_pivots)),
        ("lu_fill_nnz", Json::int(s.lu_fill_nnz)),
        ("warm_hits", Json::int(s.warm_hits)),
        ("warm_misses", Json::int(s.warm_misses)),
        ("warm_hit_rate", Json::Num(s.warm_hit_rate())),
        ("activated_rows", Json::int(s.activated_rows)),
        ("presolved_rows", Json::int(s.presolved_rows)),
        ("gap", Json::Num(s.gap)),
        ("proven_optimal", Json::Bool(s.proven_optimal)),
        (
            "per_thread_nodes",
            Json::Arr(s.per_thread_nodes.iter().map(|&n| Json::int(n)).collect()),
        ),
        ("objective", Json::Num(st.objective)),
        ("moves", Json::int(st.moves)),
        ("spills", Json::int(st.spills)),
    ])
}

/// Render a text table with aligned columns.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let mut s = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:>width$}", c, width = widths[i]));
        }
        line
    };
    let hdr: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    s.push_str(&fmt_row(&hdr, &widths));
    s.push('\n');
    s.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    s.push('\n');
    for r in rows {
        s.push_str(&fmt_row(r, &widths));
        s.push('\n');
    }
    s
}
