//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the thin slice of `rand`'s API it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `gen`,
//! `gen_range`, and `gen_bool`. The generator is a SplitMix64 — not the
//! same stream as upstream `StdRng`, which is fine for every caller here
//! (they seed deterministically and assert *properties* of the generated
//! instances, never exact values).

#![warn(missing_docs)]

/// Core pseudo-random source: 64 random bits per call.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, matching the subset of `rand::SeedableRng` the
/// workspace uses.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from an `RngCore` (the `Standard`
/// distribution of real `rand`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<T: Standard, const N: usize> Standard for [T; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        core::array::from_fn(|_| T::sample(rng))
    }
}

/// Ranges a value can be drawn from, mirroring `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value of `T` (the `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u32>(), b.gen::<u32>());
        }
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(-2..=3);
            assert!((-2..=3).contains(&v));
            let u: usize = r.gen_range(0..7);
            assert!(u < 7);
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "got {hits}");
    }
}
