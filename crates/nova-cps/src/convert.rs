//! CPS conversion (§4.1–§4.2).
//!
//! Converts a type-checked Nova program to the CPS IR:
//!
//! * **Record flattening** (§3.1): every tuple/record value becomes a list
//!   of word-sized [`Value`]s; each leaf is an independent variable from
//!   here on.
//! * **Booleans as control flow** (§4.1): conditions compile directly to
//!   [`Term::If`]; a boolean stored in a variable materializes as 0/1.
//! * **SSA by construction** (§4.2): source assignments are eliminated —
//!   control-flow joins (if, while, try) become continuation functions
//!   whose parameters carry the assigned variables.
//! * **Exceptions as continuations** (§3.4): each `handle` arm becomes a
//!   function; `raise` is an [`Term::App`] to it; exceptions passed as
//!   arguments become label-typed parameters.
//! * **Layout code generation** (§3.2): `unpack`/`pack` lower to explicit
//!   shift/mask arithmetic on the packed words. All fields are extracted
//!   eagerly; the optimizer's useless-variable elimination removes the
//!   unused ones (§4.4), so "no machine instructions are generated for
//!   fields ignored by the rest of the program".

use crate::ir::{Cps, CpsFun, FnId, PrimOp, Term, Value, VarId};
use ixp_machine::{AluOp, Cond, MemSpace};
use nova_frontend::ast::{self, Args, Block, Expr, ExprKind, Pattern, Stmt, StmtKind};
use nova_frontend::layout::{self, Layout};
use nova_frontend::typecheck::TypeInfo;
use nova_frontend::types::{FunSig, Type};
use nova_frontend::{Diagnostic, Span};
use std::collections::{HashMap, HashSet};

/// Convert a checked program to CPS. The entry point is `main`; the
/// program terminates with [`Term::Halt`].
///
/// # Errors
///
/// Conversion can still fail on programs the checker admits but the
/// converter cannot compile (e.g. calling a completely dynamic function
/// value); these are reported as diagnostics.
pub fn convert<'a>(program: &'a ast::Program, info: &'a TypeInfo) -> Result<Cps, Diagnostic> {
    let mut cx = Cx {
        info,
        cps: Cps {
            body: Term::Halt,
            next_var: 0,
            next_fn: 0,
        },
        ret: Value::Label(FnId(u32::MAX)), // replaced before use
    };
    let mut env = Env::default();
    // Halt continuation: a function that ignores its arguments and halts.
    let halt_fn = cx.cps.fresh_fn();
    // Top level is a statement sequence whose continuation calls main.
    let body = cx.convert_stmts(
        &mut env,
        &program.items,
        None,
        K::then(move |cx: &mut Cx<'a>, env: &mut Env, _vals| {
            Ok(match env.map.get("main") {
                Some(CVal::Fun { target, sig }) => {
                    // The halt continuation discards main's result words.
                    let n = slots(&sig.result);
                    let params: Vec<VarId> = (0..n).map(|_| cx.cps.fresh_var()).collect();
                    Term::Fix {
                        funs: vec![CpsFun {
                            id: halt_fn,
                            name: "$halt".into(),
                            params,
                            body: Term::Halt,
                        }],
                        body: Box::new(Term::App {
                            f: *target,
                            args: vec![Value::Label(halt_fn)],
                        }),
                    }
                }
                _ => Term::Halt,
            })
        }),
    )?;
    cx.cps.body = body;
    Ok(cx.cps)
}

/// Number of flattened slots a type occupies (functions and exceptions are
/// single label slots; `Never` occupies none).
pub fn slots(ty: &Type) -> usize {
    match ty {
        Type::Word | Type::Bool | Type::Fun(_) | Type::Exn(_) => 1,
        Type::Tuple(ts) => ts.iter().map(slots).sum(),
        Type::Record(fs) => fs.iter().map(|(_, t)| slots(t)).sum(),
        Type::Never => 0,
    }
}

#[derive(Clone, Debug)]
enum CVal {
    /// Flattened data value.
    Flat { ty: Type, vals: Vec<Value> },
    /// Callable value (static label or label-typed parameter).
    Fun { target: Value, sig: FunSig },
    /// Raisable value with its payload field names.
    Exn { target: Value, params: Vec<String> },
}

#[derive(Clone, Default, Debug)]
struct Env {
    map: HashMap<String, CVal>,
}

struct Cx<'a> {
    info: &'a TypeInfo,
    cps: Cps,
    /// The current function's return continuation.
    ret: Value,
}

/// A deferred term builder: given the flattened values of an expression,
/// produce the rest of the program.
type Builder<'a> =
    Box<dyn FnOnce(&mut Cx<'a>, &mut Env, Vec<Value>) -> Result<Term, Diagnostic> + 'a>;

/// What to do with the flattened value of an expression.
enum K<'a> {
    /// The expression is in tail position: pass the value to the current
    /// return continuation.
    Ret,
    /// Continue with the given builder.
    Then(Builder<'a>),
}

impl<'a> K<'a> {
    fn then(
        f: impl FnOnce(&mut Cx<'a>, &mut Env, Vec<Value>) -> Result<Term, Diagnostic> + 'a,
    ) -> K<'a> {
        K::Then(Box::new(f))
    }
}

// Allow `Result<Term, _>` returning builders in `convert` above.
impl<'a> K<'a> {
    fn apply(self, cx: &mut Cx<'a>, env: &mut Env, vals: Vec<Value>) -> Result<Term, Diagnostic> {
        match self {
            K::Ret => Ok(Term::App {
                f: cx.ret,
                args: vals,
            }),
            K::Then(f) => f(cx, env, vals),
        }
    }

    fn is_ret(&self) -> bool {
        matches!(self, K::Ret)
    }
}

/// Names assigned (via `x = e;`) anywhere in a block, not descending into
/// nested function definitions (those have their own scopes).
fn assigned_in_block(b: &Block, out: &mut HashSet<String>) {
    for s in &b.stmts {
        assigned_in_stmt(s, out);
    }
    if let Some(t) = &b.tail {
        assigned_in_expr(t, out);
    }
}

fn assigned_in_stmt(s: &Stmt, out: &mut HashSet<String>) {
    match &s.kind {
        StmtKind::Assign(n, e) => {
            out.insert(n.clone());
            assigned_in_expr(e, out);
        }
        StmtKind::Let(_, _, e) | StmtKind::Const(_, e) | StmtKind::Expr(e) => {
            assigned_in_expr(e, out)
        }
        StmtKind::MemWrite(_, a, v) => {
            assigned_in_expr(a, out);
            assigned_in_expr(v, out);
        }
        StmtKind::While(c, b) => {
            assigned_in_expr(c, out);
            assigned_in_block(b, out);
        }
        StmtKind::Layout(..) | StmtKind::Funs(..) => {}
    }
}

fn assigned_in_expr(e: &Expr, out: &mut HashSet<String>) {
    match &e.kind {
        ExprKind::If(c, t, f) => {
            assigned_in_expr(c, out);
            assigned_in_block(t, out);
            if let Some(f) = f {
                assigned_in_block(f, out);
            }
        }
        ExprKind::Try(b, hs) => {
            assigned_in_block(b, out);
            for h in hs {
                assigned_in_block(&h.body, out);
            }
        }
        ExprKind::BlockExpr(b) => assigned_in_block(b, out),
        ExprKind::Binop(_, a, b) => {
            assigned_in_expr(a, out);
            assigned_in_expr(b, out);
        }
        ExprKind::Unop(_, a)
        | ExprKind::Field(a, _)
        | ExprKind::MemRead(_, a)
        | ExprKind::Unpack(_, a)
        | ExprKind::Pack(_, a) => assigned_in_expr(a, out),
        ExprKind::Tuple(es) | ExprKind::Intrinsic(_, es) => {
            for e in es {
                assigned_in_expr(e, out);
            }
        }
        ExprKind::Record(fs) => {
            for (_, e) in fs {
                assigned_in_expr(e, out);
            }
        }
        ExprKind::Call(_, args) | ExprKind::Raise(_, args) => match args {
            Args::Positional(es) => {
                for e in es {
                    assigned_in_expr(e, out);
                }
            }
            Args::Named(fs) => {
                for (_, e) in fs {
                    assigned_in_expr(e, out);
                }
            }
        },
        ExprKind::Word(_) | ExprKind::Bool(_) | ExprKind::Var(_) => {}
    }
}

impl<'a> Cx<'a> {
    fn ty(&self, e: &Expr) -> &Type {
        self.info.expr.get(&e.id).unwrap_or(&Type::Never)
    }

    fn err(&self, msg: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic::new(msg, span)
    }

    /// Emit `dst = op(a, b)` with local constant folding.
    fn emit_alu(
        &mut self,
        op: AluOp,
        a: Value,
        b: Value,
        body: impl FnOnce(&mut Self, Value) -> Result<Term, Diagnostic>,
    ) -> Result<Term, Diagnostic> {
        // Local folding keeps the layout code generator from flooding the
        // IR with constant arithmetic.
        if let (Value::Const(x), Value::Const(y)) = (a, b) {
            return body(self, Value::Const(op.eval(x, y)));
        }
        // Identities that arise constantly in shift/mask generation.
        match (op, a, b) {
            (AluOp::Shl | AluOp::Shr, x, Value::Const(0)) => return body(self, x),
            (AluOp::Or | AluOp::Xor | AluOp::Add, x, Value::Const(0)) => return body(self, x),
            (AluOp::Or | AluOp::Xor | AluOp::Add, Value::Const(0), y) => return body(self, y),
            (AluOp::And, x, Value::Const(u32::MAX)) => return body(self, x),
            (AluOp::And, Value::Const(u32::MAX), y) => return body(self, y),
            _ => {}
        }
        let dst = self.cps.fresh_var();
        let rest = body(self, Value::Var(dst))?;
        Ok(Term::Let {
            op: PrimOp::Alu(op),
            args: vec![a, b],
            dsts: vec![dst],
            body: Box::new(rest),
        })
    }

    // ---------------- blocks ----------------

    fn convert_block(
        &mut self,
        env: &mut Env,
        block: &'a Block,
        k: K<'a>,
    ) -> Result<Term, Diagnostic> {
        self.convert_stmts(env, &block.stmts, block.tail.as_deref(), k)
    }

    fn convert_stmts(
        &mut self,
        env: &mut Env,
        stmts: &'a [Stmt],
        tail: Option<&'a Expr>,
        k: K<'a>,
    ) -> Result<Term, Diagnostic> {
        let Some((first, rest)) = stmts.split_first() else {
            return match tail {
                Some(e) => self.convert_expr(env, e, k),
                None => k.apply(self, env, vec![]),
            };
        };
        match &first.kind {
            StmtKind::Layout(..) => self.convert_stmts(env, rest, tail, k),
            StmtKind::Const(name, e) => {
                let v =
                    *self.info.const_values.get(&e.id).ok_or_else(|| {
                        self.err("constant value missing from type info", first.span)
                    })?;
                env.map.insert(
                    name.clone(),
                    CVal::Flat {
                        ty: Type::Word,
                        vals: vec![Value::Const(v)],
                    },
                );
                self.convert_stmts(env, rest, tail, k)
            }
            StmtKind::Funs(defs) => {
                let mut funs = Vec::new();
                // Bind all names first (mutual recursion).
                let mut ids = Vec::new();
                for d in defs {
                    let id = self.cps.fresh_fn();
                    let sig = self
                        .info
                        .fun_sigs
                        .get(&(d.name.clone(), d.span.lo))
                        .cloned()
                        .ok_or_else(|| self.err("missing signature", d.span))?;
                    env.map.insert(
                        d.name.clone(),
                        CVal::Fun {
                            target: Value::Label(id),
                            sig: sig.clone(),
                        },
                    );
                    ids.push((id, sig));
                }
                for (d, (id, sig)) in defs.iter().zip(&ids) {
                    let mut fenv = env.clone();
                    let mut params = Vec::new();
                    for (pname, pty) in &sig.params {
                        let cval = self.bind_param(&mut fenv, &mut params, pty);
                        fenv.map.insert(pname.clone(), cval);
                    }
                    let kret = self.cps.fresh_var();
                    params.push(kret);
                    let saved_ret = self.ret;
                    self.ret = Value::Var(kret);
                    let body = self.convert_block(&mut fenv, &d.body, K::Ret)?;
                    self.ret = saved_ret;
                    funs.push(CpsFun {
                        id: *id,
                        name: d.name.clone(),
                        params,
                        body,
                    });
                }
                let rest_term = self.convert_stmts(env, rest, tail, k)?;
                Ok(Term::Fix {
                    funs,
                    body: Box::new(rest_term),
                })
            }
            StmtKind::Let(pat, _ann, value) => {
                // Aggregate memory reads get their arity from the checker.
                if let ExprKind::MemRead(space, addr) = &value.kind {
                    let n = *self
                        .info
                        .read_words
                        .get(&value.id)
                        .ok_or_else(|| self.err("memory read arity missing", value.span))?
                        as usize;
                    let space = mem_space(*space);
                    let pat = pat.clone();
                    return self.convert_expr(
                        env,
                        addr,
                        K::then(move |cx, env, addr_vals| {
                            let addr = addr_vals[0];
                            let dsts: Vec<VarId> = (0..n).map(|_| cx.cps.fresh_var()).collect();
                            let vals: Vec<Value> = dsts.iter().map(|d| Value::Var(*d)).collect();
                            cx.bind_pattern(env, &pat, Type::words(n as u32), vals)?;
                            let body = cx.convert_stmts(env, rest, tail, k)?;
                            Ok(Term::MemRead {
                                space,
                                addr,
                                dsts,
                                body: Box::new(body),
                            })
                        }),
                    );
                }
                let vty = self.ty(value).clone();
                let pat = pat.clone();
                self.convert_expr(
                    env,
                    value,
                    K::then(move |cx, env, vals| {
                        cx.bind_pattern(env, &pat, vty, vals)?;
                        cx.convert_stmts(env, rest, tail, k)
                    }),
                )
            }
            StmtKind::Assign(name, value) => {
                let vty = self.ty(value).clone();
                let name = name.clone();
                self.convert_expr(
                    env,
                    value,
                    K::then(move |cx, env, vals| {
                        env.map.insert(name, CVal::Flat { ty: vty, vals });
                        cx.convert_stmts(env, rest, tail, k)
                    }),
                )
            }
            StmtKind::MemWrite(space, addr, value) => {
                let space = mem_space(*space);
                self.convert_expr(
                    env,
                    addr,
                    K::then(move |cx, env, addr_vals| {
                        let addr = addr_vals[0];
                        cx.convert_expr(
                            env,
                            value,
                            K::then(move |cx, env, srcs| {
                                let body = cx.convert_stmts(env, rest, tail, k)?;
                                Ok(Term::MemWrite {
                                    space,
                                    addr,
                                    srcs,
                                    body: Box::new(body),
                                })
                            }),
                        )
                    }),
                )
            }
            StmtKind::Expr(e) => self.convert_expr(
                env,
                e,
                K::then(move |cx, env, _vals| cx.convert_stmts(env, rest, tail, k)),
            ),
            StmtKind::While(cond, body) => {
                // Loop header continuation carries the assigned variables.
                let mut assigned = HashSet::new();
                assigned_in_block(body, &mut assigned);
                assigned_in_expr(cond, &mut assigned);
                let carried = self.carried_vars(env, &assigned);
                let loop_fn = self.cps.fresh_fn();
                let mut params = Vec::new();
                let mut loop_env = env.clone();
                for (name, ty) in &carried {
                    let n = slots(ty);
                    let vars: Vec<VarId> = (0..n).map(|_| self.cps.fresh_var()).collect();
                    loop_env.map.insert(
                        name.clone(),
                        CVal::Flat {
                            ty: ty.clone(),
                            vals: vars.iter().map(|v| Value::Var(*v)).collect(),
                        },
                    );
                    params.extend(vars);
                }
                let init_args = self.gather_vars(env, &carried)?;
                // Inside the loop: cond true -> body then jump back; false
                // -> rest of the enclosing block.
                let carried2 = carried.clone();
                let mut body_env = loop_env.clone();
                let body_term = {
                    let then_t = {
                        let carried3 = carried2.clone();
                        self.convert_block(
                            &mut body_env,
                            body,
                            K::then(move |cx, env, _vals| {
                                let args = cx.gather_vars(env, &carried3)?;
                                Ok(Term::App {
                                    f: Value::Label(loop_fn),
                                    args,
                                })
                            }),
                        )?
                    };
                    let mut exit_env = loop_env.clone();
                    let else_t = self.convert_stmts(&mut exit_env, rest, tail, k)?;
                    self.convert_cond_term(&mut loop_env, cond, then_t, else_t)?
                };
                Ok(Term::Fix {
                    funs: vec![CpsFun {
                        id: loop_fn,
                        name: "$loop".into(),
                        params,
                        body: body_term,
                    }],
                    body: Box::new(Term::App {
                        f: Value::Label(loop_fn),
                        args: init_args,
                    }),
                })
            }
        }
    }

    /// Filter assigned names down to those bound as data in the env, with
    /// their types, in a deterministic order.
    fn carried_vars(&self, env: &Env, assigned: &HashSet<String>) -> Vec<(String, Type)> {
        let mut v: Vec<(String, Type)> = assigned
            .iter()
            .filter_map(|n| match env.map.get(n) {
                Some(CVal::Flat { ty, .. }) => Some((n.clone(), ty.clone())),
                _ => None,
            })
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    fn gather_vars(&self, env: &Env, carried: &[(String, Type)]) -> Result<Vec<Value>, Diagnostic> {
        let mut out = Vec::new();
        for (name, _) in carried {
            match env.map.get(name) {
                Some(CVal::Flat { vals, .. }) => out.extend(vals.iter().copied()),
                _ => {
                    return Err(Diagnostic::new(
                        format!("internal: carried variable '{name}' lost"),
                        Span::default(),
                    ))
                }
            }
        }
        Ok(out)
    }

    fn bind_param(&mut self, _env: &mut Env, params: &mut Vec<VarId>, ty: &Type) -> CVal {
        match ty {
            Type::Fun(sig) => {
                let p = self.cps.fresh_var();
                params.push(p);
                CVal::Fun {
                    target: Value::Var(p),
                    sig: (**sig).clone(),
                }
            }
            Type::Exn(payload) => {
                let p = self.cps.fresh_var();
                params.push(p);
                CVal::Exn {
                    target: Value::Var(p),
                    params: payload.iter().map(|(n, _)| n.clone()).collect(),
                }
            }
            data => {
                let n = slots(data);
                let vars: Vec<VarId> = (0..n).map(|_| self.cps.fresh_var()).collect();
                params.extend(vars.iter().copied());
                CVal::Flat {
                    ty: data.clone(),
                    vals: vars.iter().map(|v| Value::Var(*v)).collect(),
                }
            }
        }
    }

    fn bind_pattern(
        &mut self,
        env: &mut Env,
        pat: &Pattern,
        ty: Type,
        vals: Vec<Value>,
    ) -> Result<(), Diagnostic> {
        match pat {
            Pattern::Wild => Ok(()),
            Pattern::Var(name) => {
                let cval = match &ty {
                    Type::Fun(sig) => CVal::Fun {
                        target: vals[0],
                        sig: (**sig).clone(),
                    },
                    Type::Exn(payload) => CVal::Exn {
                        target: vals[0],
                        params: payload.iter().map(|(n, _)| n.clone()).collect(),
                    },
                    _ => CVal::Flat { ty, vals },
                };
                env.map.insert(name.clone(), cval);
                Ok(())
            }
            Pattern::Tuple(names) => {
                let parts = match &ty {
                    Type::Tuple(ts) => ts.clone(),
                    _ => {
                        return Err(Diagnostic::new(
                            "internal: tuple pattern on non-tuple",
                            Span::default(),
                        ))
                    }
                };
                let mut off = 0;
                for (name, pty) in names.iter().zip(parts) {
                    let n = slots(&pty);
                    let sub = vals[off..off + n].to_vec();
                    off += n;
                    if name != "_" {
                        self.bind_pattern(env, &Pattern::Var(name.clone()), pty, sub)?;
                    }
                }
                Ok(())
            }
        }
    }

    // ---------------- expressions ----------------

    fn convert_expr(&mut self, env: &mut Env, e: &'a Expr, k: K<'a>) -> Result<Term, Diagnostic> {
        match &e.kind {
            ExprKind::Word(v) => k.apply(self, env, vec![Value::Const(*v)]),
            ExprKind::Bool(b) => k.apply(self, env, vec![Value::Const(*b as u32)]),
            ExprKind::Var(name) => {
                let cval = env
                    .map
                    .get(name)
                    .cloned()
                    .ok_or_else(|| self.err(format!("internal: unbound '{name}'"), e.span))?;
                let vals = match cval {
                    CVal::Flat { vals, .. } => vals,
                    CVal::Fun { target, .. } | CVal::Exn { target, .. } => vec![target],
                };
                k.apply(self, env, vals)
            }
            ExprKind::Binop(op, a, b) => self.convert_binop(env, e, *op, a, b, k),
            ExprKind::Unop(op, a) => match op {
                ast::UnOp::Complement => self.convert_expr(
                    env,
                    a,
                    K::then(move |cx, env, vals| {
                        cx.emit_alu(AluOp::Xor, vals[0], Value::Const(u32::MAX), |cx, v| {
                            k.apply(cx, env, vec![v])
                        })
                    }),
                ),
                ast::UnOp::Neg => self.convert_expr(
                    env,
                    a,
                    K::then(move |cx, env, vals| {
                        cx.emit_alu(AluOp::Sub, Value::Const(0), vals[0], |cx, v| {
                            k.apply(cx, env, vec![v])
                        })
                    }),
                ),
                ast::UnOp::Not => self.materialize_bool(env, e, k),
            },
            ExprKind::Tuple(es) => self.convert_list(env, es, Vec::new(), k),
            ExprKind::Record(fs) => {
                let exprs: Vec<&Expr> = fs.iter().map(|(_, e)| e).collect();
                self.convert_list_refs(env, exprs, Vec::new(), k)
            }
            ExprKind::Field(base, name) => {
                let bty = self.ty(base).clone();
                let name = name.clone();
                self.convert_expr(
                    env,
                    base,
                    K::then(move |cx, env, vals| {
                        let (off, n) = field_slot_range(&bty, &name).ok_or_else(|| {
                            cx.err(format!("internal: no field '{name}'"), Span::default())
                        })?;
                        k.apply(cx, env, vals[off..off + n].to_vec())
                    }),
                )
            }
            ExprKind::If(..) => self.convert_if(env, e, k),
            ExprKind::Call(name, args) => self.convert_call(env, e, name, args, k),
            ExprKind::MemRead(..) => Err(self.err(
                "internal: memory read outside let (checker should reject)",
                e.span,
            )),
            ExprKind::Unpack(_, arg) => {
                let l = self
                    .info
                    .layouts
                    .get(&e.id)
                    .cloned()
                    .ok_or_else(|| self.err("internal: unresolved unpack layout", e.span))?;
                self.convert_expr(
                    env,
                    arg,
                    K::then(move |cx, env, words| cx.emit_unpack(env, &l, &words, k)),
                )
            }
            ExprKind::Pack(_, arg) => {
                let l = self
                    .info
                    .layouts
                    .get(&e.id)
                    .cloned()
                    .ok_or_else(|| self.err("internal: unresolved pack layout", e.span))?;
                let rty = self.ty(arg).clone();
                self.convert_expr(
                    env,
                    arg,
                    K::then(move |cx, env, vals| cx.emit_pack(env, &l, &rty, &vals, k)),
                )
            }
            ExprKind::Raise(name, args) => {
                let cval =
                    env.map.get(name).cloned().ok_or_else(|| {
                        self.err(format!("internal: unbound exn '{name}'"), e.span)
                    })?;
                let CVal::Exn { target, params } = cval else {
                    return Err(self.err(format!("internal: '{name}' not an exn"), e.span));
                };
                self.convert_args(env, args, &params, move |_cx, _env, argv| {
                    Ok(Term::App {
                        f: target,
                        args: argv,
                    })
                })
            }
            ExprKind::Try(body, handlers) => self.convert_try(env, e, body, handlers, k),
            ExprKind::BlockExpr(b) => {
                let mut benv = env.clone();
                let t = self.convert_block(&mut benv, b, k)?;
                // Assignments to outer variables propagate out of plain
                // blocks (the block clone only isolates new bindings).
                let mut assigned = HashSet::new();
                assigned_in_block(b, &mut assigned);
                for n in assigned {
                    if let Some(slot) = env.map.get_mut(&n) {
                        if let Some(v) = benv.map.get(&n) {
                            *slot = v.clone();
                        }
                    }
                }
                Ok(t)
            }
            ExprKind::Intrinsic(intr, args) => self.convert_intrinsic(env, *intr, args, k),
        }
    }

    fn convert_list(
        &mut self,
        env: &mut Env,
        es: &'a [Expr],
        mut acc: Vec<Value>,
        k: K<'a>,
    ) -> Result<Term, Diagnostic> {
        let Some((first, rest)) = es.split_first() else {
            return k.apply(self, env, acc);
        };
        self.convert_expr(
            env,
            first,
            K::then(move |cx, env, vals| {
                acc.extend(vals);
                cx.convert_list(env, rest, acc, k)
            }),
        )
    }

    fn convert_list_refs(
        &mut self,
        env: &mut Env,
        mut es: Vec<&'a Expr>,
        mut acc: Vec<Value>,
        k: K<'a>,
    ) -> Result<Term, Diagnostic> {
        if es.is_empty() {
            return k.apply(self, env, acc);
        }
        let first = es.remove(0);
        self.convert_expr(
            env,
            first,
            K::then(move |cx, env, vals| {
                acc.extend(vals);
                cx.convert_list_refs(env, es, acc, k)
            }),
        )
    }

    fn convert_binop(
        &mut self,
        env: &mut Env,
        whole: &'a Expr,
        op: ast::BinOp,
        a: &'a Expr,
        b: &'a Expr,
        k: K<'a>,
    ) -> Result<Term, Diagnostic> {
        use ast::BinOp as B;
        let alu = match op {
            B::Add => Some(AluOp::Add),
            B::Sub => Some(AluOp::Sub),
            B::And => Some(AluOp::And),
            B::Or => Some(AluOp::Or),
            B::Xor => Some(AluOp::Xor),
            B::Shl => Some(AluOp::Shl),
            B::Shr => Some(AluOp::Shr),
            _ => None,
        };
        if let Some(alu) = alu {
            return self.convert_expr(
                env,
                a,
                K::then(move |cx, env, av| {
                    cx.convert_expr(
                        env,
                        b,
                        K::then(move |cx, env, bv| {
                            cx.emit_alu(alu, av[0], bv[0], |cx, v| k.apply(cx, env, vec![v]))
                        }),
                    )
                }),
            );
        }
        // Comparison / logical operators produce a bool value here; direct
        // use in conditions is fused by `convert_cond_term`.
        self.materialize_bool(env, whole, k)
    }

    /// Build a 0/1 word for a boolean expression via a join continuation.
    fn materialize_bool(
        &mut self,
        env: &mut Env,
        e: &'a Expr,
        k: K<'a>,
    ) -> Result<Term, Diagnostic> {
        let join = self.cps.fresh_fn();
        let p = self.cps.fresh_var();
        let body = k.apply(self, env, vec![Value::Var(p)])?;
        let jf = CpsFun {
            id: join,
            name: "$bool".into(),
            params: vec![p],
            body,
        };
        let t = Term::App {
            f: Value::Label(join),
            args: vec![Value::Const(1)],
        };
        let f = Term::App {
            f: Value::Label(join),
            args: vec![Value::Const(0)],
        };
        let cond = self.convert_cond_term(env, e, t, f)?;
        Ok(Term::Fix {
            funs: vec![jf],
            body: Box::new(cond),
        })
    }

    /// Convert a boolean expression directly into branching control flow
    /// (§4.1: booleans are encoded as control flow).
    fn convert_cond_term(
        &mut self,
        env: &mut Env,
        e: &'a Expr,
        t: Term,
        f: Term,
    ) -> Result<Term, Diagnostic> {
        use ast::BinOp as B;
        match &e.kind {
            ExprKind::Bool(true) => Ok(t),
            ExprKind::Bool(false) => Ok(f),
            ExprKind::Unop(ast::UnOp::Not, inner) => self.convert_cond_term(env, inner, f, t),
            ExprKind::Binop(op, a, b) if op.is_comparison() => {
                let cmp = match op {
                    B::Eq => Cond::Eq,
                    B::Ne => Cond::Ne,
                    B::Lt => Cond::Lt,
                    B::Le => Cond::Le,
                    B::Gt => Cond::Gt,
                    B::Ge => Cond::Ge,
                    _ => unreachable!(),
                };
                self.convert_expr(
                    env,
                    a,
                    K::then(move |cx, env, av| {
                        cx.convert_expr(
                            env,
                            b,
                            K::then(move |_cx, _env, bv| {
                                // Fold constant comparisons.
                                if let (Value::Const(x), Value::Const(y)) = (av[0], bv[0]) {
                                    return Ok(if cmp.eval(x, y) { t } else { f });
                                }
                                Ok(Term::If {
                                    cmp,
                                    a: av[0],
                                    b: bv[0],
                                    t: Box::new(t),
                                    f: Box::new(f),
                                })
                            }),
                        )
                    }),
                )
            }
            ExprKind::Binop(B::AndAlso, a, b) => {
                // a && b: if a then (if b then t else f') else f''. The two
                // false-exits share code via a join function.
                let (fj, fterm) = self.wrap_join(f);
                let inner = self.convert_cond_term(env, b, t, fj.clone())?;
                let whole = self.convert_cond_term(env, a, inner, fj)?;
                Ok(attach_join(fterm, whole))
            }
            ExprKind::Binop(B::OrElse, a, b) => {
                let (tj, tterm) = self.wrap_join(t);
                let inner = self.convert_cond_term(env, b, tj.clone(), f)?;
                let whole = self.convert_cond_term(env, a, tj, inner)?;
                Ok(attach_join(tterm, whole))
            }
            // General boolean value: compare against zero.
            _ => self.convert_expr(
                env,
                e,
                K::then(move |_cx, _env, vals| {
                    if let Value::Const(c) = vals[0] {
                        return Ok(if c != 0 { t } else { f });
                    }
                    Ok(Term::If {
                        cmp: Cond::Ne,
                        a: vals[0],
                        b: Value::Const(0),
                        t: Box::new(t),
                        f: Box::new(f),
                    })
                }),
            ),
        }
    }

    /// Wrap a term in a zero-argument join function so it can be jumped to
    /// from two places; returns the jump term and the definition.
    fn wrap_join(&mut self, body: Term) -> (Term, Option<CpsFun>) {
        // Trivial targets are cheap to duplicate.
        if matches!(body, Term::App { .. } | Term::Halt) {
            return (body, None);
        }
        let id = self.cps.fresh_fn();
        (
            Term::App {
                f: Value::Label(id),
                args: vec![],
            },
            Some(CpsFun {
                id,
                name: "$join".into(),
                params: vec![],
                body,
            }),
        )
    }

    fn convert_if(&mut self, env: &mut Env, e: &'a Expr, k: K<'a>) -> Result<Term, Diagnostic> {
        let ExprKind::If(cond, then_b, else_b) = &e.kind else {
            unreachable!()
        };
        let result_ty = self.ty(e).clone();
        let n = slots(&result_ty);
        // Assigned variables that must flow through the join.
        let mut assigned = HashSet::new();
        assigned_in_block(then_b, &mut assigned);
        if let Some(eb) = else_b {
            assigned_in_block(eb, &mut assigned);
        }
        let carried = self.carried_vars(env, &assigned);

        if k.is_ret() {
            // Tail position: both branches return; no join needed.
            let mut tenv = env.clone();
            let t = self.convert_block(&mut tenv, then_b, K::Ret)?;
            let f = match else_b {
                Some(eb) => {
                    let mut fenv = env.clone();
                    self.convert_block(&mut fenv, eb, K::Ret)?
                }
                None => Term::App {
                    f: self.ret,
                    args: vec![],
                },
            };
            return self.convert_cond_term(env, cond, t, f);
        }

        // Join continuation: result slots then carried variables. Snapshot
        // the entry environment first — branches must see entry values,
        // while the continuation sees the join's parameters.
        let entry_env = env.clone();
        let join = self.cps.fresh_fn();
        let mut params: Vec<VarId> = (0..n).map(|_| self.cps.fresh_var()).collect();
        let result_vals: Vec<Value> = params.iter().map(|p| Value::Var(*p)).collect();
        let mut post_env = env.clone();
        for (name, ty) in &carried {
            let m = slots(ty);
            let vars: Vec<VarId> = (0..m).map(|_| self.cps.fresh_var()).collect();
            post_env.map.insert(
                name.clone(),
                CVal::Flat {
                    ty: ty.clone(),
                    vals: vars.iter().map(|v| Value::Var(*v)).collect(),
                },
            );
            params.extend(vars);
        }
        let join_body = k.apply(self, &mut post_env, result_vals)?;
        // Propagate post-if bindings for carried variables to the caller's
        // env (the continuation has already been built against post_env).
        for (name, _) in &carried {
            if let Some(v) = post_env.map.get(name) {
                env.map.insert(name.clone(), v.clone());
            }
        }
        let jfun = CpsFun {
            id: join,
            name: "$ifjoin".into(),
            params,
            body: join_body,
        };

        let carried_t = carried.clone();
        let mut tenv = entry_env.clone();
        let t = self.convert_block(
            &mut tenv,
            then_b,
            K::then(move |cx, env, mut vals| {
                vals.extend(cx.gather_vars(env, &carried_t)?);
                Ok(Term::App {
                    f: Value::Label(join),
                    args: vals,
                })
            }),
        )?;
        let f = match else_b {
            Some(eb) => {
                let carried_f = carried.clone();
                let mut fenv = entry_env.clone();
                self.convert_block(
                    &mut fenv,
                    eb,
                    K::then(move |cx, env, mut vals| {
                        vals.extend(cx.gather_vars(env, &carried_f)?);
                        Ok(Term::App {
                            f: Value::Label(join),
                            args: vals,
                        })
                    }),
                )?
            }
            None => {
                let mut vals: Vec<Value> = Vec::new();
                vals.extend(self.gather_vars(&entry_env, &carried)?);
                Term::App {
                    f: Value::Label(join),
                    args: vals,
                }
            }
        };
        let mut cenv = entry_env.clone();
        let cond_term = self.convert_cond_term(&mut cenv, cond, t, f)?;
        Ok(Term::Fix {
            funs: vec![jfun],
            body: Box::new(cond_term),
        })
    }

    fn convert_call(
        &mut self,
        env: &mut Env,
        e: &'a Expr,
        name: &str,
        args: &'a Args,
        k: K<'a>,
    ) -> Result<Term, Diagnostic> {
        let cval = env
            .map
            .get(name)
            .cloned()
            .ok_or_else(|| self.err(format!("internal: unbound function '{name}'"), e.span))?;
        let CVal::Fun { target, sig } = cval else {
            return Err(self.err(format!("internal: '{name}' is not callable"), e.span));
        };
        let param_names: Vec<String> = sig.params.iter().map(|(n, _)| n.clone()).collect();
        let result_slots = slots(&sig.result);
        let never_returns = matches!(sig.result, Type::Never);
        self.convert_args(env, args, &param_names, move |cx, env, mut argv| {
            match k {
                // A call that never returns needs no fresh continuation: any
                // value will do, and the code after the call is unreachable.
                // Passing the current return keeps every label static.
                _ if never_returns => {
                    argv.push(cx.ret);
                    Ok(Term::App {
                        f: target,
                        args: argv,
                    })
                }
                K::Ret => {
                    argv.push(cx.ret);
                    Ok(Term::App {
                        f: target,
                        args: argv,
                    })
                }
                K::Then(f) => {
                    let join = cx.cps.fresh_fn();
                    let params: Vec<VarId> =
                        (0..result_slots).map(|_| cx.cps.fresh_var()).collect();
                    let vals: Vec<Value> = params.iter().map(|p| Value::Var(*p)).collect();
                    let body = f(cx, env, vals)?;
                    argv.push(Value::Label(join));
                    Ok(Term::Fix {
                        funs: vec![CpsFun {
                            id: join,
                            name: "$ret".into(),
                            params,
                            body,
                        }],
                        body: Box::new(Term::App {
                            f: target,
                            args: argv,
                        }),
                    })
                }
            }
        })
    }

    /// Convert call/raise arguments into a flat value list ordered by the
    /// callee's parameters.
    fn convert_args(
        &mut self,
        env: &mut Env,
        args: &'a Args,
        param_names: &[String],
        done: impl FnOnce(&mut Self, &mut Env, Vec<Value>) -> Result<Term, Diagnostic> + 'a,
    ) -> Result<Term, Diagnostic> {
        let ordered: Vec<&'a Expr> = match args {
            Args::Positional(es) => es.iter().collect(),
            Args::Named(fs) => {
                let mut v = Vec::new();
                for pname in param_names {
                    let a = fs
                        .iter()
                        .find(|(n, _)| n == pname)
                        .map(|(_, e)| e)
                        .ok_or_else(|| {
                            Diagnostic::new(
                                format!("internal: missing argument '{pname}'"),
                                Span::default(),
                            )
                        })?;
                    v.push(a);
                }
                v
            }
        };
        self.convert_list_refs(
            env,
            ordered,
            Vec::new(),
            K::Then(Box::new(move |cx, env, vals| done(cx, env, vals))),
        )
    }

    fn convert_try(
        &mut self,
        env: &mut Env,
        e: &'a Expr,
        body: &'a Block,
        handlers: &'a [ast::Handler],
        k: K<'a>,
    ) -> Result<Term, Diagnostic> {
        let result_ty = self.ty(e).clone();
        let n = slots(&result_ty);
        // Continuation for the value of the whole try.
        let (kjump, kdef): (JumpTo, Option<CpsFun>) = match k {
            K::Ret => (JumpTo::Ret, None),
            K::Then(f) => {
                let join = self.cps.fresh_fn();
                let params: Vec<VarId> = (0..n).map(|_| self.cps.fresh_var()).collect();
                let vals: Vec<Value> = params.iter().map(|p| Value::Var(*p)).collect();
                let body = f(self, env, vals)?;
                (
                    JumpTo::Label(join),
                    Some(CpsFun {
                        id: join,
                        name: "$tryjoin".into(),
                        params,
                        body,
                    }),
                )
            }
        };
        let mut hfuns = Vec::new();
        let mut body_env = env.clone();
        for h in handlers {
            let hid = self.cps.fresh_fn();
            let mut henv = env.clone();
            let params: Vec<VarId> = h.params.iter().map(|_| self.cps.fresh_var()).collect();
            for (pname, pvar) in h.params.iter().zip(&params) {
                henv.map.insert(
                    pname.clone(),
                    CVal::Flat {
                        ty: Type::Word,
                        vals: vec![Value::Var(*pvar)],
                    },
                );
            }
            let kj = kjump;
            let hbody = self.convert_block(
                &mut henv,
                &h.body,
                K::then(move |cx, _env, vals| Ok(kj.jump(cx, vals))),
            )?;
            hfuns.push(CpsFun {
                id: hid,
                name: format!("$handle_{}", h.name),
                params,
                body: hbody,
            });
            let payload_names: Vec<String> = h
                .params
                .iter()
                .enumerate()
                .map(|(i, p)| if h.named { p.clone() } else { i.to_string() })
                .collect();
            body_env.map.insert(
                h.name.clone(),
                CVal::Exn {
                    target: Value::Label(hid),
                    params: payload_names,
                },
            );
        }
        let kj = kjump;
        let body_term = self.convert_block(
            &mut body_env,
            body,
            K::then(move |cx, _env, vals| Ok(kj.jump(cx, vals))),
        )?;
        let mut funs = hfuns;
        if let Some(j) = kdef {
            funs.push(j);
        }
        Ok(Term::Fix {
            funs,
            body: Box::new(body_term),
        })
    }

    fn convert_intrinsic(
        &mut self,
        env: &mut Env,
        intr: ast::Intrinsic,
        args: &'a [Expr],
        k: K<'a>,
    ) -> Result<Term, Diagnostic> {
        use ast::Intrinsic as I;
        self.convert_list(
            env,
            args,
            Vec::new(),
            K::then(move |cx, env, argv| {
                let (op, n_out) = match intr {
                    I::Hash => (PrimOp::Hash, 1),
                    I::BitTestSet => (PrimOp::BitTestSet, 1),
                    I::CsrRead => (PrimOp::CsrRead, 1),
                    I::CsrWrite => (PrimOp::CsrWrite, 0),
                    I::RxPacket => (PrimOp::RxPacket, 2),
                    I::TxPacket => (PrimOp::TxPacket, 0),
                    I::CtxSwap => (PrimOp::CtxSwap, 0),
                };
                let dsts: Vec<VarId> = (0..n_out).map(|_| cx.cps.fresh_var()).collect();
                let vals: Vec<Value> = dsts.iter().map(|d| Value::Var(*d)).collect();
                let body = k.apply(cx, env, vals)?;
                Ok(Term::Let {
                    op,
                    args: argv,
                    dsts,
                    body: Box::new(body),
                })
            }),
        )
    }

    // ---------------- layout codegen ----------------

    /// Generate extraction code for every leaf field of `l` (record
    /// order), calling `k` with the flattened unpacked record.
    fn emit_unpack(
        &mut self,
        env: &mut Env,
        l: &Layout,
        words: &[Value],
        k: K<'a>,
    ) -> Result<Term, Diagnostic> {
        let mut leaves: Vec<(u32, u32)> = Vec::new(); // (offset, width) in record order
        collect_unpack_leaves(l, &mut leaves);
        self.emit_extracts(env, words.to_vec(), leaves, Vec::new(), k)
    }

    fn emit_extracts(
        &mut self,
        env: &mut Env,
        words: Vec<Value>,
        mut leaves: Vec<(u32, u32)>,
        mut acc: Vec<Value>,
        k: K<'a>,
    ) -> Result<Term, Diagnostic> {
        if leaves.is_empty() {
            return k.apply(self, env, acc);
        }
        let (offset, width) = leaves.remove(0);
        let words2 = words.clone();
        self.emit_extract(
            words,
            offset,
            width,
            move |cx, env2: &mut Env, v| {
                acc.push(v);
                cx.emit_extracts(env2, words2, leaves, acc, k)
            },
            env,
        )
    }

    /// Extract one field from packed words: shift/mask per §3.2.
    fn emit_extract(
        &mut self,
        words: Vec<Value>,
        offset: u32,
        width: u32,
        done: impl FnOnce(&mut Self, &mut Env, Value) -> Result<Term, Diagnostic>,
        env: &mut Env,
    ) -> Result<Term, Diagnostic> {
        let pieces = layout::field_pieces(offset, width);
        match pieces.as_slice() {
            [p] => {
                let w = words[p.word as usize];
                // value = (w >> shift) & mask, with the mask elided when
                // the shift already strips the high bits.
                self.emit_alu(AluOp::Shr, w, Value::Const(p.shift), |cx, shifted| {
                    if p.shift + p.bits == 32 {
                        done(cx, env, shifted)
                    } else {
                        cx.emit_alu(
                            AluOp::And,
                            shifted,
                            Value::Const(layout::mask(p.bits)),
                            |cx, v| done(cx, env, v),
                        )
                    }
                })
            }
            [hi, lo] => {
                let (hi, lo) = (*hi, *lo);
                let whi = words[hi.word as usize];
                let wlo = words[lo.word as usize];
                // hi piece sits at the bottom of its word (shift 0).
                self.emit_alu(
                    AluOp::And,
                    whi,
                    Value::Const(layout::mask(hi.bits)),
                    |cx, hv| {
                        cx.emit_alu(AluOp::Shl, hv, Value::Const(lo.bits), |cx, hs| {
                            cx.emit_alu(AluOp::Shr, wlo, Value::Const(lo.shift), |cx, lv| {
                                // After Shr by lo.shift = 32-lo.bits the high
                                // bits are clear; OR the halves.
                                cx.emit_alu(AluOp::Or, hs, lv, |cx, v| done(cx, env, v))
                            })
                        })
                    },
                )
            }
            _ => unreachable!("fields span at most two words"),
        }
    }

    /// Generate packing code: build each output word by depositing field
    /// pieces, calling `k` with the packed words.
    fn emit_pack(
        &mut self,
        env: &mut Env,
        l: &Layout,
        rec_ty: &Type,
        rec_vals: &[Value],
        k: K<'a>,
    ) -> Result<Term, Diagnostic> {
        // Gather (offset, width, value) for every packed leaf.
        let mut deposits: Vec<(u32, u32, Value)> = Vec::new();
        collect_pack_deposits(l, rec_ty, rec_vals, &mut deposits)
            .map_err(|m| Diagnostic::new(m, Span::default()))?;
        let nwords = l.words();
        // Per output word: list of (piece, source value, remaining bits).
        let mut per_word: Vec<Vec<(layout::FieldPiece, Value, u32)>> =
            vec![Vec::new(); nwords as usize];
        for (offset, width, v) in &deposits {
            let mut remaining = *width;
            for p in layout::field_pieces(*offset, *width) {
                remaining -= p.bits;
                per_word[p.word as usize].push((p, *v, remaining));
            }
        }
        self.emit_pack_words(env, per_word, 0, Vec::new(), k)
    }

    fn emit_pack_words(
        &mut self,
        env: &mut Env,
        per_word: Vec<Vec<(layout::FieldPiece, Value, u32)>>,
        idx: usize,
        mut acc: Vec<Value>,
        k: K<'a>,
    ) -> Result<Term, Diagnostic> {
        if idx == per_word.len() {
            return k.apply(self, env, acc);
        }
        let pieces = per_word[idx].clone();
        self.emit_pack_word(env, pieces, Value::Const(0), move |cx, env2, word| {
            acc.push(word);
            cx.emit_pack_words(env2, per_word, idx + 1, acc, k)
        })
    }

    fn emit_pack_word(
        &mut self,
        env: &mut Env,
        mut pieces: Vec<(layout::FieldPiece, Value, u32)>,
        acc: Value,
        done: impl FnOnce(&mut Self, &mut Env, Value) -> Result<Term, Diagnostic> + 'a,
    ) -> Result<Term, Diagnostic> {
        if pieces.is_empty() {
            return done(self, env, acc);
        }
        let (p, v, remaining) = pieces.remove(0);
        // piece = ((v >> remaining) & mask(bits)) << shift, OR'd into acc.
        self.emit_alu(AluOp::Shr, v, Value::Const(remaining), move |cx, v1| {
            let need_mask = p.bits < 32;
            let step2 = move |cx: &mut Self, v2: Value| {
                cx.emit_alu(AluOp::Shl, v2, Value::Const(p.shift), move |cx, v3| {
                    cx.emit_alu(AluOp::Or, acc, v3, move |cx, v4| {
                        cx.emit_pack_word(env, pieces, v4, done)
                    })
                })
            };
            if need_mask {
                cx.emit_alu(AluOp::And, v1, Value::Const(layout::mask(p.bits)), step2)
            } else {
                step2(cx, v1)
            }
        })
    }
}

/// Where the value of a `try` goes.
#[derive(Clone, Copy)]
enum JumpTo {
    Ret,
    Label(FnId),
}

impl JumpTo {
    fn jump(self, cx: &mut Cx<'_>, vals: Vec<Value>) -> Term {
        match self {
            JumpTo::Ret => Term::App {
                f: cx.ret,
                args: vals,
            },
            JumpTo::Label(l) => Term::App {
                f: Value::Label(l),
                args: vals,
            },
        }
    }
}

fn attach_join(def: Option<CpsFun>, body: Term) -> Term {
    match def {
        Some(f) => Term::Fix {
            funs: vec![f],
            body: Box::new(body),
        },
        None => body,
    }
}

fn mem_space(s: ast::MemSpace) -> MemSpace {
    match s {
        ast::MemSpace::Sram => MemSpace::Sram,
        ast::MemSpace::Sdram => MemSpace::Sdram,
        ast::MemSpace::Scratch => MemSpace::Scratch,
    }
}

/// Slot offset and width of a named field within a record type.
fn field_slot_range(ty: &Type, name: &str) -> Option<(usize, usize)> {
    match ty {
        Type::Record(fs) => {
            let mut off = 0;
            for (n, t) in fs {
                let w = slots(t);
                if n == name {
                    return Some((off, w));
                }
                off += w;
            }
            None
        }
        _ => None,
    }
}

/// Leaves of a layout in unpacked-record order (all overlay alternatives).
fn collect_unpack_leaves(l: &Layout, out: &mut Vec<(u32, u32)>) {
    use nova_frontend::layout::Item;
    for item in &l.items {
        match item {
            Item::Bits { offset, width, .. } => out.push((*offset, *width)),
            Item::Sub { layout, .. } => collect_unpack_leaves(layout, out),
            Item::Overlay { alts, .. } => {
                for (_, al) in alts {
                    collect_unpack_leaves(al, out);
                }
            }
            Item::Gap { .. } => {}
        }
    }
}

/// Match a record value against a layout for packing, producing leaf
/// deposits. The record supplies exactly one alternative per overlay.
fn collect_pack_deposits(
    l: &Layout,
    ty: &Type,
    vals: &[Value],
    out: &mut Vec<(u32, u32, Value)>,
) -> Result<(), String> {
    use nova_frontend::layout::Item;
    for item in &l.items {
        match item {
            Item::Bits {
                name,
                offset,
                width,
            } => {
                let (off, n) =
                    field_slot_range(ty, name).ok_or_else(|| format!("missing field {name}"))?;
                debug_assert_eq!(n, 1);
                out.push((*offset, *width, vals[off]));
            }
            Item::Sub { name, layout } => {
                let (off, n) =
                    field_slot_range(ty, name).ok_or_else(|| format!("missing field {name}"))?;
                let fty = ty
                    .field(name)
                    .ok_or_else(|| format!("missing field {name}"))?;
                collect_pack_deposits(layout, fty, &vals[off..off + n], out)?;
            }
            Item::Overlay { name, alts } => {
                let (off, n) =
                    field_slot_range(ty, name).ok_or_else(|| format!("missing overlay {name}"))?;
                let fty = ty
                    .field(name)
                    .ok_or_else(|| format!("missing overlay {name}"))?;
                let Type::Record(fs) = fty else {
                    return Err(format!("overlay {name} needs a record"));
                };
                let (alt_name, alt_ty) = &fs[0];
                let alt_layout = alts
                    .iter()
                    .find(|(a, _)| a == alt_name)
                    .map(|(_, l)| l)
                    .ok_or_else(|| format!("no alternative {alt_name}"))?;
                // Bare-width alternative: the whole range is one leaf.
                if let [Item::Bits {
                    name: n2,
                    offset,
                    width,
                }] = alt_layout.items.as_slice()
                {
                    if n2 == layout::VALUE_FIELD {
                        out.push((*offset, *width, vals[off]));
                        continue;
                    }
                }
                collect_pack_deposits(alt_layout, alt_ty, &vals[off..off + n], out)?;
            }
            Item::Gap { .. } => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::pretty;
    use nova_frontend::{check, parse};

    fn cps_of(src: &str) -> Cps {
        let p = parse(src).unwrap_or_else(|d| panic!("parse: {}", d.render(src)));
        let info = check(&p).unwrap_or_else(|d| panic!("check: {}", d.render(src)));
        convert(&p, &info).unwrap_or_else(|d| panic!("convert: {}", d.render(src)))
    }

    #[test]
    fn converts_minimal() {
        let cps = cps_of("fun main() { 42 }");
        let s = pretty(&cps);
        assert!(s.contains("fun main"));
        assert!(s.contains("halt"));
    }

    #[test]
    fn memory_ops_convert() {
        let cps = cps_of("fun main() { let (a, b) = sram(100); sram(200) <- (b, a); a + b }");
        let s = pretty(&cps);
        assert!(s.contains("sram[0x64]"), "{s}");
        assert!(s.contains("sram[0xc8] <-"), "{s}");
    }

    #[test]
    fn if_in_tail_position_has_no_join() {
        let cps = cps_of("fun main() { if (1 == 2) 3 else 4 }");
        let s = pretty(&cps);
        assert!(!s.contains("$ifjoin"), "{s}");
    }

    #[test]
    fn assignments_become_join_parameters() {
        let cps = cps_of("fun main() { let x = 1; if (2 < 3) { x = 5; } else { x = 6; }; x + 0 }");
        let s = pretty(&cps);
        assert!(s.contains("$ifjoin"), "{s}");
    }

    #[test]
    fn while_becomes_loop_continuation() {
        let cps = cps_of("fun main() { let i = 0; while (i < 10) { i = i + 1; } i }");
        let s = pretty(&cps);
        assert!(s.contains("$loop"), "{s}");
    }

    #[test]
    fn unpack_generates_shift_mask() {
        let cps = cps_of(
            r#"
            layout h = { version: 4, priority: 4, rest: 24 };
            fun main() { let (w) = sram(0); let u = unpack[h]((w)); u.version }
            "#,
        );
        let s = pretty(&cps);
        assert!(s.contains("Shr"), "{s}");
    }

    #[test]
    fn exceptions_become_continuations() {
        let cps = cps_of("fun main() { try { raise X (1, 2) } handle X (a, b) { a + b } }");
        let s = pretty(&cps);
        assert!(s.contains("$handle_X"), "{s}");
    }

    #[test]
    fn tail_calls_pass_return_continuation() {
        let cps = cps_of("fun main() { loop(0) } fun loop(i) { if (i < 3) loop(i + 1) else i }");
        let s = pretty(&cps);
        assert!(s.contains("fun loop"), "{s}");
    }
}
