//! CPS middle end for the Nova compiler (§4 of the paper).
//!
//! * [`ir`] — the CPS intermediate representation (SSA by construction);
//! * [`convert()`] — type-directed CPS conversion with record flattening,
//!   booleans as control flow, and layout shift/mask code generation;
//! * [`opt`] — the optimizer: constant folding and propagation, copy
//!   propagation, eta reduction, contraction (inlining of called-once
//!   functions), useless-variable and dead-code elimination, memory-read
//!   trimming, and de-proceduralization (full inlining of non-tail calls);
//! * [`ssu`] — the static-single-use transformation (§4.5): cloning of
//!   memory-write operands so the ILP allocator may give each use its own
//!   register;
//! * [`eval`] — a reference interpreter for CPS programs with a memory and
//!   packet model, used as the compiler's semantic test oracle.

#![warn(missing_docs)]

pub mod convert;
pub mod eval;
pub mod ir;
pub mod opt;
pub mod ssu;

pub use convert::convert;
pub use ir::{Cps, CpsFun, FnId, PrimOp, Term, Value, VarId};
pub use opt::{all_calls_static, optimize, optimize_with, specialize, OptConfig, OptStats};
pub use ssu::{check_ssu, to_ssu, SsuStats};
