//! The CPS intermediate representation (§4.1).
//!
//! Every intermediate value is named, all control is explicit, and
//! functions (including the continuations introduced by conversion) are
//! first-order: an [`App`] target is either a static label or a variable
//! that was bound to a label by parameter passing (how Nova passes
//! exceptions and function arguments — §3.4's "jump back out to the
//! corresponding handler"). There are no runtime closures: the §3.1
//! restrictions guarantee every free variable can stay in registers.
//!
//! The IR is in SSA form by construction — each [`VarId`] has exactly one
//! binding site — which §9 of the paper identifies as the property that
//! makes transfer-bank coloring feasible.
//!
//! [`App`]: Term::App

use ixp_machine::{AluOp, Cond, MemSpace};
use std::collections::HashMap;
use std::fmt;

/// A CPS variable (becomes a machine temporary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A CPS function label (user function, join point, loop header, handler).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FnId(pub u32);

impl fmt::Display for FnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// An atomic value: a variable, a compile-time word, or a code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// A variable reference.
    Var(VarId),
    /// A literal word.
    Const(u32),
    /// A code label (function/continuation), used as a call target or
    /// passed as an argument.
    Label(FnId),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Var(v) => write!(f, "{v}"),
            Value::Const(c) => write!(f, "{c:#x}"),
            Value::Label(l) => write!(f, "&{l}"),
        }
    }
}

/// Primitive operations bound by [`Term::Let`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimOp {
    /// Two-operand ALU operation (1 result).
    Alu(AluOp),
    /// Copy (1 arg, 1 result). Distinct from `Clone`: copies always cost a
    /// move if they survive to machine code.
    Move,
    /// SSU clone (§4.5): semantically a copy, but clones do not interfere
    /// and may share a register (1 arg, 1 result).
    Clone,
    /// Hardware hash unit (1 arg, 1 result; `SameReg` constrained).
    Hash,
    /// Atomic test-and-set: args `[addr, src]`, result = old value.
    BitTestSet,
    /// CSR read: args `[csr]`, 1 result.
    CsrRead,
    /// CSR write: args `[csr, src]`, no result.
    CsrWrite,
    /// Receive a packet: no args, results `[len, sdram_addr]`.
    RxPacket,
    /// Transmit a packet: args `[addr, len]`, no result.
    TxPacket,
    /// Voluntary context swap: no args, no results.
    CtxSwap,
}

impl PrimOp {
    /// Is the operation free of side effects (and hence removable when its
    /// results are unused)?
    pub fn is_pure(self) -> bool {
        matches!(self, PrimOp::Alu(_) | PrimOp::Move | PrimOp::Clone)
    }
}

/// A CPS term.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// `let dsts = op(args) in body`.
    Let {
        /// The primitive.
        op: PrimOp,
        /// Arguments.
        args: Vec<Value>,
        /// Result variables.
        dsts: Vec<VarId>,
        /// Continuation of the binding.
        body: Box<Term>,
    },
    /// Aggregate memory read into fresh variables.
    MemRead {
        /// Memory space.
        space: MemSpace,
        /// Word address.
        addr: Value,
        /// Destination variables (the aggregate, in order).
        dsts: Vec<VarId>,
        /// Continuation.
        body: Box<Term>,
    },
    /// Aggregate memory write.
    MemWrite {
        /// Memory space.
        space: MemSpace,
        /// Word address.
        addr: Value,
        /// Source values (the aggregate, in order).
        srcs: Vec<Value>,
        /// Continuation.
        body: Box<Term>,
    },
    /// Two-way branch on a word comparison.
    If {
        /// Condition code.
        cmp: Cond,
        /// Left comparand.
        a: Value,
        /// Right comparand.
        b: Value,
        /// Taken branch.
        t: Box<Term>,
        /// Fallthrough branch.
        f: Box<Term>,
    },
    /// Mutually recursive function definitions, in scope for `body` and
    /// for each other.
    Fix {
        /// The functions.
        funs: Vec<CpsFun>,
        /// The term in whose scope they are defined.
        body: Box<Term>,
    },
    /// Transfer control to `f` with `args` (never returns).
    App {
        /// Target: a [`Value::Label`] or a variable bound to a label.
        f: Value,
        /// Arguments.
        args: Vec<Value>,
    },
    /// End of the program.
    Halt,
}

/// A function definition inside a [`Term::Fix`].
#[derive(Debug, Clone, PartialEq)]
pub struct CpsFun {
    /// Unique label.
    pub id: FnId,
    /// Debug name (source function name, or `k<N>`/`loop<N>` for
    /// conversion-introduced continuations).
    pub name: String,
    /// Parameters.
    pub params: Vec<VarId>,
    /// Body.
    pub body: Term,
}

/// A whole CPS program with its name supplies.
#[derive(Debug, Clone, PartialEq)]
pub struct Cps {
    /// The top-level term.
    pub body: Term,
    /// Next fresh variable id.
    pub next_var: u32,
    /// Next fresh function id.
    pub next_fn: u32,
}

impl Cps {
    /// Allocate a fresh variable.
    pub fn fresh_var(&mut self) -> VarId {
        self.next_var += 1;
        VarId(self.next_var - 1)
    }

    /// Allocate a fresh function id.
    pub fn fresh_fn(&mut self) -> FnId {
        self.next_fn += 1;
        FnId(self.next_fn - 1)
    }

    /// Number of `Let`/`MemRead`/`MemWrite`/`If`/`App` nodes (a size measure
    /// used by the optimizer's fixpoint loop and by tests).
    pub fn size(&self) -> usize {
        term_size(&self.body)
    }
}

fn term_size(t: &Term) -> usize {
    match t {
        Term::Let { body, .. } | Term::MemRead { body, .. } | Term::MemWrite { body, .. } => {
            1 + term_size(body)
        }
        Term::If { t, f, .. } => 1 + term_size(t) + term_size(f),
        Term::Fix { funs, body } => {
            funs.iter().map(|f| term_size(&f.body)).sum::<usize>() + term_size(body)
        }
        Term::App { .. } => 1,
        Term::Halt => 0,
    }
}

impl Term {
    /// Values read directly by the head of this term (not recursive).
    pub fn head_uses(&self) -> Vec<Value> {
        match self {
            Term::Let { args, .. } => args.clone(),
            Term::MemRead { addr, .. } => vec![*addr],
            Term::MemWrite { addr, srcs, .. } => {
                let mut v = vec![*addr];
                v.extend(srcs.iter().copied());
                v
            }
            Term::If { a, b, .. } => vec![*a, *b],
            Term::App { f, args } => {
                let mut v = vec![*f];
                v.extend(args.iter().copied());
                v
            }
            Term::Fix { .. } | Term::Halt => vec![],
        }
    }
}

/// Pretty-print a CPS program (used in tests and `--emit=cps` debugging).
pub fn pretty(cps: &Cps) -> String {
    let mut s = String::new();
    pp(&cps.body, 0, &mut s);
    s
}

fn indent(n: usize, s: &mut String) {
    for _ in 0..n {
        s.push_str("  ");
    }
}

fn pp(t: &Term, depth: usize, s: &mut String) {
    use std::fmt::Write;
    match t {
        Term::Let {
            op,
            args,
            dsts,
            body,
        } => {
            indent(depth, s);
            let _ = write!(s, "let ");
            for (i, d) in dsts.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "{d}");
            }
            let _ = write!(s, " = {op:?}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "{a}");
            }
            s.push_str(")\n");
            pp(body, depth, s);
        }
        Term::MemRead {
            space,
            addr,
            dsts,
            body,
        } => {
            indent(depth, s);
            let _ = write!(s, "let ");
            for (i, d) in dsts.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "{d}");
            }
            let _ = writeln!(s, " = {space}[{addr}]");
            pp(body, depth, s);
        }
        Term::MemWrite {
            space,
            addr,
            srcs,
            body,
        } => {
            indent(depth, s);
            let _ = write!(s, "{space}[{addr}] <- ");
            for (i, v) in srcs.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "{v}");
            }
            s.push('\n');
            pp(body, depth, s);
        }
        Term::If { cmp, a, b, t, f } => {
            indent(depth, s);
            let _ = writeln!(s, "if {a} {} {b}", cmp.mnemonic());
            pp(t, depth + 1, s);
            indent(depth, s);
            s.push_str("else\n");
            pp(f, depth + 1, s);
        }
        Term::Fix { funs, body } => {
            for f in funs {
                indent(depth, s);
                use std::fmt::Write;
                let _ = write!(s, "fun {}#{} (", f.name, f.id);
                for (i, p) in f.params.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    let _ = write!(s, "{p}");
                }
                s.push_str(") =\n");
                pp(&f.body, depth + 1, s);
            }
            pp(body, depth, s);
        }
        Term::App { f, args } => {
            indent(depth, s);
            use std::fmt::Write;
            let _ = write!(s, "{f}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "{a}");
            }
            s.push_str(")\n");
        }
        Term::Halt => {
            indent(depth, s);
            s.push_str("halt\n");
        }
    }
}

/// Rename every bound variable and function id in `t` to fresh names from
/// `cps`, substituting `var_map`/`fn_map` for free occurrences. Used by the
/// inliner to keep the single-binding (SSA) invariant.
pub fn freshen(
    cps: &mut Cps,
    t: &Term,
    var_map: &HashMap<VarId, Value>,
    fn_map: &HashMap<FnId, FnId>,
) -> Term {
    let mut vmap = var_map.clone();
    let mut fmap = fn_map.clone();
    freshen_inner(cps, t, &mut vmap, &mut fmap)
}

fn subst_value(v: Value, vmap: &HashMap<VarId, Value>, fmap: &HashMap<FnId, FnId>) -> Value {
    match v {
        Value::Var(x) => vmap.get(&x).copied().unwrap_or(Value::Var(x)),
        Value::Label(f) => Value::Label(fmap.get(&f).copied().unwrap_or(f)),
        c => c,
    }
}

fn freshen_inner(
    cps: &mut Cps,
    t: &Term,
    vmap: &mut HashMap<VarId, Value>,
    fmap: &mut HashMap<FnId, FnId>,
) -> Term {
    match t {
        Term::Let {
            op,
            args,
            dsts,
            body,
        } => {
            let args = args.iter().map(|a| subst_value(*a, vmap, fmap)).collect();
            let new_dsts: Vec<VarId> = dsts.iter().map(|_| cps.fresh_var()).collect();
            for (old, new) in dsts.iter().zip(&new_dsts) {
                vmap.insert(*old, Value::Var(*new));
            }
            let body = freshen_inner(cps, body, vmap, fmap);
            Term::Let {
                op: *op,
                args,
                dsts: new_dsts,
                body: Box::new(body),
            }
        }
        Term::MemRead {
            space,
            addr,
            dsts,
            body,
        } => {
            let addr = subst_value(*addr, vmap, fmap);
            let new_dsts: Vec<VarId> = dsts.iter().map(|_| cps.fresh_var()).collect();
            for (old, new) in dsts.iter().zip(&new_dsts) {
                vmap.insert(*old, Value::Var(*new));
            }
            let body = freshen_inner(cps, body, vmap, fmap);
            Term::MemRead {
                space: *space,
                addr,
                dsts: new_dsts,
                body: Box::new(body),
            }
        }
        Term::MemWrite {
            space,
            addr,
            srcs,
            body,
        } => Term::MemWrite {
            space: *space,
            addr: subst_value(*addr, vmap, fmap),
            srcs: srcs.iter().map(|v| subst_value(*v, vmap, fmap)).collect(),
            body: Box::new(freshen_inner(cps, body, vmap, fmap)),
        },
        Term::If {
            cmp,
            a,
            b,
            t: tt,
            f: ff,
        } => Term::If {
            cmp: *cmp,
            a: subst_value(*a, vmap, fmap),
            b: subst_value(*b, vmap, fmap),
            t: Box::new(freshen_inner(cps, tt, vmap, fmap)),
            f: Box::new(freshen_inner(cps, ff, vmap, fmap)),
        },
        Term::Fix { funs, body } => {
            // Bind all ids first (mutual recursion).
            for f in funs {
                let nf = cps.fresh_fn();
                fmap.insert(f.id, nf);
            }
            let funs = funs
                .iter()
                .map(|f| {
                    let new_params: Vec<VarId> = f.params.iter().map(|_| cps.fresh_var()).collect();
                    for (old, new) in f.params.iter().zip(&new_params) {
                        vmap.insert(*old, Value::Var(*new));
                    }
                    CpsFun {
                        id: fmap[&f.id],
                        name: f.name.clone(),
                        params: new_params,
                        body: freshen_inner(cps, &f.body, vmap, fmap),
                    }
                })
                .collect();
            Term::Fix {
                funs,
                body: Box::new(freshen_inner(cps, body, vmap, fmap)),
            }
        }
        Term::App { f, args } => Term::App {
            f: subst_value(*f, vmap, fmap),
            args: args.iter().map(|v| subst_value(*v, vmap, fmap)).collect(),
        },
        Term::Halt => Term::Halt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_counts_operations() {
        let t = Term::Let {
            op: PrimOp::Move,
            args: vec![Value::Const(1)],
            dsts: vec![VarId(0)],
            body: Box::new(Term::Halt),
        };
        let cps = Cps {
            body: t,
            next_var: 1,
            next_fn: 0,
        };
        assert_eq!(cps.size(), 1);
    }

    #[test]
    fn freshen_renames_bindings() {
        let mut cps = Cps {
            body: Term::Halt,
            next_var: 10,
            next_fn: 5,
        };
        let t = Term::Let {
            op: PrimOp::Move,
            args: vec![Value::Var(VarId(0))],
            dsts: vec![VarId(1)],
            body: Box::new(Term::App {
                f: Value::Label(FnId(0)),
                args: vec![Value::Var(VarId(1))],
            }),
        };
        let mut vmap = HashMap::new();
        vmap.insert(VarId(0), Value::Const(7));
        let out = freshen(&mut cps, &t, &vmap, &HashMap::new());
        match out {
            Term::Let {
                args, dsts, body, ..
            } => {
                assert_eq!(args, vec![Value::Const(7)]);
                assert_eq!(dsts, vec![VarId(10)]); // freshly renamed
                match *body {
                    Term::App { args, .. } => assert_eq!(args, vec![Value::Var(VarId(10))]),
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pretty_prints_something() {
        let cps = Cps {
            body: Term::If {
                cmp: Cond::Eq,
                a: Value::Const(1),
                b: Value::Const(1),
                t: Box::new(Term::Halt),
                f: Box::new(Term::App {
                    f: Value::Label(FnId(0)),
                    args: vec![],
                }),
            },
            next_var: 0,
            next_fn: 1,
        };
        let s = pretty(&cps);
        assert!(s.contains("if 0x1 eq 0x1"));
        assert!(s.contains("halt"));
    }
}
