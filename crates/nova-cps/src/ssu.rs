//! Static single use (SSU) transformation (§4.5, §10).
//!
//! SSA solves the coloring problem for memory *reads* (no variable is the
//! target of two different read instructions); SSU is the dual for
//! *writes*: after this pass, any use of a variable as a store-side
//! operand — a memory-write aggregate member, the input of the hash unit,
//! or the modifier of test-and-set — is the **only** use of that variable
//! in the entire program.
//!
//! The transformation inserts `clone` pseudo-instructions immediately
//! after the original definition. Cloning is semantically a copy, but the
//! ILP model treats clones as non-interfering: they *may* share a register
//! (costing nothing) or be split when profitable, which is how the paper
//! resolves conflicting aggregate-position constraints like
//!
//! ```text
//! sram(a1) <- (u, v, x, w)
//! sram(a2) <- (a, x, b, c)   // x needs two different S registers
//! ```

use crate::ir::{Cps, PrimOp, Term, Value, VarId};
use std::collections::HashMap;

/// Statistics of the SSU pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SsuStats {
    /// Clone instructions inserted.
    pub clones: usize,
    /// Variables that needed cloning.
    pub cloned_vars: usize,
}

/// Apply the SSU transformation in place.
pub fn to_ssu(cps: &mut Cps) -> SsuStats {
    // Pass 1: count store-side uses (W) and all other uses (O).
    let mut counts: HashMap<VarId, (usize, usize)> = HashMap::new();
    count_uses(&cps.body, &mut counts);
    // Clones needed: every store-side use must be the sole use of its
    // variable. With other uses present, all W store uses get clones; with
    // none, the first store use may keep the original.
    let mut need: HashMap<VarId, usize> = HashMap::new();
    let mut stats = SsuStats::default();
    for (v, (w, o)) in &counts {
        let n = if *w == 0 {
            0
        } else if *o > 0 {
            *w
        } else {
            w - 1
        };
        if n > 0 {
            need.insert(*v, n);
            stats.cloned_vars += 1;
        }
    }
    if need.is_empty() {
        return stats;
    }
    // Pre-allocate clone names (sorted for deterministic numbering).
    let mut pool: HashMap<VarId, Vec<VarId>> = HashMap::new();
    let mut need_sorted: Vec<(VarId, usize)> = need.iter().map(|(v, n)| (*v, *n)).collect();
    need_sorted.sort();
    for (v, n) in need_sorted {
        let ids: Vec<VarId> = (0..n).map(|_| cps.fresh_var()).collect();
        stats.clones += ids.len();
        pool.insert(v, ids);
    }
    // Pass 2: insert clones after definitions and substitute them at
    // store-side uses (any assignment of clones to uses is valid — clones
    // are interchangeable).
    let mut remaining: HashMap<VarId, Vec<VarId>> =
        pool.iter().map(|(v, ids)| (*v, ids.clone())).collect();
    let body = std::mem::replace(&mut cps.body, Term::Halt);
    cps.body = rewrite(body, &pool, &mut remaining);
    stats
}

/// Is this primitive's argument at index `i` a store-side (S-bank) use?
fn store_side_arg(op: PrimOp, i: usize) -> bool {
    match op {
        PrimOp::Hash => i == 0,
        PrimOp::BitTestSet => i == 1, // args: [addr, src]
        _ => false,
    }
}

fn count_uses(t: &Term, counts: &mut HashMap<VarId, (usize, usize)>) {
    let store = |v: &Value, counts: &mut HashMap<VarId, (usize, usize)>| {
        if let Value::Var(x) = v {
            counts.entry(*x).or_default().0 += 1;
        }
    };
    let other = |v: &Value, counts: &mut HashMap<VarId, (usize, usize)>| {
        if let Value::Var(x) = v {
            counts.entry(*x).or_default().1 += 1;
        }
    };
    match t {
        Term::MemWrite {
            addr, srcs, body, ..
        } => {
            other(addr, counts);
            for s in srcs {
                store(s, counts);
            }
            count_uses(body, counts);
        }
        Term::Let { op, args, body, .. } => {
            // A clone's own argument is not a "use" in the SSU sense: the
            // clone *is* the duplication device.
            if *op != PrimOp::Clone {
                for (i, a) in args.iter().enumerate() {
                    if store_side_arg(*op, i) {
                        store(a, counts);
                    } else {
                        other(a, counts);
                    }
                }
            }
            count_uses(body, counts);
        }
        Term::MemRead { addr, body, .. } => {
            other(addr, counts);
            count_uses(body, counts);
        }
        Term::If { a, b, t, f, .. } => {
            other(a, counts);
            other(b, counts);
            count_uses(t, counts);
            count_uses(f, counts);
        }
        Term::Fix { funs, body } => {
            for f in funs {
                count_uses(&f.body, counts);
            }
            count_uses(body, counts);
        }
        Term::App { f, args } => {
            other(f, counts);
            for a in args {
                other(a, counts);
            }
        }
        Term::Halt => {}
    }
}

/// Wrap `body` in clone bindings for each definition in `defs` that needs
/// them.
fn add_clones(defs: &[VarId], pool: &HashMap<VarId, Vec<VarId>>, body: Term) -> Term {
    let mut t = body;
    for d in defs.iter().rev() {
        if let Some(ids) = pool.get(d) {
            for c in ids.iter().rev() {
                t = Term::Let {
                    op: PrimOp::Clone,
                    args: vec![Value::Var(*d)],
                    dsts: vec![*c],
                    body: Box::new(t),
                };
            }
        }
    }
    t
}

fn take_clone(v: &Value, remaining: &mut HashMap<VarId, Vec<VarId>>) -> Value {
    if let Value::Var(x) = v {
        if let Some(ids) = remaining.get_mut(x) {
            if let Some(c) = ids.pop() {
                return Value::Var(c);
            }
        }
    }
    *v
}

fn rewrite(
    t: Term,
    pool: &HashMap<VarId, Vec<VarId>>,
    remaining: &mut HashMap<VarId, Vec<VarId>>,
) -> Term {
    match t {
        Term::MemWrite {
            space,
            addr,
            srcs,
            body,
        } => {
            let srcs = srcs.iter().map(|s| take_clone(s, remaining)).collect();
            Term::MemWrite {
                space,
                addr,
                srcs,
                body: Box::new(rewrite(*body, pool, remaining)),
            }
        }
        Term::Let {
            op,
            args,
            dsts,
            body,
        } => {
            let args = args
                .iter()
                .enumerate()
                .map(|(i, a)| {
                    if store_side_arg(op, i) {
                        take_clone(a, remaining)
                    } else {
                        *a
                    }
                })
                .collect();
            let inner = add_clones(&dsts, pool, rewrite(*body, pool, remaining));
            Term::Let {
                op,
                args,
                dsts,
                body: Box::new(inner),
            }
        }
        Term::MemRead {
            space,
            addr,
            dsts,
            body,
        } => {
            let inner = add_clones(&dsts, pool, rewrite(*body, pool, remaining));
            Term::MemRead {
                space,
                addr,
                dsts,
                body: Box::new(inner),
            }
        }
        Term::If { cmp, a, b, t, f } => Term::If {
            cmp,
            a,
            b,
            t: Box::new(rewrite(*t, pool, remaining)),
            f: Box::new(rewrite(*f, pool, remaining)),
        },
        Term::Fix { funs, body } => Term::Fix {
            funs: funs
                .into_iter()
                .map(|f| {
                    let inner = add_clones(&f.params, pool, rewrite(f.body, pool, remaining));
                    crate::ir::CpsFun {
                        id: f.id,
                        name: f.name,
                        params: f.params,
                        body: inner,
                    }
                })
                .collect(),
            body: Box::new(rewrite(*body, pool, remaining)),
        },
        other => other,
    }
}

/// Verify the SSU property: every store-side operand variable has exactly
/// one use in the whole program. Used by tests and debug assertions.
pub fn check_ssu(cps: &Cps) -> Result<(), String> {
    let mut counts: HashMap<VarId, (usize, usize)> = HashMap::new();
    count_uses(&cps.body, &mut counts);
    for (v, (w, o)) in counts {
        if w > 0 && (w + o) > 1 {
            return Err(format!(
                "variable {v} has {w} store-side uses and {o} other uses"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::convert;
    use crate::eval::{run, Machine};
    use crate::opt::{optimize, OptConfig};
    use nova_frontend::{check, parse};

    fn compile_opt(src: &str) -> Cps {
        let p = parse(src).unwrap();
        let info = check(&p).unwrap();
        let mut cps = convert(&p, &info).unwrap();
        optimize(&mut cps, &OptConfig::default());
        cps
    }

    #[test]
    fn clones_inserted_for_shared_operand() {
        // The paper's §2.1 example: x appears in two stores and a later
        // use, creating conflicting position constraints.
        let src = r#"
            fun main() {
                let (u, v, x, w) = sram(0);
                sram(100) <- (u, v, x, w);
                sram(200) <- (w, x, u, v);
                sram(300) <- (x);
                0
            }
        "#;
        let mut cps = compile_opt(src);
        assert!(
            check_ssu(&cps).is_err(),
            "program should violate SSU before the pass"
        );
        let stats = to_ssu(&mut cps);
        assert!(stats.clones >= 2, "stats: {stats:?}");
        check_ssu(&cps).unwrap();
    }

    #[test]
    fn single_store_use_needs_no_clone() {
        let src = r#"
            fun main() {
                let (a, b) = sram(0);
                sram(10) <- (a, b);
                0
            }
        "#;
        let mut cps = compile_opt(src);
        let stats = to_ssu(&mut cps);
        assert_eq!(stats.clones, 0);
        check_ssu(&cps).unwrap();
    }

    #[test]
    fn store_plus_other_use_clones_once() {
        let src = r#"
            fun main() {
                let (a) = sram(0);
                sram(10) <- (a);
                sram(20) <- (a + 1);
                0
            }
        "#;
        let mut cps = compile_opt(src);
        let stats = to_ssu(&mut cps);
        assert_eq!(stats.clones, 1, "{}", crate::ir::pretty(&cps));
        check_ssu(&cps).unwrap();
    }

    #[test]
    fn hash_operand_is_store_side() {
        let src = r#"
            fun main() {
                let (a) = sram(0);
                let h = hash(a);
                sram(1) <- (a + h);
                0
            }
        "#;
        let mut cps = compile_opt(src);
        to_ssu(&mut cps);
        check_ssu(&cps).unwrap();
    }

    #[test]
    fn semantics_preserved() {
        let src = r#"
            fun main() {
                let (u, v, x, w) = sram(0);
                sram(100) <- (u, v, x, w);
                sram(200) <- (w, x, u, v);
                sram(300) <- (x + u);
                0
            }
        "#;
        let mut m0 = Machine::with_sizes(512, 64, 64);
        m0.sram[0..4].copy_from_slice(&[1, 2, 3, 4]);
        let cps0 = compile_opt(src);
        run(&cps0, &mut m0, 100_000).unwrap();

        let mut cps1 = compile_opt(src);
        to_ssu(&mut cps1);
        check_ssu(&cps1).unwrap();
        let mut m1 = Machine::with_sizes(512, 64, 64);
        m1.sram[0..4].copy_from_slice(&[1, 2, 3, 4]);
        run(&cps1, &mut m1, 100_000).unwrap();
        assert_eq!(m0.sram, m1.sram);
    }

    #[test]
    fn same_var_twice_in_one_store() {
        // §9(4): without SSU, (X, a, b, c) then (a, b, c, X) is
        // uncolorable; both X uses must become distinct variables.
        let src = r#"
            fun main() {
                let (x, a, b, c) = sram(0);
                sram(100) <- (x, a, b, c);
                sram(200) <- (a, b, c, x);
                0
            }
        "#;
        let mut cps = compile_opt(src);
        to_ssu(&mut cps);
        check_ssu(&cps).unwrap();
        let mut m = Machine::with_sizes(512, 64, 64);
        m.sram[0..4].copy_from_slice(&[9, 8, 7, 6]);
        run(&cps, &mut m, 100_000).unwrap();
        assert_eq!(&m.sram[100..104], &[9, 8, 7, 6]);
        assert_eq!(&m.sram[200..204], &[8, 7, 6, 9]);
    }
}
