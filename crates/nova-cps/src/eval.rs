//! Reference interpreter for CPS programs.
//!
//! Executes a [`Cps`] term against a [`Machine`] model (SRAM, SDRAM,
//! scratch, CSRs, packet queues). This is the compiler's semantic oracle:
//! every optimization pass and the whole back end must preserve the
//! behaviour observable through this interpreter, and the benchmark
//! programs (AES, Kasumi, NAT) are validated by comparing the memory and
//! transmit log it produces against trusted Rust reference
//! implementations.

use crate::ir::{Cps, CpsFun, FnId, PrimOp, Term, Value, VarId};
use ixp_machine::units::hash_unit;
use ixp_machine::MemSpace;
use std::collections::{HashMap, VecDeque};

/// The memory and I/O model shared with the cycle simulator.
#[derive(Debug, Clone, Default)]
pub struct Machine {
    /// External SRAM, word addressed (grows on demand).
    pub sram: Vec<u32>,
    /// External SDRAM, word addressed.
    pub sdram: Vec<u32>,
    /// On-chip scratch, word addressed.
    pub scratch: Vec<u32>,
    /// Control/status registers.
    pub csr: HashMap<u32, u32>,
    /// Pending received packets: `(length_bytes, sdram_word_address)`.
    pub rx_queue: VecDeque<(u32, u32)>,
    /// Transmitted packets: `(sdram_word_address, length_bytes)`.
    pub tx_log: Vec<(u32, u32)>,
}

impl Machine {
    /// A machine with zeroed memories of the given word sizes.
    pub fn with_sizes(sram: usize, sdram: usize, scratch: usize) -> Self {
        Machine {
            sram: vec![0; sram],
            sdram: vec![0; sdram],
            scratch: vec![0; scratch],
            ..Machine::default()
        }
    }

    fn space_mut(&mut self, space: MemSpace) -> &mut Vec<u32> {
        match space {
            MemSpace::Sram => &mut self.sram,
            MemSpace::Sdram => &mut self.sdram,
            MemSpace::Scratch => &mut self.scratch,
        }
    }

    /// Read one word, growing the memory if needed.
    pub fn read(&mut self, space: MemSpace, addr: u32) -> u32 {
        let m = self.space_mut(space);
        if addr as usize >= m.len() {
            m.resize(addr as usize + 1, 0);
        }
        m[addr as usize]
    }

    /// Write one word, growing the memory if needed.
    pub fn write(&mut self, space: MemSpace, addr: u32, val: u32) {
        let m = self.space_mut(space);
        if addr as usize >= m.len() {
            m.resize(addr as usize + 1, 0);
        }
        m[addr as usize] = val;
    }
}

/// Why execution stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stop {
    /// The program reached `Halt`.
    Halt,
    /// `rx_packet` found the receive queue empty (the normal end of a
    /// packet-loop workload).
    RxEmpty,
}

/// Execution statistics.
#[derive(Debug, Clone, Default)]
pub struct EvalStats {
    /// CPS steps executed.
    pub steps: u64,
    /// Memory read transactions.
    pub reads: u64,
    /// Memory write transactions.
    pub writes: u64,
    /// Packets received (completed `rx_packet`s).
    pub packets: u64,
}

/// Evaluation errors (all indicate compiler bugs or fuel exhaustion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A variable was read before being bound.
    UnboundVar(VarId),
    /// An `App` target was not a label.
    NotCallable(String),
    /// Unknown function id.
    UnknownFn(FnId),
    /// Argument count mismatch at a call.
    Arity(FnId, usize, usize),
    /// The step budget was exhausted (likely a loop).
    OutOfFuel,
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::UnboundVar(v) => write!(f, "unbound variable {v}"),
            EvalError::NotCallable(s) => write!(f, "call target is not a label: {s}"),
            EvalError::UnknownFn(id) => write!(f, "unknown function {id}"),
            EvalError::Arity(id, want, got) => {
                write!(f, "function {id} takes {want} args, got {got}")
            }
            EvalError::OutOfFuel => write!(f, "out of fuel"),
        }
    }
}

impl std::error::Error for EvalError {}

/// A runtime value: a word or a code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtVal {
    /// Data word.
    Word(u32),
    /// Code label (continuation/exception/function argument).
    Label(FnId),
}

/// Run a CPS program to completion.
///
/// # Errors
///
/// Returns an [`EvalError`] on stuck states (compiler bugs) or fuel
/// exhaustion.
pub fn run(cps: &Cps, mach: &mut Machine, fuel: u64) -> Result<(Stop, EvalStats), EvalError> {
    let mut funs: HashMap<FnId, &CpsFun> = HashMap::new();
    collect_funs(&cps.body, &mut funs);
    let mut env: HashMap<VarId, RtVal> = HashMap::new();
    let mut stats = EvalStats::default();
    let mut term: &Term = &cps.body;
    let mut remaining = fuel;

    loop {
        if remaining == 0 {
            return Err(EvalError::OutOfFuel);
        }
        remaining -= 1;
        stats.steps += 1;
        match term {
            Term::Halt => return Ok((Stop::Halt, stats)),
            Term::Fix { body, .. } => {
                term = body;
            }
            Term::Let {
                op,
                args,
                dsts,
                body,
            } => {
                let argv: Result<Vec<RtVal>, EvalError> =
                    args.iter().map(|a| value(&env, a)).collect();
                let argv = argv?;
                let word = |i: usize| -> u32 {
                    match argv[i] {
                        RtVal::Word(w) => w,
                        RtVal::Label(_) => 0,
                    }
                };
                match op {
                    PrimOp::Alu(alu) => {
                        env.insert(dsts[0], RtVal::Word(alu.eval(word(0), word(1))));
                    }
                    PrimOp::Move | PrimOp::Clone => {
                        env.insert(dsts[0], argv[0]);
                    }
                    PrimOp::Hash => {
                        env.insert(dsts[0], RtVal::Word(hash_unit(word(0))));
                        stats.reads += 1;
                    }
                    PrimOp::BitTestSet => {
                        let addr = word(0);
                        let old = mach.read(MemSpace::Sram, addr);
                        mach.write(MemSpace::Sram, addr, old | word(1));
                        env.insert(dsts[0], RtVal::Word(old));
                        stats.reads += 1;
                        stats.writes += 1;
                    }
                    PrimOp::CsrRead => {
                        let v = *mach.csr.get(&word(0)).unwrap_or(&0);
                        env.insert(dsts[0], RtVal::Word(v));
                    }
                    PrimOp::CsrWrite => {
                        mach.csr.insert(word(0), word(1));
                    }
                    PrimOp::RxPacket => match mach.rx_queue.pop_front() {
                        Some((len, addr)) => {
                            env.insert(dsts[0], RtVal::Word(len));
                            env.insert(dsts[1], RtVal::Word(addr));
                            stats.packets += 1;
                        }
                        None => return Ok((Stop::RxEmpty, stats)),
                    },
                    PrimOp::TxPacket => {
                        mach.tx_log.push((word(0), word(1)));
                    }
                    PrimOp::CtxSwap => {}
                }
                term = body;
            }
            Term::MemRead {
                space,
                addr,
                dsts,
                body,
            } => {
                let a = as_word(value(&env, addr)?);
                for (i, d) in dsts.iter().enumerate() {
                    let v = mach.read(*space, a + i as u32);
                    env.insert(*d, RtVal::Word(v));
                }
                stats.reads += 1;
                term = body;
            }
            Term::MemWrite {
                space,
                addr,
                srcs,
                body,
            } => {
                let a = as_word(value(&env, addr)?);
                for (i, s) in srcs.iter().enumerate() {
                    let v = as_word(value(&env, s)?);
                    mach.write(*space, a + i as u32, v);
                }
                stats.writes += 1;
                term = body;
            }
            Term::If { cmp, a, b, t, f } => {
                let x = as_word(value(&env, a)?);
                let y = as_word(value(&env, b)?);
                term = if cmp.eval(x, y) { t } else { f };
            }
            Term::App { f, args } => {
                let target = match value(&env, f)? {
                    RtVal::Label(id) => id,
                    RtVal::Word(w) => return Err(EvalError::NotCallable(format!("word {w:#x}"))),
                };
                let fun = funs.get(&target).ok_or(EvalError::UnknownFn(target))?;
                if fun.params.len() != args.len() {
                    return Err(EvalError::Arity(target, fun.params.len(), args.len()));
                }
                let argv: Result<Vec<RtVal>, EvalError> =
                    args.iter().map(|a| value(&env, a)).collect();
                for (p, v) in fun.params.iter().zip(argv?) {
                    env.insert(*p, v);
                }
                term = &fun.body;
            }
        }
    }
}

fn value(env: &HashMap<VarId, RtVal>, v: &Value) -> Result<RtVal, EvalError> {
    match v {
        Value::Const(c) => Ok(RtVal::Word(*c)),
        Value::Label(l) => Ok(RtVal::Label(*l)),
        Value::Var(x) => env.get(x).copied().ok_or(EvalError::UnboundVar(*x)),
    }
}

fn as_word(v: RtVal) -> u32 {
    match v {
        RtVal::Word(w) => w,
        RtVal::Label(_) => 0,
    }
}

fn collect_funs<'a>(t: &'a Term, out: &mut HashMap<FnId, &'a CpsFun>) {
    match t {
        Term::Fix { funs, body } => {
            for f in funs {
                out.insert(f.id, f);
                collect_funs(&f.body, out);
            }
            collect_funs(body, out);
        }
        Term::Let { body, .. } | Term::MemRead { body, .. } | Term::MemWrite { body, .. } => {
            collect_funs(body, out)
        }
        Term::If { t, f, .. } => {
            collect_funs(t, out);
            collect_funs(f, out);
        }
        Term::App { .. } | Term::Halt => {}
    }
}

/// Convenience: parse, check, convert and run a Nova source string against
/// a machine. Used pervasively by tests.
///
/// # Errors
///
/// Propagates front-end diagnostics as strings and evaluation errors.
pub fn run_nova(source: &str, mach: &mut Machine, fuel: u64) -> Result<(Stop, EvalStats), String> {
    let program = nova_frontend::parse(source).map_err(|d| d.render(source))?;
    let info = nova_frontend::check(&program).map_err(|d| d.render(source))?;
    let cps = crate::convert::convert(&program, &info).map_err(|d| d.render(source))?;
    run(&cps, mach, fuel).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::with_sizes(1024, 4096, 256)
    }

    #[test]
    fn arithmetic_and_store() {
        let mut m = machine();
        run_nova(
            "fun main() { let x = 7; sram(10) <- (x + 35); 0 }",
            &mut m,
            10_000,
        )
        .unwrap();
        assert_eq!(m.sram[10], 42);
    }

    #[test]
    fn loads_and_tuple_destructuring() {
        let mut m = machine();
        m.sram[100] = 11;
        m.sram[101] = 22;
        run_nova(
            "fun main() { let (a, b) = sram(100); sram(200) <- (b, a); 0 }",
            &mut m,
            10_000,
        )
        .unwrap();
        assert_eq!(&m.sram[200..202], &[22, 11]);
    }

    #[test]
    fn while_loop_sums() {
        let mut m = machine();
        run_nova(
            r#"fun main() {
                let i = 0;
                let sum = 0;
                while (i < 10) { sum = sum + i; i = i + 1; }
                sram(0) <- (sum);
                0
            }"#,
            &mut m,
            100_000,
        )
        .unwrap();
        assert_eq!(m.sram[0], 45);
    }

    #[test]
    fn if_join_carries_assignments() {
        let mut m = machine();
        m.sram[0] = 5;
        run_nova(
            r#"fun main() {
                let (x) = sram(0);
                let y = 0;
                if (x > 3) { y = 100; } else { y = 200; }
                sram(1) <- (y + x);
                0
            }"#,
            &mut m,
            10_000,
        )
        .unwrap();
        assert_eq!(m.sram[1], 105);
    }

    #[test]
    fn tail_recursion_is_a_loop() {
        let mut m = machine();
        run_nova(
            r#"
            fun main() { go(0, 0) }
            fun go(i, acc) {
                if (i == 100) { sram(0) <- (acc); 0 }
                else go(i + 1, acc + i)
            }"#,
            &mut m,
            100_000,
        )
        .unwrap();
        assert_eq!(m.sram[0], 4950);
    }

    #[test]
    fn exceptions_unwind_to_handler() {
        let mut m = machine();
        run_nova(
            r#"
            fun risky [v: word, fail: exn(word)] {
                if (v > 10) raise fail (v) else v
            }
            fun main() {
                let r = try { risky[v = 50, fail = Oops] }
                        handle Oops (code) { code + 1000 };
                sram(0) <- (r);
                0
            }"#,
            &mut m,
            10_000,
        )
        .unwrap();
        assert_eq!(m.sram[0], 1050);
    }

    #[test]
    fn unpack_pack_roundtrip() {
        let mut m = machine();
        m.sram[0] = (6 << 28) | (2 << 24) | 0xABCDE;
        run_nova(
            r#"
            layout h = { version: 4, priority: 4, flow: 24 };
            fun main() {
                let p: packed(h) = sram(0);
                let u = unpack[h](p);
                sram(1) <- (u.version, u.priority, u.flow);
                let q = pack[h] [version = u.version, priority = u.priority, flow = u.flow];
                sram(4) <- q;
                0
            }"#,
            &mut m,
            10_000,
        )
        .unwrap();
        assert_eq!(&m.sram[1..4], &[6, 2, 0xABCDE]);
        assert_eq!(m.sram[4], m.sram[0]);
    }

    #[test]
    fn straddling_fields_roundtrip() {
        let mut m = machine();
        m.sram[0] = 0x1234_5678;
        m.sram[1] = 0x9ABC_DEF0;
        run_nova(
            r#"
            layout l = { a: 16, b: 32, c: 16 };
            fun main() {
                let p: packed(l) = sram(0);
                let u = unpack[l](p);
                sram(10) <- (u.a, u.b, u.c);
                0
            }"#,
            &mut m,
            10_000,
        )
        .unwrap();
        assert_eq!(m.sram[10], 0x1234);
        assert_eq!(m.sram[11], 0x5678_9ABC);
        assert_eq!(m.sram[12], 0xDEF0);
    }

    #[test]
    fn packet_loop_until_rx_empty() {
        let mut m = machine();
        m.rx_queue.push_back((8, 0));
        m.rx_queue.push_back((8, 16));
        m.sdram[0] = 7;
        m.sdram[16] = 9;
        let (stop, stats) = run_nova(
            r#"
            fun main() {
                let (len, addr) = rx_packet();
                let (w0, w1) = sdram(addr);
                sdram(addr) <- (w0 + 1, w1);
                tx_packet(addr, len);
                main()
            }"#,
            &mut m,
            100_000,
        )
        .unwrap();
        assert_eq!(stop, Stop::RxEmpty);
        assert_eq!(stats.packets, 2);
        assert_eq!(m.sdram[0], 8);
        assert_eq!(m.sdram[16], 10);
        assert_eq!(m.tx_log, vec![(0, 8), (16, 8)]);
    }

    #[test]
    fn hash_and_csr() {
        let mut m = machine();
        run_nova(
            "fun main() { let h = hash(42); csr_write(5, h); sram(0) <- (csr_read(5)); 0 }",
            &mut m,
            10_000,
        )
        .unwrap();
        assert_eq!(m.sram[0], hash_unit(42));
    }

    #[test]
    fn overlay_views_agree() {
        let mut m = machine();
        m.sram[0] = 0x62AB_CDEF;
        run_nova(
            r#"
            layout h = { verpri: overlay { whole: 8 | parts: { version: 4, priority: 4 } }, f: 24 };
            fun main() {
                let p: packed(h) = sram(0);
                let u = unpack[h](p);
                sram(1) <- (u.verpri.whole, u.verpri.parts.version, u.verpri.parts.priority);
                let w = pack[h] [ verpri = [ whole = 0x62 ], f = u.f ];
                sram(4) <- w;
                0
            }"#,
            &mut m,
            10_000,
        )
        .unwrap();
        assert_eq!(&m.sram[1..4], &[0x62, 6, 2]);
        assert_eq!(m.sram[4], 0x62AB_CDEF);
    }

    #[test]
    fn out_of_fuel_detected() {
        let mut m = machine();
        let r = run_nova("fun main() { main() }", &mut m, 1000);
        assert!(r.unwrap_err().contains("fuel"));
    }

    #[test]
    fn nested_function_free_variables() {
        let mut m = machine();
        run_nova(
            r#"
            fun main() {
                let base = 100;
                fun add(x) { x + base }
                sram(0) <- (add(7));
                0
            }"#,
            &mut m,
            10_000,
        )
        .unwrap();
        assert_eq!(m.sram[0], 107);
    }

    #[test]
    fn bool_values_materialize() {
        let mut m = machine();
        run_nova(
            r#"
            fun main() {
                let b = 3 < 5;
                let c = !b;
                if (b && !c) { sram(0) <- (1); } else { sram(0) <- (2); }
                0
            }"#,
            &mut m,
            10_000,
        )
        .unwrap();
        assert_eq!(m.sram[0], 1);
    }

    #[test]
    fn scratch_memory_works() {
        let mut m = machine();
        run_nova(
            "fun main() { scratch(5) <- (77, 88); let (a, b) = scratch(5); sram(0) <- (a + b); 0 }",
            &mut m,
            10_000,
        )
        .unwrap();
        assert_eq!(m.sram[0], 165);
    }
}
