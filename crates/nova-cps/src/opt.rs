//! The CPS optimizer (§4.3–§4.4).
//!
//! Implemented passes, matching the paper's list:
//!
//! * **contraction** — constant folding, global constant/copy propagation,
//!   algebraic simplification, useless-variable elimination, dead-code
//!   (dead-function) elimination, eta reduction, and branch folding, run
//!   to a fixpoint;
//! * **memory-read trimming** — unused leading/trailing members of an
//!   aggregate read narrow the transaction (SDRAM trims in pairs to keep
//!   bursts even); a fully dead read disappears;
//! * **de-proceduralization** (§4.3) — full inlining of all non-tail
//!   calls: a non-tail call site is an `App` whose continuation argument
//!   is a static label; tail calls remain jumps. Type checking guarantees
//!   recursion is tail-only, so the non-tail call graph is a DAG and
//!   inlining terminates;
//! * **called-once inlining** — continuations and functions with exactly
//!   one call and no escaping uses merge into their caller;
//! * **label specialization** — parameters that receive the same label at
//!   every call site are substituted away, leaving every `App` target
//!   static (required by the back end, which has no indirect branch).

use crate::ir::{freshen, Cps, CpsFun, FnId, PrimOp, Term, Value, VarId};
use ixp_machine::{AluOp, MemSpace};
use std::collections::{HashMap, HashSet};

/// Optimizer configuration.
#[derive(Debug, Clone)]
pub struct OptConfig {
    /// Maximum contraction+inline rounds.
    pub max_rounds: usize,
    /// Abort if the program grows beyond this many nodes (safety valve for
    /// pathological inlining).
    pub max_size: usize,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig {
            max_rounds: 60,
            max_size: 2_000_000,
        }
    }
}

/// What the optimizer did (reported by `--stats` style harnesses).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Fixpoint rounds executed.
    pub rounds: usize,
    /// Calls inlined.
    pub inlined: usize,
    /// Functions deleted as dead.
    pub dead_funs: usize,
    /// Memory reads narrowed or deleted.
    pub trimmed_reads: usize,
    /// Label parameters specialized away.
    pub specialized: usize,
}

/// Run only the label-specialization pass (plus the contraction it
/// exposes). The back end *requires* static call targets, so even an
/// unoptimized build must run this.
pub fn specialize(cps: &mut Cps) -> OptStats {
    let mut stats = OptStats::default();
    specialize_labels(cps, &mut stats);
    while contract(cps, &mut stats) {}
    stats
}

/// Run the full optimization pipeline in place.
pub fn optimize(cps: &mut Cps, config: &OptConfig) -> OptStats {
    optimize_with(cps, config, &nova_obs::Obs::noop())
}

/// [`optimize`] with structured telemetry: the whole pipeline runs under
/// a `cps.optimize` span, and every pass invocation publishes how many
/// IR nodes it removed as a `cps.pass.<name>.shrunk` counter (plus a
/// `cps.pass.<name>` span). A no-op observer skips all measurement,
/// including the extra [`Cps::size`] walks.
pub fn optimize_with(cps: &mut Cps, config: &OptConfig, obs: &nova_obs::Obs) -> OptStats {
    let _span = obs.span("cps.optimize");
    let mut stats = OptStats::default();
    for round in 0..config.max_rounds {
        stats.rounds = round + 1;
        let mut changed = false;
        changed |= run_pass(obs, "contract", cps, &mut stats, contract);
        changed |= run_pass(obs, "inline", cps, &mut stats, |c, s| {
            inline_pass(c, s, config)
        });
        if !changed {
            break;
        }
        if cps.size() > config.max_size {
            break;
        }
    }
    run_pass(obs, "specialize", cps, &mut stats, |c, s| {
        specialize_labels(c, s);
        true
    });
    // Specialization exposes more simplification.
    while run_pass(obs, "contract", cps, &mut stats, contract) {}
    obs.counter("cps.optimize.rounds", stats.rounds as u64);
    stats
}

/// Run one optimizer pass, measuring its wall time and how much of the
/// IR it removed when an observer is installed.
fn run_pass(
    obs: &nova_obs::Obs,
    name: &str,
    cps: &mut Cps,
    stats: &mut OptStats,
    pass: impl FnOnce(&mut Cps, &mut OptStats) -> bool,
) -> bool {
    if !obs.enabled() {
        return pass(cps, stats);
    }
    let before = cps.size();
    let span_name = format!("cps.pass.{name}");
    let changed = {
        let _span = obs.span(&span_name);
        pass(cps, stats)
    };
    let after = cps.size();
    if after < before {
        obs.counter(&format!("cps.pass.{name}.shrunk"), (before - after) as u64);
    }
    changed
}

// ---------------- census ----------------

#[derive(Default, Debug)]
struct Census {
    /// Uses of each variable (as argument, address, operand, or callee).
    var_uses: HashMap<VarId, usize>,
    /// Direct calls of each label.
    calls: HashMap<FnId, usize>,
    /// Escaping uses (label passed as an argument).
    escapes: HashMap<FnId, usize>,
}

impl Census {
    fn uses(&self, v: VarId) -> usize {
        *self.var_uses.get(&v).unwrap_or(&0)
    }

    fn refs(&self, f: FnId) -> usize {
        *self.calls.get(&f).unwrap_or(&0) + *self.escapes.get(&f).unwrap_or(&0)
    }
}

fn census(t: &Term, c: &mut Census) {
    let use_value = |v: &Value, c: &mut Census, escaping: bool| match v {
        Value::Var(x) => *c.var_uses.entry(*x).or_insert(0) += 1,
        Value::Label(l) => {
            if escaping {
                *c.escapes.entry(*l).or_insert(0) += 1;
            } else {
                *c.calls.entry(*l).or_insert(0) += 1;
            }
        }
        Value::Const(_) => {}
    };
    match t {
        Term::Let { args, body, .. } => {
            for a in args {
                use_value(a, c, true);
            }
            census(body, c);
        }
        Term::MemRead { addr, body, .. } => {
            use_value(addr, c, true);
            census(body, c);
        }
        Term::MemWrite {
            addr, srcs, body, ..
        } => {
            use_value(addr, c, true);
            for s in srcs {
                use_value(s, c, true);
            }
            census(body, c);
        }
        Term::If { a, b, t, f, .. } => {
            use_value(a, c, true);
            use_value(b, c, true);
            census(t, c);
            census(f, c);
        }
        Term::Fix { funs, body } => {
            for f in funs {
                census(&f.body, c);
            }
            census(body, c);
        }
        Term::App { f, args } => {
            use_value(f, c, false);
            for a in args {
                use_value(a, c, true);
            }
        }
        Term::Halt => {}
    }
}

// ---------------- contraction ----------------

/// One contraction round; returns whether anything changed.
fn contract(cps: &mut Cps, stats: &mut OptStats) -> bool {
    let mut c = Census::default();
    census(&cps.body, &mut c);
    // Eta map: f whose body is exactly App(g, params...) forwards to g.
    let mut eta: HashMap<FnId, Value> = HashMap::new();
    collect_eta(&cps.body, &mut eta);
    resolve_eta_chains(&mut eta);
    let mut cx = Contract {
        census: c,
        eta,
        subst: HashMap::new(),
        changed: false,
        stats_trimmed: 0,
        stats_dead_funs: 0,
    };
    let body = std::mem::replace(&mut cps.body, Term::Halt);
    cps.body = cx.term(body);
    stats.trimmed_reads += cx.stats_trimmed;
    stats.dead_funs += cx.stats_dead_funs;
    cx.changed
}

fn collect_eta(t: &Term, out: &mut HashMap<FnId, Value>) {
    match t {
        Term::Fix { funs, body } => {
            for f in funs {
                if let Term::App { f: target, args } = &f.body {
                    let forwards = args.len() == f.params.len()
                        && args
                            .iter()
                            .zip(&f.params)
                            .all(|(a, p)| matches!(a, Value::Var(v) if v == p))
                        && *target != Value::Label(f.id)
                        // Forwarding to a parameter would need the caller's
                        // argument; only forward to static labels.
                        && matches!(target, Value::Label(_));
                    if forwards {
                        out.insert(f.id, *target);
                    }
                }
                collect_eta(&f.body, out);
            }
            collect_eta(body, out);
        }
        Term::Let { body, .. } | Term::MemRead { body, .. } | Term::MemWrite { body, .. } => {
            collect_eta(body, out)
        }
        Term::If { t, f, .. } => {
            collect_eta(t, out);
            collect_eta(f, out);
        }
        Term::App { .. } | Term::Halt => {}
    }
}

fn resolve_eta_chains(eta: &mut HashMap<FnId, Value>) {
    let keys: Vec<FnId> = eta.keys().copied().collect();
    for k in keys {
        let mut seen = HashSet::new();
        let mut cur = k;
        seen.insert(cur);
        while let Some(Value::Label(next)) = eta.get(&cur) {
            if !seen.insert(*next) {
                break; // cycle; leave as-is
            }
            cur = *next;
        }
        if cur != k {
            eta.insert(k, Value::Label(cur));
        }
    }
}

struct Contract {
    census: Census,
    eta: HashMap<FnId, Value>,
    subst: HashMap<VarId, Value>,
    changed: bool,
    stats_trimmed: usize,
    stats_dead_funs: usize,
}

impl Contract {
    fn value(&self, v: Value) -> Value {
        let v = match v {
            Value::Var(x) => self.subst.get(&x).copied().unwrap_or(v),
            _ => v,
        };
        match v {
            Value::Label(l) => self.eta.get(&l).copied().unwrap_or(v),
            _ => v,
        }
    }

    fn term(&mut self, t: Term) -> Term {
        match t {
            Term::Let {
                op,
                args,
                dsts,
                body,
            } => {
                let args: Vec<Value> = args.into_iter().map(|a| self.value(a)).collect();
                // Copy propagation (Move only; Clone is significant to SSU
                // and the allocator and must not be coalesced here).
                if op == PrimOp::Move {
                    self.subst.insert(dsts[0], args[0]);
                    self.changed = true;
                    return self.term(*body);
                }
                if let PrimOp::Alu(alu) = op {
                    if let Some(v) = simplify_alu(alu, args[0], args[1]) {
                        self.subst.insert(dsts[0], v);
                        self.changed = true;
                        return self.term(*body);
                    }
                    // Same-variable operands are architecturally impossible
                    // on the IXP (each bank feeds one ALU port, §1.1):
                    // rewrite x+x into a shift; the other idempotent cases
                    // were handled by `simplify_alu`.
                    if args[0] == args[1] && matches!(args[0], Value::Var(_)) {
                        match alu {
                            AluOp::Add => {
                                let body = Box::new(self.term(*body));
                                self.changed = true;
                                return Term::Let {
                                    op: PrimOp::Alu(AluOp::Shl),
                                    args: vec![args[0], Value::Const(1)],
                                    dsts,
                                    body,
                                };
                            }
                            AluOp::And | AluOp::Or => {
                                self.subst.insert(dsts[0], args[0]);
                                self.changed = true;
                                return self.term(*body);
                            }
                            AluOp::AndNot => {
                                self.subst.insert(dsts[0], Value::Const(0));
                                self.changed = true;
                                return self.term(*body);
                            }
                            _ => {}
                        }
                    }
                }
                // Useless-variable elimination for pure operations.
                if op.is_pure() && dsts.iter().all(|d| self.census.uses(*d) == 0) {
                    self.changed = true;
                    return self.term(*body);
                }
                Term::Let {
                    op,
                    args,
                    dsts,
                    body: Box::new(self.term(*body)),
                }
            }
            Term::MemRead {
                space,
                addr,
                dsts,
                body,
            } => {
                let addr = self.value(addr);
                // Trim unused leading/trailing aggregate members (§4.4
                // "trimming of memory reads").
                let used: Vec<bool> = dsts.iter().map(|d| self.census.uses(*d) > 0).collect();
                if used.iter().all(|u| !u) {
                    self.changed = true;
                    self.stats_trimmed += 1;
                    return self.term(*body);
                }
                let first = used.iter().position(|&u| u).unwrap();
                let last = used.iter().rposition(|&u| u).unwrap();
                let (skip, keep) = match space {
                    MemSpace::Sdram => {
                        // Keep the burst even-sized and even-aligned.
                        let skip = first & !1;
                        let mut keep = last + 1 - skip;
                        if keep % 2 == 1 {
                            keep += 1;
                        }
                        (skip, keep.min(dsts.len() - skip))
                    }
                    _ => (first, last + 1 - first),
                };
                if skip == 0 && keep == dsts.len() {
                    return Term::MemRead {
                        space,
                        addr,
                        dsts,
                        body: Box::new(self.term(*body)),
                    };
                }
                self.changed = true;
                self.stats_trimmed += 1;
                let new_dsts: Vec<VarId> = dsts[skip..skip + keep].to_vec();
                let body = Box::new(self.term(*body));
                if skip == 0 {
                    Term::MemRead {
                        space,
                        addr,
                        dsts: new_dsts,
                        body,
                    }
                } else if let Value::Const(base) = addr {
                    Term::MemRead {
                        space,
                        addr: Value::Const(base + skip as u32),
                        dsts: new_dsts,
                        body,
                    }
                } else {
                    // addr + skip needs a fresh temporary; leave the read
                    // untrimmed at the front rather than introduce one here
                    // (the common case is constant or already-offset
                    // addresses).
                    let new_dsts = dsts[..skip + keep].to_vec();
                    Term::MemRead {
                        space,
                        addr,
                        dsts: new_dsts,
                        body,
                    }
                }
            }
            Term::MemWrite {
                space,
                addr,
                srcs,
                body,
            } => Term::MemWrite {
                space,
                addr: self.value(addr),
                srcs: srcs.into_iter().map(|s| self.value(s)).collect(),
                body: Box::new(self.term(*body)),
            },
            Term::If { cmp, a, b, t, f } => {
                let a = self.value(a);
                let b = self.value(b);
                if let (Value::Const(x), Value::Const(y)) = (a, b) {
                    self.changed = true;
                    return if cmp.eval(x, y) {
                        self.term(*t)
                    } else {
                        self.term(*f)
                    };
                }
                // Identical operands: the comparison is decided by
                // reflexivity (and the hardware could not compare a
                // register against itself anyway).
                if a == b {
                    self.changed = true;
                    return if cmp.eval(0, 0) {
                        self.term(*t)
                    } else {
                        self.term(*f)
                    };
                }
                let t = self.term(*t);
                let f = self.term(*f);
                // Both branches identical jumps: drop the branch.
                if let (Term::App { f: tf, args: ta }, Term::App { f: ff, args: fa }) = (&t, &f) {
                    if tf == ff && ta == fa {
                        self.changed = true;
                        return t;
                    }
                }
                Term::If {
                    cmp,
                    a,
                    b,
                    t: Box::new(t),
                    f: Box::new(f),
                }
            }
            Term::Fix { funs, body } => {
                let mut kept = Vec::new();
                for f in funs {
                    if self.census.refs(f.id) == 0 {
                        self.changed = true;
                        self.stats_dead_funs += 1;
                        continue; // dead function
                    }
                    if let Some(fwd) = self.eta.get(&f.id) {
                        // Eta-forwarders die once all references are
                        // redirected; keep them this round (references
                        // were rewritten above), next census kills them.
                        let _ = fwd;
                        self.changed = true;
                    }
                    let fbody = self.term(f.body);
                    kept.push(CpsFun {
                        id: f.id,
                        name: f.name,
                        params: f.params,
                        body: fbody,
                    });
                }
                let body = self.term(*body);
                if kept.is_empty() {
                    body
                } else {
                    Term::Fix {
                        funs: kept,
                        body: Box::new(body),
                    }
                }
            }
            Term::App { f, args } => Term::App {
                f: self.value(f),
                args: args.into_iter().map(|a| self.value(a)).collect(),
            },
            Term::Halt => Term::Halt,
        }
    }
}

/// Constant folding and algebraic identities; returns a replacement value
/// when the operation reduces to one.
fn simplify_alu(op: AluOp, a: Value, b: Value) -> Option<Value> {
    if let (Value::Const(x), Value::Const(y)) = (a, b) {
        return Some(Value::Const(op.eval(x, y)));
    }
    match (op, a, b) {
        (
            AluOp::Add | AluOp::Sub | AluOp::Or | AluOp::Xor | AluOp::Shl | AluOp::Shr,
            x,
            Value::Const(0),
        ) => Some(x),
        (AluOp::Add | AluOp::Or | AluOp::Xor, Value::Const(0), y) => Some(y),
        (AluOp::And, x, Value::Const(u32::MAX)) => Some(x),
        (AluOp::And, Value::Const(u32::MAX), y) => Some(y),
        (AluOp::And, _, Value::Const(0)) | (AluOp::And, Value::Const(0), _) => {
            Some(Value::Const(0))
        }
        (AluOp::B, _, y) => Some(y),
        (AluOp::Xor, x, y) if x == y && matches!(x, Value::Var(_)) => Some(Value::Const(0)),
        (AluOp::Sub, x, y) if x == y && matches!(x, Value::Var(_)) => Some(Value::Const(0)),
        _ => None,
    }
}

// ---------------- inlining ----------------

/// Inline non-tail calls (de-proceduralization) and called-once functions.
fn inline_pass(cps: &mut Cps, stats: &mut OptStats, config: &OptConfig) -> bool {
    let mut c = Census::default();
    census(&cps.body, &mut c);
    // Gather function definitions and the direct-call graph.
    let mut defs: HashMap<FnId, CpsFun> = HashMap::new();
    collect_defs(&cps.body, &mut defs);
    let recursive = find_recursive(&defs);

    let mut inliner = Inliner {
        defs,
        recursive,
        census: c,
        inlined: 0,
        budget: config.max_size,
    };
    let body = std::mem::replace(&mut cps.body, Term::Halt);
    let body = inliner.term(cps, body);
    cps.body = body;
    stats.inlined += inliner.inlined;
    inliner.inlined > 0
}

fn collect_defs(t: &Term, out: &mut HashMap<FnId, CpsFun>) {
    match t {
        Term::Fix { funs, body } => {
            for f in funs {
                out.insert(f.id, f.clone());
                collect_defs(&f.body, out);
            }
            collect_defs(body, out);
        }
        Term::Let { body, .. } | Term::MemRead { body, .. } | Term::MemWrite { body, .. } => {
            collect_defs(body, out)
        }
        Term::If { t, f, .. } => {
            collect_defs(t, out);
            collect_defs(f, out);
        }
        Term::App { .. } | Term::Halt => {}
    }
}

/// Functions that can reach themselves through direct static calls.
fn find_recursive(defs: &HashMap<FnId, CpsFun>) -> HashSet<FnId> {
    // Direct call edges (targets of App with Label callee).
    let mut edges: HashMap<FnId, HashSet<FnId>> = HashMap::new();
    for (id, f) in defs {
        let mut callees = HashSet::new();
        direct_calls(&f.body, &mut callees);
        edges.insert(*id, callees);
    }
    // Transitive closure per node (programs are small).
    let mut recursive = HashSet::new();
    for &start in defs.keys() {
        let mut seen = HashSet::new();
        let mut stack: Vec<FnId> = edges.get(&start).into_iter().flatten().copied().collect();
        while let Some(n) = stack.pop() {
            if n == start {
                recursive.insert(start);
                break;
            }
            if seen.insert(n) {
                stack.extend(edges.get(&n).into_iter().flatten().copied());
            }
        }
    }
    recursive
}

fn direct_calls(t: &Term, out: &mut HashSet<FnId>) {
    match t {
        Term::App {
            f: Value::Label(l), ..
        } => {
            out.insert(*l);
        }
        Term::App { .. } | Term::Halt => {}
        Term::Let { body, .. } | Term::MemRead { body, .. } | Term::MemWrite { body, .. } => {
            direct_calls(body, out)
        }
        Term::If { t, f, .. } => {
            direct_calls(t, out);
            direct_calls(f, out);
        }
        Term::Fix { funs, body } => {
            for f in funs {
                direct_calls(&f.body, out);
            }
            direct_calls(body, out);
        }
    }
}

struct Inliner {
    defs: HashMap<FnId, CpsFun>,
    recursive: HashSet<FnId>,
    census: Census,
    inlined: usize,
    budget: usize,
}

impl Inliner {
    fn should_inline(&self, id: FnId, args: &[Value]) -> bool {
        let Some(def) = self.defs.get(&id) else {
            return false;
        };
        if self.recursive.contains(&id) {
            return false;
        }
        let called_once = *self.census.calls.get(&id).unwrap_or(&0) == 1
            && *self.census.escapes.get(&id).unwrap_or(&0) == 0;
        if called_once {
            return true;
        }
        // De-proceduralization: user functions called non-tail (their
        // continuation argument is a static label) are fully inlined.
        let user = !def.name.starts_with('$');
        let nontail = matches!(args.last(), Some(Value::Label(_)));
        user && nontail
    }

    fn term(&mut self, cps: &mut Cps, t: Term) -> Term {
        match t {
            Term::App {
                f: Value::Label(l),
                args,
            } if self.should_inline(l, &args) => {
                if cps.size() > self.budget {
                    return Term::App {
                        f: Value::Label(l),
                        args,
                    };
                }
                let def = self
                    .defs
                    .get(&l)
                    .cloned()
                    .expect("checked in should_inline");
                self.inlined += 1;
                let mut vmap = HashMap::new();
                for (p, a) in def.params.iter().zip(&args) {
                    vmap.insert(*p, *a);
                }
                // Freshen to preserve the unique-binding invariant, then
                // keep walking (the inlined body may expose more sites,
                // but sites inside freshened bodies refer to freshened fn
                // ids that are not in `defs`, so termination is immediate).
                freshen(cps, &def.body, &vmap, &HashMap::new())
            }
            Term::Let {
                op,
                args,
                dsts,
                body,
            } => Term::Let {
                op,
                args,
                dsts,
                body: Box::new(self.term(cps, *body)),
            },
            Term::MemRead {
                space,
                addr,
                dsts,
                body,
            } => Term::MemRead {
                space,
                addr,
                dsts,
                body: Box::new(self.term(cps, *body)),
            },
            Term::MemWrite {
                space,
                addr,
                srcs,
                body,
            } => Term::MemWrite {
                space,
                addr,
                srcs,
                body: Box::new(self.term(cps, *body)),
            },
            Term::If { cmp, a, b, t, f } => Term::If {
                cmp,
                a,
                b,
                t: Box::new(self.term(cps, *t)),
                f: Box::new(self.term(cps, *f)),
            },
            Term::Fix { funs, body } => Term::Fix {
                funs: funs
                    .into_iter()
                    .map(|f| CpsFun {
                        id: f.id,
                        name: f.name,
                        params: f.params,
                        body: self.term(cps, f.body),
                    })
                    .collect(),
                body: Box::new(self.term(cps, *body)),
            },
            other => other,
        }
    }
}

// ---------------- label specialization ----------------

/// Label-constant propagation over function parameters (SCCP on the
/// label lattice Top < Label(l) < Bottom).
///
/// The packet-loop programs pass their return continuation around a cycle
/// of mutually tail-recursive functions; every such parameter ultimately
/// carries one static label (usually the halt continuation). Solving the
/// dataflow over parameter-to-parameter edges finds these, substitutes
/// the label, and drops the parameter — after which every `App` target is
/// static, the invariant the back end needs (the IXP has no indirect
/// branch).
///
/// Soundness around indirect calls: a function can only be called through
/// a variable if its label *escapes* (is passed as an argument somewhere),
/// so parameters of escaping functions are pinned to Bottom and the
/// constraints of `Var`-callee sites can be ignored.
fn specialize_labels(cps: &mut Cps, stats: &mut OptStats) {
    loop {
        let mut defs: HashMap<FnId, CpsFun> = HashMap::new();
        collect_defs(&cps.body, &mut defs);
        let mut escaping: HashSet<FnId> = HashSet::new();
        collect_escaping(&cps.body, &mut escaping);
        // Map each parameter variable to its (function, index).
        let mut param_pos: HashMap<VarId, (FnId, usize)> = HashMap::new();
        for (id, f) in &defs {
            for (j, p) in f.params.iter().enumerate() {
                param_pos.insert(*p, (*id, j));
            }
        }
        #[derive(Clone, Copy, PartialEq)]
        enum Lat {
            Top,
            Label(FnId),
            Bottom,
        }
        let mut val: HashMap<(FnId, usize), Lat> = HashMap::new();
        for (id, f) in &defs {
            for j in 0..f.params.len() {
                let init = if escaping.contains(id) {
                    Lat::Bottom
                } else {
                    Lat::Top
                };
                val.insert((*id, j), init);
            }
        }
        // Edges: arg (g,i) flows into (f,j).
        let mut edges: HashMap<(FnId, usize), Vec<(FnId, usize)>> = HashMap::new();
        let mut direct: HashMap<(FnId, usize), Lat> = HashMap::new();
        let mut sites: Vec<(FnId, Vec<Value>)> = Vec::new();
        collect_sites(&cps.body, &mut sites);
        for (target, args) in &sites {
            for (j, a) in args.iter().enumerate() {
                let key = (*target, j);
                match a {
                    Value::Label(l) => {
                        let cur = direct.get(&key).copied().unwrap_or(Lat::Top);
                        let next = match cur {
                            Lat::Top => Lat::Label(*l),
                            Lat::Label(prev) if prev == *l => cur,
                            _ => Lat::Bottom,
                        };
                        direct.insert(key, next);
                    }
                    Value::Var(x) => match param_pos.get(x) {
                        Some(src) => edges.entry(*src).or_default().push(key),
                        None => {
                            direct.insert(key, Lat::Bottom);
                        }
                    },
                    Value::Const(_) => {
                        direct.insert(key, Lat::Bottom);
                    }
                }
            }
        }
        for (k, d) in &direct {
            if let Some(v) = val.get_mut(k) {
                *v = join(*v, *d);
            }
        }
        // Fixpoint propagation along parameter edges.
        loop {
            let mut changed = false;
            for (src, dsts) in &edges {
                let sv = *val.get(src).unwrap_or(&Lat::Bottom);
                for d in dsts {
                    if let Some(dv) = val.get_mut(d) {
                        let j = join(*dv, sv);
                        if j != *dv {
                            *dv = j;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        fn join(a: Lat, b: Lat) -> Lat {
            match (a, b) {
                (Lat::Top, x) | (x, Lat::Top) => x,
                (Lat::Label(l1), Lat::Label(l2)) if l1 == l2 => a,
                _ => Lat::Bottom,
            }
        }
        // Resolved parameters (Top means "no call site constrains it":
        // leave those alone — the function may be dead).
        let mut resolved: HashMap<FnId, Vec<(usize, FnId)>> = HashMap::new();
        let mut n_resolved = 0;
        for ((f, j), v) in &val {
            if let Lat::Label(l) = v {
                resolved.entry(*f).or_default().push((*j, *l));
                n_resolved += 1;
            }
        }
        if n_resolved == 0 {
            break;
        }
        stats.specialized += n_resolved;
        for v in resolved.values_mut() {
            v.sort();
        }
        let body = std::mem::replace(&mut cps.body, Term::Halt);
        cps.body = apply_label_resolution(body, &resolved);
        // Substitution may turn Var callees into Label callees, exposing
        // further resolutions: iterate.
    }
}

fn collect_escaping(t: &Term, out: &mut HashSet<FnId>) {
    let mut grab = |v: &Value| {
        if let Value::Label(l) = v {
            out.insert(*l);
        }
    };
    match t {
        Term::Let { args, body, .. } => {
            for a in args {
                grab(a);
            }
            collect_escaping(body, out);
        }
        Term::MemRead { addr, body, .. } => {
            grab(addr);
            collect_escaping(body, out);
        }
        Term::MemWrite {
            addr, srcs, body, ..
        } => {
            grab(addr);
            for s in srcs {
                grab(s);
            }
            collect_escaping(body, out);
        }
        Term::If { a, b, t, f, .. } => {
            grab(a);
            grab(b);
            collect_escaping(t, out);
            collect_escaping(f, out);
        }
        Term::Fix { funs, body } => {
            for f in funs {
                collect_escaping(&f.body, out);
            }
            collect_escaping(body, out);
        }
        Term::App { args, .. } => {
            // Only argument labels escape; the callee position is a call.
            for a in args {
                grab(a);
            }
        }
        Term::Halt => {}
    }
}

fn collect_sites(t: &Term, out: &mut Vec<(FnId, Vec<Value>)>) {
    match t {
        Term::App {
            f: Value::Label(l),
            args,
        } => out.push((*l, args.clone())),
        Term::App { .. } | Term::Halt => {}
        Term::Let { body, .. } | Term::MemRead { body, .. } | Term::MemWrite { body, .. } => {
            collect_sites(body, out)
        }
        Term::If { t, f, .. } => {
            collect_sites(t, out);
            collect_sites(f, out);
        }
        Term::Fix { funs, body } => {
            for f in funs {
                collect_sites(&f.body, out);
            }
            collect_sites(body, out);
        }
    }
}

/// Apply every resolution at once: substitute the label for the parameter
/// variable inside its function's body, drop the parameters, and drop the
/// corresponding arguments at every static call site of that function.
fn apply_label_resolution(t: Term, resolved: &HashMap<FnId, Vec<(usize, FnId)>>) -> Term {
    match t {
        Term::Fix { funs, body } => Term::Fix {
            funs: funs
                .into_iter()
                .map(|mut f| {
                    if let Some(rs) = resolved.get(&f.id) {
                        let mut b = std::mem::replace(&mut f.body, Term::Halt);
                        for (j, l) in rs {
                            b = subst_var(b, f.params[*j], Value::Label(*l));
                        }
                        // Remove the parameters, highest index first.
                        for (j, _) in rs.iter().rev() {
                            f.params.remove(*j);
                        }
                        f.body = b;
                    }
                    CpsFun {
                        id: f.id,
                        name: f.name,
                        params: f.params,
                        body: apply_label_resolution(f.body, resolved),
                    }
                })
                .collect(),
            body: Box::new(apply_label_resolution(*body, resolved)),
        },
        Term::App { f, mut args } => {
            if let Value::Label(l) = f {
                if let Some(rs) = resolved.get(&l) {
                    for (j, _) in rs.iter().rev() {
                        if *j < args.len() {
                            args.remove(*j);
                        }
                    }
                }
            }
            Term::App { f, args }
        }
        Term::Let {
            op,
            args,
            dsts,
            body,
        } => Term::Let {
            op,
            args,
            dsts,
            body: Box::new(apply_label_resolution(*body, resolved)),
        },
        Term::MemRead {
            space,
            addr,
            dsts,
            body,
        } => Term::MemRead {
            space,
            addr,
            dsts,
            body: Box::new(apply_label_resolution(*body, resolved)),
        },
        Term::MemWrite {
            space,
            addr,
            srcs,
            body,
        } => Term::MemWrite {
            space,
            addr,
            srcs,
            body: Box::new(apply_label_resolution(*body, resolved)),
        },
        Term::If { cmp, a, b, t, f } => Term::If {
            cmp,
            a,
            b,
            t: Box::new(apply_label_resolution(*t, resolved)),
            f: Box::new(apply_label_resolution(*f, resolved)),
        },
        Term::Halt => Term::Halt,
    }
}

/// True when every `App` target in the program is a static label — the
/// invariant the back end requires (the IXP has no indirect branch).
pub fn all_calls_static(cps: &Cps) -> bool {
    fn walk(t: &Term) -> bool {
        match t {
            Term::App { f, .. } => matches!(f, Value::Label(_)),
            Term::Halt => true,
            Term::Let { body, .. } | Term::MemRead { body, .. } | Term::MemWrite { body, .. } => {
                walk(body)
            }
            Term::If { t, f, .. } => walk(t) && walk(f),
            Term::Fix { funs, body } => funs.iter().all(|f| walk(&f.body)) && walk(body),
        }
    }
    walk(&cps.body)
}

/// Substitute `val` for every free occurrence of `var`.
fn subst_var(t: Term, var: VarId, val: Value) -> Term {
    let sv = |v: Value| if v == Value::Var(var) { val } else { v };
    match t {
        Term::Let {
            op,
            args,
            dsts,
            body,
        } => Term::Let {
            op,
            args: args.into_iter().map(sv).collect(),
            dsts,
            body: Box::new(subst_var(*body, var, val)),
        },
        Term::MemRead {
            space,
            addr,
            dsts,
            body,
        } => Term::MemRead {
            space,
            addr: sv(addr),
            dsts,
            body: Box::new(subst_var(*body, var, val)),
        },
        Term::MemWrite {
            space,
            addr,
            srcs,
            body,
        } => Term::MemWrite {
            space,
            addr: sv(addr),
            srcs: srcs.into_iter().map(sv).collect(),
            body: Box::new(subst_var(*body, var, val)),
        },
        Term::If { cmp, a, b, t, f } => Term::If {
            cmp,
            a: sv(a),
            b: sv(b),
            t: Box::new(subst_var(*t, var, val)),
            f: Box::new(subst_var(*f, var, val)),
        },
        Term::Fix { funs, body } => Term::Fix {
            funs: funs
                .into_iter()
                .map(|f| CpsFun {
                    id: f.id,
                    name: f.name,
                    params: f.params,
                    body: subst_var(f.body, var, val),
                })
                .collect(),
            body: Box::new(subst_var(*body, var, val)),
        },
        Term::App { f, args } => Term::App {
            f: sv(f),
            args: args.into_iter().map(sv).collect(),
        },
        Term::Halt => Term::Halt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::convert;
    use crate::eval::{run, Machine};
    use nova_frontend::{check, parse};

    fn compile(src: &str) -> Cps {
        let p = parse(src).unwrap_or_else(|d| panic!("parse: {}", d.render(src)));
        let info = check(&p).unwrap_or_else(|d| panic!("check: {}", d.render(src)));
        convert(&p, &info).unwrap_or_else(|d| panic!("convert: {}", d.render(src)))
    }

    fn optimized(src: &str) -> (Cps, OptStats) {
        let mut cps = compile(src);
        let stats = optimize(&mut cps, &OptConfig::default());
        (cps, stats)
    }

    /// Optimization must preserve observable behaviour.
    fn behaviour_preserved(src: &str, setup: impl Fn(&mut Machine)) {
        let cps0 = compile(src);
        let mut m0 = Machine::with_sizes(1024, 4096, 256);
        setup(&mut m0);
        let (stop0, _) = run(&cps0, &mut m0, 2_000_000).expect("unoptimized runs");

        let (cps1, _) = optimized(src);
        let mut m1 = Machine::with_sizes(1024, 4096, 256);
        setup(&mut m1);
        let (stop1, _) = run(&cps1, &mut m1, 2_000_000).expect("optimized runs");

        assert_eq!(stop0, stop1);
        assert_eq!(m0.sram, m1.sram, "sram differs after optimization");
        assert_eq!(m0.sdram, m1.sdram, "sdram differs");
        assert_eq!(m0.scratch, m1.scratch, "scratch differs");
        assert_eq!(m0.tx_log, m1.tx_log, "tx log differs");
    }

    #[test]
    fn constant_folding_shrinks() {
        let (cps, _) = optimized("fun main() { sram(0) <- (1 + 2 + 3 + 4); 0 }");
        let s = crate::ir::pretty(&cps);
        assert!(s.contains("0xa"), "{s}");
        assert!(!s.contains("Alu"), "{s}");
    }

    #[test]
    fn dead_fields_are_not_extracted() {
        // The paper's §4.4 example: unused fields cost nothing.
        let src = r#"
            layout p = { a: 16, b: 32, c: 16 };
            fun main() {
                let d: packed(p) = sram(0);
                let u1 = unpack[p](d);
                sram(10) <- (u1.b);
                0
            }
        "#;
        let before = compile(src).size();
        let (cps, _) = optimized(src);
        assert!(cps.size() < before, "{} !< {before}", cps.size());
        // Only `b` (which straddles a word boundary: And/Shl/Shr/Or, four
        // ops) survives; the extractions of `a` and `c` are gone, leaving
        // read + 4 ALU ops + write = 6 operations.
        assert!(cps.size() <= 6, "{}", crate::ir::pretty(&cps));
    }

    #[test]
    fn read_trimming_narrows_aggregates() {
        let src = r#"
            fun main() {
                let (a, b, c, d) = sram(100);
                sram(200) <- (b);
                0
            }
        "#;
        let (cps, stats) = optimized(src);
        assert!(stats.trimmed_reads > 0);
        let s = crate::ir::pretty(&cps);
        // The read starts at 101 and transfers fewer words.
        assert!(s.contains("sram[0x65]"), "{s}");
        behaviour_preserved(src, |m| {
            m.sram[100..104].copy_from_slice(&[1, 2, 3, 4]);
        });
    }

    #[test]
    fn sdram_trimming_keeps_even_bursts() {
        let src = r#"
            fun main() {
                let (a, b, c, d, e, f) = sdram(0);
                sram(0) <- (c);
                0
            }
        "#;
        let (cps, _) = optimized(src);
        let s = crate::ir::pretty(&cps);
        // c is index 2: trim to an even-aligned even-sized burst [2..4).
        assert!(s.contains("sdram[0x2]"), "{s}");
        behaviour_preserved(src, |m| {
            m.sdram[0..6].copy_from_slice(&[10, 20, 30, 40, 50, 60]);
        });
    }

    #[test]
    fn deproc_inlines_nontail_calls() {
        let src = r#"
            fun double(x) { x + x }
            fun main() {
                let a = double(5);
                let b = double(a);
                sram(0) <- (b);
                0
            }
        "#;
        let (cps, stats) = optimized(src);
        assert!(stats.inlined >= 2, "stats: {stats:?}");
        let s = crate::ir::pretty(&cps);
        assert!(!s.contains("fun double"), "{s}");
        behaviour_preserved(src, |_| {});
    }

    #[test]
    fn tail_recursion_survives_as_loop() {
        let src = r#"
            fun main() { go(0, 0) }
            fun go(i, acc) {
                if (i == 10) { sram(0) <- (acc); 0 }
                else go(i + 1, acc + i)
            }
        "#;
        let (cps, _) = optimized(src);
        let s = crate::ir::pretty(&cps);
        assert!(s.contains("fun go"), "loop must survive: {s}");
        behaviour_preserved(src, |_| {});
    }

    #[test]
    fn exception_labels_specialize() {
        let src = r#"
            fun risky [v: word, fail: exn(word)] {
                if (v > 10) raise fail (v) else v
            }
            fun main() {
                let r = try { risky[v = 50, fail = E] }
                        handle E (code) { code + 1000 };
                sram(0) <- (r);
                0
            }
        "#;
        let (cps, _) = optimized(src);
        assert!(all_calls_static(&cps), "{}", crate::ir::pretty(&cps));
        behaviour_preserved(src, |_| {});
    }

    #[test]
    fn loop_carried_exception_labels_specialize() {
        let src = r#"
            fun go [i: word, out: exn(word)] {
                if (i > 5) raise out (i) else go[i = i + 1, out = out]
            }
            fun main() {
                let r = try { go[i = 0, out = Done] } handle Done (v) { v };
                sram(0) <- (r);
                0
            }
        "#;
        let (cps, _) = optimized(src);
        assert!(all_calls_static(&cps), "{}", crate::ir::pretty(&cps));
        behaviour_preserved(src, |_| {});
    }

    #[test]
    fn behaviour_preserved_complex() {
        let src = r#"
            layout h = { version: 4, priority: 4, flow: 24 };
            fun classify(v) {
                if (v == 6) 100 else { if (v == 4) 50 else 1 }
            }
            fun main() {
                let p: packed(h) = sram(0);
                let u = unpack[h](p);
                let score = classify(u.version) + u.priority;
                let i = 0;
                let acc = 0;
                while (i < score) { acc = acc + i; i = i + 1; }
                sram(1) <- (acc);
                0
            }
        "#;
        behaviour_preserved(src, |m| {
            m.sram[0] = (6 << 28) | (3 << 24) | 7;
        });
    }

    #[test]
    fn optimizer_reaches_fixpoint() {
        let (_, stats) = optimized("fun main() { 1 + 2 }");
        assert!(stats.rounds < OptConfig::default().max_rounds);
    }

    #[test]
    fn packet_loop_preserved() {
        let src = r#"
            fun main() {
                let (len, addr) = rx_packet();
                let (w0, w1) = sdram(addr);
                sdram(addr) <- (w1, w0);
                tx_packet(addr, len);
                main()
            }
        "#;
        behaviour_preserved(src, |m| {
            m.rx_queue.push_back((8, 0));
            m.rx_queue.push_back((8, 8));
            m.sdram[0] = 1;
            m.sdram[1] = 2;
            m.sdram[8] = 3;
            m.sdram[9] = 4;
        });
    }
}
