//! Umbrella package for the Nova/IXP reproduction workspace.
//!
//! Re-exports the [`nova`] pipeline crate; see the workspace README for the
//! full architecture. The interesting code lives in the `crates/` members.
pub use nova::*;
